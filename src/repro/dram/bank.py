"""Per-bank row-buffer state."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class BankState(enum.Enum):
    """Row-buffer state of a single bank."""

    CLOSED = "closed"
    OPEN = "open"


@dataclass
class Bank:
    """State and access statistics of one DRAM bank.

    The bank records which row (if any) is latched in its row buffer, and
    classifies column accesses into row hits, row misses (bank was closed)
    and row conflicts (a different row was open and had to be closed first).
    Conflicts are the quantity that bank partitioning (Section III-C) is
    designed to reduce.
    """

    channel: int
    rank: int
    bank_group: int
    bank: int

    state: BankState = BankState.CLOSED
    open_row: Optional[int] = None

    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    nda_reads: int = 0
    nda_writes: int = 0

    def is_open(self, row: Optional[int] = None) -> bool:
        """Whether the bank is open (optionally: open to a specific row)."""
        if self.state is not BankState.OPEN:
            return False
        if row is None:
            return True
        return self.open_row == row

    def classify_access(self, row: int) -> str:
        """Classify a pending column access as ``hit``/``miss``/``conflict``."""
        if self.state is BankState.CLOSED:
            return "miss"
        if self.open_row == row:
            return "hit"
        return "conflict"

    def activate(self, row: int) -> None:
        if self.state is BankState.OPEN:
            raise ValueError(
                f"activate to open bank ch{self.channel} rk{self.rank} "
                f"bg{self.bank_group} bk{self.bank} (row {self.open_row} open)"
            )
        self.state = BankState.OPEN
        self.open_row = row
        self.activates += 1

    def precharge(self) -> None:
        self.state = BankState.CLOSED
        self.open_row = None
        self.precharges += 1

    def record_column(self, row: int, is_write: bool, is_nda: bool,
                      outcome: str) -> None:
        """Record a column access (read or write) and its locality outcome."""
        if outcome == "hit":
            self.row_hits += 1
        elif outcome == "miss":
            self.row_misses += 1
        elif outcome == "conflict":
            self.row_conflicts += 1
        else:
            raise ValueError(f"unknown access outcome {outcome!r}")
        if is_write:
            if is_nda:
                self.nda_writes += 1
            else:
                self.writes += 1
        else:
            if is_nda:
                self.nda_reads += 1
            else:
                self.reads += 1

    def reset_counters(self) -> None:
        """Zero the access statistics; row-buffer state is preserved."""
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.activates = 0
        self.precharges = 0
        self.reads = 0
        self.writes = 0
        self.nda_reads = 0
        self.nda_writes = 0

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes + self.nda_reads + self.nda_writes

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0
