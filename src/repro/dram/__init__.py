"""DDR4 DRAM device model: commands, bank state, timing constraints.

This package is the Ramulator-equivalent substrate of the reproduction: a
cycle-level model of DDR4 channels, ranks, bank groups and banks with the
full Table II timing parameter set, plus per-rank internal data buses used by
the near-data accelerators (NDAs).
"""

from repro.dram.commands import Command, CommandType, DramAddress, RequestSource
from repro.dram.bank import Bank, BankState
from repro.dram.timing import TimingEngine
from repro.dram.device import DramSystem

__all__ = [
    "Command",
    "CommandType",
    "DramAddress",
    "RequestSource",
    "Bank",
    "BankState",
    "TimingEngine",
    "DramSystem",
]
