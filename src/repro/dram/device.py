"""The DRAM system façade: banks + timing engine + event statistics.

:class:`DramSystem` is the single object memory controllers talk to.  It
validates command legality (both protocol state and timing), applies the
command to bank state, and accumulates the event counts that the statistics
and energy models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandType, DramAddress, RequestSource
from repro.dram.timing import TimingEngine
from repro.utils.stats import Counter


@dataclass
class DramEventCounts:
    """Aggregate DRAM event counts used by the energy and stats models."""

    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    host_reads: int = 0
    host_writes: int = 0
    nda_reads: int = 0
    nda_writes: int = 0
    host_row_hits: int = 0
    host_row_conflicts: int = 0
    nda_row_hits: int = 0
    nda_row_conflicts: int = 0

    @property
    def host_columns(self) -> int:
        return self.host_reads + self.host_writes

    @property
    def nda_columns(self) -> int:
        return self.nda_reads + self.nda_writes


class DramSystem:
    """All banks of the memory system plus the timing engine."""

    def __init__(self, org: DramOrgConfig, timing: DramTimingConfig,
                 timing_cls: type = TimingEngine) -> None:
        org.validate()
        timing.validate()
        self.org = org
        self.timing_config = timing
        #: ``timing_cls`` is the backend hook: the kernel backend substitutes
        #: :class:`repro.kernel.timing_kernel.KernelTimingEngine` (the same
        #: constraint law over array-resident per-bank state).
        self.timing = timing_cls(org, timing)
        self.counts = DramEventCounts()
        self._ranks_per_channel = org.ranks_per_channel
        self._banks_per_group = org.banks_per_group
        self._banks_per_rank = org.banks_per_rank
        #: Per-channel issue counters: bumped by every command issued to any
        #: rank of the channel.  A channel's bank/timing state is a pure
        #: function of its issue history, so schedulers memoize scan results
        #: against this (plus their queue versions).  (The per-rank twin of
        #: this counter is gone: the NDA wake caches it tagged were replaced
        #: by push notifications — host issues reach the rank units through
        #: the concurrent-access scheduler's wake hub, see core/scheduler.)
        self.channel_issue_version: List[int] = [0] * org.channels
        #: Banks in dense ``bank_index`` order: all banks of one rank are
        #: contiguous, ranks in ``rank_index`` order.
        self._banks: List[Bank] = [
            Bank(ch, rk, bg, bk)
            for ch in range(org.channels)
            for rk in range(org.ranks_per_channel)
            for bg in range(org.bank_groups)
            for bk in range(org.banks_per_group)
        ]

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def bank_index(self, addr: DramAddress) -> int:
        """Dense flat index of the addressed bank (stamp or arithmetic)."""
        index = addr.bank_index
        if index >= 0:
            return index
        return ((addr.channel * self._ranks_per_channel + addr.rank)
                * self._banks_per_rank
                + addr.bank_group * self._banks_per_group + addr.bank)

    def bank(self, addr: DramAddress) -> Bank:
        return self._banks[self.bank_index(addr)]

    def banks(self) -> Iterable[Bank]:
        return self._banks

    def banks_of_rank(self, channel: int, rank: int) -> List[Bank]:
        start = (channel * self._ranks_per_channel + rank) * self._banks_per_rank
        return self._banks[start:start + self._banks_per_rank]

    def global_rank_index(self, channel: int, rank: int) -> int:
        return channel * self.org.ranks_per_channel + rank

    def all_rank_coords(self) -> List[Tuple[int, int]]:
        return [(ch, rk) for ch in range(self.org.channels)
                for rk in range(self.org.ranks_per_channel)]

    # ------------------------------------------------------------------ #
    # Command legality and the prerequisite sequence for an access
    # ------------------------------------------------------------------ #

    def required_command(self, addr: DramAddress, is_write: bool) -> CommandType:
        """The next command needed to complete a column access to ``addr``.

        Follows the open-page protocol: a row conflict requires a PRE, a
        closed bank requires an ACT, an open matching row allows RD/WR.
        """
        index = addr.bank_index
        if index < 0:
            index = ((addr.channel * self._ranks_per_channel + addr.rank)
                     * self._banks_per_rank
                     + addr.bank_group * self._banks_per_group + addr.bank)
        bank = self._banks[index]
        if bank.state is BankState.CLOSED:
            return CommandType.ACT
        if bank.open_row == addr.row:
            return CommandType.WR if is_write else CommandType.RD
        return CommandType.PRE

    def can_issue_at(self, kind: CommandType, addr: DramAddress,
                     source: RequestSource, now: int) -> bool:
        """Protocol-state plus timing legality of ``(kind, addr)`` at ``now``.

        Value-based twin of :meth:`can_issue`; schedulers use it to probe
        candidate commands without allocating a :class:`Command`.
        """
        bank = self.bank(addr)
        if kind is CommandType.ACT and bank.state is BankState.OPEN:
            return False
        if kind is CommandType.RD or kind is CommandType.WR:
            if not bank.is_open(addr.row):
                return False
        if kind is CommandType.REF:
            if any(b.state is BankState.OPEN
                   for b in self.banks_of_rank(addr.channel, addr.rank)):
                return False
        return self.timing.earliest_issue_at(kind, addr, source, now) <= now

    def can_issue(self, cmd: Command, now: int) -> bool:
        """Protocol-state plus timing legality of ``cmd`` at cycle ``now``."""
        return self.can_issue_at(cmd.kind, cmd.addr, cmd.source, now)

    def earliest_issue_at(self, kind: CommandType, addr: DramAddress,
                          source: RequestSource, now: int) -> int:
        """Timing-only earliest issue cycle of ``(kind, addr)`` (value-based)."""
        return self.timing.earliest_issue_at(kind, addr, source, now)

    def earliest_issue(self, cmd: Command, now: int) -> int:
        return self.timing.earliest_issue_at(cmd.kind, cmd.addr, cmd.source, now)

    def issue(self, cmd: Command, now: int) -> None:
        """Issue ``cmd``: update bank state, timing state and event counts."""
        if not self.can_issue(cmd, now):
            raise ValueError(f"illegal command at cycle {now}: {cmd}")
        self.issue_trusted(cmd, now)

    def issue_trusted(self, cmd: Command, now: int) -> None:
        """Issue a command the caller has just proven legal.

        The scheduler hot paths (FR-FCFS pick, NDA issue) probe protocol
        state and timing immediately before issuing, with no intervening
        DRAM mutation, so the :meth:`issue` re-validation would repeat the
        exact same checks.  State effects are identical to :meth:`issue`.
        """
        addr = cmd.addr
        self.channel_issue_version[addr.channel] += 1
        index = addr.bank_index
        bank = self._banks[index] if index >= 0 else self.bank(addr)
        is_nda = cmd.is_nda
        kind = cmd.kind

        # Dispatch ordered by frequency: column commands dominate.
        if kind is CommandType.RD:
            if is_nda:
                self.counts.nda_reads += 1
            else:
                self.counts.host_reads += 1
        elif kind is CommandType.WR:
            if is_nda:
                self.counts.nda_writes += 1
            else:
                self.counts.host_writes += 1
        elif kind is CommandType.ACT:
            bank.activate(addr.row)
            self.counts.activates += 1
        elif kind is CommandType.PRE:
            bank.precharge()
            self.counts.precharges += 1
        else:  # REF
            self.counts.refreshes += 1
        self.timing.issue(cmd, now)

    def record_access_outcome(self, addr: DramAddress, is_write: bool,
                              is_nda: bool) -> str:
        """Classify and record the row-buffer outcome of a new column access.

        Memory controllers call this once per access, at the moment the
        access is first scheduled (before any PRE/ACT it may require), so the
        hit/miss/conflict classification reflects the bank state the access
        found.  Returns the outcome string.
        """
        index = addr.bank_index
        bank = self._banks[index] if index >= 0 else self.bank(addr)
        # Inline classify + record (one access-classification per column
        # access; the classify/record call pair and its outcome-string
        # dispatch were measurable at that rate).
        counts = self.counts
        if bank.state is BankState.CLOSED:
            outcome = "miss"
            bank.row_misses += 1
        elif bank.open_row == addr.row:
            outcome = "hit"
            bank.row_hits += 1
            if is_nda:
                counts.nda_row_hits += 1
            else:
                counts.host_row_hits += 1
        else:
            outcome = "conflict"
            bank.row_conflicts += 1
            if is_nda:
                counts.nda_row_conflicts += 1
            else:
                counts.host_row_conflicts += 1
        if is_write:
            if is_nda:
                bank.nda_writes += 1
            else:
                bank.writes += 1
        else:
            if is_nda:
                bank.nda_reads += 1
            else:
                bank.reads += 1
        return outcome

    # ------------------------------------------------------------------ #
    # Convenience queries used by schedulers and statistics
    # ------------------------------------------------------------------ #

    def row_hit_possible(self, addr: DramAddress) -> bool:
        """Whether a column access to ``addr`` would be a row-buffer hit."""
        return self.bank(addr).is_open(addr.row)

    def open_row(self, addr: DramAddress) -> Optional[int]:
        return self.bank(addr).open_row

    def refresh_due(self, channel: int, rank: int, now: int) -> bool:
        return self.timing.refresh_due(channel, rank, now)

    def rank_host_busy(self, channel: int, rank: int, now: int) -> bool:
        return self.timing.rank_host_busy(channel, rank, now)

    def next_host_free_cycle(self, channel: int, rank: int, now: int) -> int:
        return self.timing.next_host_free_cycle(channel, rank, now)

    def host_busy_runs(self, channel: int, rank: int, start: int,
                       stop: int) -> List[Tuple[bool, int]]:
        return self.timing.host_busy_runs(channel, rank, start, stop)

    def reset_counts(self) -> None:
        """Zero all measurement counters (warmup boundary).

        Timing and bank protocol state are untouched; only the event counts
        feeding the statistics and energy models are cleared.
        """
        self.counts = DramEventCounts()
        for bank in self._banks:
            bank.reset_counters()

    def read_latency(self) -> int:
        return self.timing.read_latency()

    def write_latency(self) -> int:
        return self.timing.write_latency()

    def conflict_counts(self) -> Dict[str, int]:
        """Row hit / miss / conflict totals split by requester."""
        totals = Counter()
        for bank in self.banks():
            totals.add("row_hits", bank.row_hits)
            totals.add("row_misses", bank.row_misses)
            totals.add("row_conflicts", bank.row_conflicts)
            totals.add("host_reads", bank.reads)
            totals.add("host_writes", bank.writes)
            totals.add("nda_reads", bank.nda_reads)
            totals.add("nda_writes", bank.nda_writes)
        return totals.as_dict()
