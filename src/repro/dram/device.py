"""The DRAM system façade: banks + timing engine + event statistics.

:class:`DramSystem` is the single object memory controllers talk to.  It
validates command legality (both protocol state and timing), applies the
command to bank state, and accumulates the event counts that the statistics
and energy models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandType, DramAddress
from repro.dram.timing import TimingEngine
from repro.utils.stats import Counter


@dataclass
class DramEventCounts:
    """Aggregate DRAM event counts used by the energy and stats models."""

    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    host_reads: int = 0
    host_writes: int = 0
    nda_reads: int = 0
    nda_writes: int = 0
    host_row_hits: int = 0
    host_row_conflicts: int = 0
    nda_row_hits: int = 0
    nda_row_conflicts: int = 0

    @property
    def host_columns(self) -> int:
        return self.host_reads + self.host_writes

    @property
    def nda_columns(self) -> int:
        return self.nda_reads + self.nda_writes


class DramSystem:
    """All banks of the memory system plus the timing engine."""

    def __init__(self, org: DramOrgConfig, timing: DramTimingConfig) -> None:
        org.validate()
        timing.validate()
        self.org = org
        self.timing_config = timing
        self.timing = TimingEngine(org, timing)
        self.counts = DramEventCounts()
        #: Monotonic per-rank issue counters; any command issued to a rank
        #: bumps its version.  Cached scheduling hints derived from a rank's
        #: bank/timing state are tagged with the version they were computed
        #: under and discarded when it changes (see the NDA rank
        #: controller's event interface).
        self.rank_issue_version: Dict[Tuple[int, int], int] = {
            (ch, rk): 0
            for ch in range(org.channels)
            for rk in range(org.ranks_per_channel)
        }
        self._banks: Dict[Tuple[int, int, int, int], Bank] = {}
        for ch in range(org.channels):
            for rk in range(org.ranks_per_channel):
                for bg in range(org.bank_groups):
                    for bk in range(org.banks_per_group):
                        self._banks[(ch, rk, bg, bk)] = Bank(ch, rk, bg, bk)

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #

    def bank(self, addr: DramAddress) -> Bank:
        return self._banks[(addr.channel, addr.rank, addr.bank_group, addr.bank)]

    def banks(self) -> Iterable[Bank]:
        return self._banks.values()

    def banks_of_rank(self, channel: int, rank: int) -> List[Bank]:
        return [b for (ch, rk, _, _), b in self._banks.items()
                if ch == channel and rk == rank]

    def global_rank_index(self, channel: int, rank: int) -> int:
        return channel * self.org.ranks_per_channel + rank

    def all_rank_coords(self) -> List[Tuple[int, int]]:
        return [(ch, rk) for ch in range(self.org.channels)
                for rk in range(self.org.ranks_per_channel)]

    # ------------------------------------------------------------------ #
    # Command legality and the prerequisite sequence for an access
    # ------------------------------------------------------------------ #

    def required_command(self, addr: DramAddress, is_write: bool) -> CommandType:
        """The next command needed to complete a column access to ``addr``.

        Follows the open-page protocol: a row conflict requires a PRE, a
        closed bank requires an ACT, an open matching row allows RD/WR.
        """
        bank = self.bank(addr)
        if bank.state is BankState.CLOSED:
            return CommandType.ACT
        if bank.open_row == addr.row:
            return CommandType.WR if is_write else CommandType.RD
        return CommandType.PRE

    def can_issue(self, cmd: Command, now: int) -> bool:
        """Protocol-state plus timing legality of ``cmd`` at cycle ``now``."""
        bank = self.bank(cmd.addr)
        if cmd.kind is CommandType.ACT and bank.state is BankState.OPEN:
            return False
        if cmd.kind in (CommandType.RD, CommandType.WR):
            if not bank.is_open(cmd.addr.row):
                return False
        if cmd.kind is CommandType.REF:
            if any(b.state is BankState.OPEN
                   for b in self.banks_of_rank(cmd.addr.channel, cmd.addr.rank)):
                return False
        return self.timing.can_issue(cmd, now)

    def earliest_issue(self, cmd: Command, now: int) -> int:
        return self.timing.earliest_issue(cmd, now)

    def issue(self, cmd: Command, now: int) -> None:
        """Issue ``cmd``: update bank state, timing state and event counts."""
        if not self.can_issue(cmd, now):
            raise ValueError(f"illegal command at cycle {now}: {cmd}")
        self.rank_issue_version[(cmd.addr.channel, cmd.addr.rank)] += 1
        bank = self.bank(cmd.addr)
        is_nda = cmd.is_nda

        if cmd.kind is CommandType.ACT:
            bank.activate(cmd.addr.row)
            self.counts.activates += 1
        elif cmd.kind is CommandType.PRE:
            bank.precharge()
            self.counts.precharges += 1
        elif cmd.kind is CommandType.REF:
            self.counts.refreshes += 1
        else:
            is_write = cmd.kind is CommandType.WR
            if is_write:
                if is_nda:
                    self.counts.nda_writes += 1
                else:
                    self.counts.host_writes += 1
            else:
                if is_nda:
                    self.counts.nda_reads += 1
                else:
                    self.counts.host_reads += 1
        self.timing.issue(cmd, now)

    def record_access_outcome(self, addr: DramAddress, is_write: bool,
                              is_nda: bool) -> str:
        """Classify and record the row-buffer outcome of a new column access.

        Memory controllers call this once per access, at the moment the
        access is first scheduled (before any PRE/ACT it may require), so the
        hit/miss/conflict classification reflects the bank state the access
        found.  Returns the outcome string.
        """
        bank = self.bank(addr)
        outcome = bank.classify_access(addr.row)
        bank.record_column(addr.row, is_write, is_nda, outcome)
        if outcome == "hit":
            if is_nda:
                self.counts.nda_row_hits += 1
            else:
                self.counts.host_row_hits += 1
        elif outcome == "conflict":
            if is_nda:
                self.counts.nda_row_conflicts += 1
            else:
                self.counts.host_row_conflicts += 1
        return outcome

    # ------------------------------------------------------------------ #
    # Convenience queries used by schedulers and statistics
    # ------------------------------------------------------------------ #

    def row_hit_possible(self, addr: DramAddress) -> bool:
        """Whether a column access to ``addr`` would be a row-buffer hit."""
        return self.bank(addr).is_open(addr.row)

    def open_row(self, addr: DramAddress) -> Optional[int]:
        return self.bank(addr).open_row

    def refresh_due(self, channel: int, rank: int, now: int) -> bool:
        return self.timing.refresh_due(channel, rank, now)

    def rank_host_busy(self, channel: int, rank: int, now: int) -> bool:
        return self.timing.rank_host_busy(channel, rank, now)

    def next_host_free_cycle(self, channel: int, rank: int, now: int) -> int:
        return self.timing.next_host_free_cycle(channel, rank, now)

    def host_busy_runs(self, channel: int, rank: int, start: int,
                       stop: int) -> List[Tuple[bool, int]]:
        return self.timing.host_busy_runs(channel, rank, start, stop)

    def reset_counts(self) -> None:
        """Zero all measurement counters (warmup boundary).

        Timing and bank protocol state are untouched; only the event counts
        feeding the statistics and energy models are cleared.
        """
        self.counts = DramEventCounts()
        for bank in self._banks.values():
            bank.reset_counters()

    def read_latency(self) -> int:
        return self.timing.read_latency()

    def write_latency(self) -> int:
        return self.timing.write_latency()

    def conflict_counts(self) -> Dict[str, int]:
        """Row hit / miss / conflict totals split by requester."""
        totals = Counter()
        for bank in self.banks():
            totals.add("row_hits", bank.row_hits)
            totals.add("row_misses", bank.row_misses)
            totals.add("row_conflicts", bank.row_conflicts)
            totals.add("host_reads", bank.reads)
            totals.add("host_writes", bank.writes)
            totals.add("nda_reads", bank.nda_reads)
            totals.add("nda_writes", bank.nda_writes)
        return totals.as_dict()
