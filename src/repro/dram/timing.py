"""DDR4 timing-constraint engine.

The engine tracks, for every bank, rank and channel, the earliest cycle at
which each command type may legally issue, applying the Table II parameters:

* per bank:  tRCD, tRP, tRAS, tRC, tRTP, write recovery (tCWL+tBL+tWR)
* per rank:  tRRD_S/tRRD_L, tFAW, tCCD_S/tCCD_L, write-to-read turnaround
             (tCWL+tBL+tWTR_S/L), read-to-write turnaround
* per channel (host column commands only): data-bus occupancy (tBL) and
             rank-to-rank switching (tRTRS)
* per rank (NDA column commands only): internal data-bus occupancy

Host and NDA column commands to the *same rank* share the rank-level
constraints (the DRAM IO circuitry is shared inside the rank), which is the
source of the read/write-turnaround interference studied in Section III-B.
Host and NDA commands to *different ranks* only interact through the
channel-level constraints, which NDA commands do not use.

Hot-path layout: per-bank and per-rank state lives in flat lists indexed by
the dense ``rank_index``/``bank_index`` stamped on :class:`DramAddress` at
decode time (with an arithmetic fallback for unstamped addresses), and the
constraint check is exposed value-based as :meth:`earliest_issue_at` /
:meth:`can_issue_at` so schedulers can scan candidate ``(kind, addr)`` pairs
without allocating a :class:`Command` per probe.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.commands import Command, CommandType, DramAddress, RequestSource


class _RankTiming:
    """Mutable timing state of one rank."""

    __slots__ = (
        "act_allowed", "act_allowed_bg", "faw_window",
        "last_read_cycle", "last_read_bg",
        "last_host_read_cycle", "last_nda_read_cycle",
        "last_write_cycle", "last_write_bg",
        "busy_until", "data_busy_from", "data_busy_until",
        "nda_bus_free", "refresh_due", "refreshing_until",
    )

    def __init__(self, bank_groups: int, tREFI: int) -> None:
        self.act_allowed = 0
        self.act_allowed_bg = [0] * bank_groups
        self.faw_window: Deque[int] = deque(maxlen=4)
        self.last_read_cycle = -(10 ** 9)
        self.last_read_bg = -1
        self.last_host_read_cycle = -(10 ** 9)
        self.last_nda_read_cycle = -(10 ** 9)
        self.last_write_cycle = -(10 ** 9)
        self.last_write_bg = -1
        self.busy_until = 0
        self.data_busy_from = 0
        self.data_busy_until = 0
        self.nda_bus_free = 0
        self.refresh_due = tREFI
        self.refreshing_until = 0


class _BankTiming:
    """Mutable timing state of one bank."""

    __slots__ = ("act_allowed", "pre_allowed", "rd_allowed", "wr_allowed")

    def __init__(self) -> None:
        self.act_allowed = 0
        self.pre_allowed = 0
        self.rd_allowed = 0
        self.wr_allowed = 0


class _ChannelTiming:
    """Mutable timing state of one channel's shared buses (host side)."""

    __slots__ = ("data_bus_free", "last_col_rank", "last_data_end",
                 "last_col_was_write", "last_col_cycle")

    def __init__(self) -> None:
        self.data_bus_free = 0
        self.last_col_rank = -1
        self.last_data_end = 0
        self.last_col_was_write = False
        self.last_col_cycle = -(10 ** 9)


class TimingEngine:
    """Tracks and enforces DDR4 timing constraints for every command."""

    def __init__(self, org: DramOrgConfig, timing: DramTimingConfig) -> None:
        self.org = org
        self.timing = timing
        # Snapshot of the derived timing sums and the column-command scalars
        # (plain attributes; the config recomputes the sums per property
        # access and even plain dataclass reads are measurable at the
        # probe rate the scans sustain).
        self._read_to_write = timing.read_to_write
        self._write_to_precharge = timing.write_to_precharge
        self._tCL = timing.tCL
        self._tCWL = timing.tCWL
        self._tBL = timing.tBL
        self._tCCDS = timing.tCCDS
        self._tCCDL = timing.tCCDL
        self._tWTRS = timing.tWTRS
        self._tWTRL = timing.tWTRL
        self._tRTRS = timing.tRTRS
        self._wr_to_rd = timing.tCWL + timing.tBL
        self._ranks_per_channel = org.ranks_per_channel
        self._banks_per_group = org.banks_per_group
        self._banks_per_rank = org.banks_per_rank
        total_ranks = org.channels * org.ranks_per_channel
        self._ranks: List[_RankTiming] = [
            _RankTiming(org.bank_groups, timing.tREFI) for _ in range(total_ranks)
        ]
        self._banks: List[_BankTiming] = [
            _BankTiming() for _ in range(total_ranks * org.banks_per_rank)
        ]
        self._channels: List[_ChannelTiming] = [
            _ChannelTiming() for _ in range(org.channels)
        ]
        # Min refresh_due over each channel's ranks; refreshed on REF issue
        # only, so the per-cycle wake computation reads one value instead of
        # looping over ranks.
        self._channel_refresh_due: List[int] = [timing.tREFI] * org.channels
        # Row-command probe caches.  ACT and PRE constraints are purely
        # rank/bank-local, so their absolute earliest-issue cycles stay
        # valid until the next command issues to the owning rank; scans
        # re-probe every queued bank every cycle and mostly hit here.
        #
        # Two version counters per rank: ``_issue_versions`` advances on
        # *every* command (column spacing, turnaround and bus state move on
        # column commands, so the NDA column caches key on it), while
        # ``_row_versions`` advances only on ACT/PRE/REF — no constraint an
        # ACT probe reads moves on a column command, and the one PRE input a
        # column command does move (its own bank's tRTP/tWR horizon) is
        # invalidated point-wise at issue.  Host FR-FCFS scans therefore
        # keep their ACT/PRE horizon hits across dense NDA column streams.
        self._issue_versions: List[int] = [0] * total_ranks
        self._row_versions: List[int] = [0] * total_ranks
        total_banks = total_ranks * org.banks_per_rank
        self._act_cache: List[Tuple[int, int]] = [(-1, 0)] * total_banks
        self._pre_cache: List[Tuple[int, int]] = [(-1, 0)] * total_banks
        # NDA column commands never touch the channel bus, so their
        # absolute horizons are rank-local and cache the same way.
        self._nda_rd_cache: List[Tuple[int, int]] = [(-1, 0)] * total_banks
        self._nda_wr_cache: List[Tuple[int, int]] = [(-1, 0)] * total_banks
        #: Invoked as ``busy_observer(channel, rank, now)`` immediately
        #: before a command mutates the rank's host-busy state (busy_until /
        #: data-burst windows).  The windowed idle statistics use it to
        #: flush lazily-accumulated observations while the pre-mutation
        #: state — which exactly describes the elapsed window — is still
        #: available.  NDA column commands never mutate host-busy state and
        #: skip the callback.
        self.busy_observer: Optional[Callable[[int, int, int], None]] = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def _indices(self, addr: DramAddress) -> Tuple[int, int]:
        """(rank_index, bank_index) of ``addr``, from stamp or arithmetic."""
        bank_index = addr.bank_index
        if bank_index >= 0:
            return addr.rank_index, bank_index
        rank_index = addr.channel * self._ranks_per_channel + addr.rank
        return rank_index, (rank_index * self._banks_per_rank
                            + addr.bank_group * self._banks_per_group + addr.bank)

    def rank_state(self, channel: int, rank: int) -> _RankTiming:
        return self._ranks[channel * self._ranks_per_channel + rank]

    # ------------------------------------------------------------------ #
    # Constraint checks
    # ------------------------------------------------------------------ #

    def earliest_issue_at(self, kind: CommandType, addr: DramAddress,
                          source: RequestSource, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``(kind, addr)`` may issue.

        Value-based hot-path entry point: the FR-FCFS and NDA schedulers
        probe every candidate through this (no ``Command`` allocation) and
        build a command object only for the access they actually issue.
        """
        t = self.timing
        bank_index = addr.bank_index
        if bank_index >= 0:
            rank_index = addr.rank_index
        else:
            rank_index = addr.channel * self._ranks_per_channel + addr.rank
            bank_index = (rank_index * self._banks_per_rank
                          + addr.bank_group * self._banks_per_group + addr.bank)
        bank = self._banks[bank_index]
        rank = self._ranks[rank_index]

        # Comparisons instead of max(): this function dominates the hot
        # path, and the builtin's call overhead is measurable at this rate.
        # Every constraint is an absolute cycle, so each branch accumulates
        # the ``now``-independent horizon and clamps to ``now`` at the end;
        # that makes the horizons cacheable per (bank, kind) wherever they
        # are rank-local (ACT/PRE, and NDA column commands).
        if kind is CommandType.RD or kind is CommandType.WR:
            # Column commands.  NDA accesses move data over the rank's
            # internal (TSV) path rather than the chip IO mux, so
            # back-to-back NDA column commands are paced at tCCD_S even
            # within one bank group; all cross-type turnaround constraints
            # still apply because the bank and sense-amp resources are
            # shared with host accesses.
            is_nda = source is RequestSource.NDA
            if is_nda:
                cache = (self._nda_rd_cache if kind is CommandType.RD
                         else self._nda_wr_cache)
                version = self._issue_versions[rank_index]
                cached = cache[bank_index]
                if cached[0] == version:
                    absolute = cached[1]
                    return absolute if absolute > now else now
            absolute = rank.refreshing_until
            ccd_long = self._tCCDS if is_nda else self._tCCDL
            if kind is CommandType.RD:
                if bank.rd_allowed > absolute:
                    absolute = bank.rd_allowed
                # read-after-read spacing within the rank
                spacing = rank.last_read_cycle + (
                    ccd_long if addr.bank_group == rank.last_read_bg
                    else self._tCCDS)
                if spacing > absolute:
                    absolute = spacing
                # write-to-read turnaround within the rank
                wtr = (self._tWTRL if addr.bank_group == rank.last_write_bg
                       else self._tWTRS)
                turnaround = rank.last_write_cycle + self._wr_to_rd + wtr
                if turnaround > absolute:
                    absolute = turnaround
                data_start_offset = self._tCL
            else:  # WR
                if bank.wr_allowed > absolute:
                    absolute = bank.wr_allowed
                spacing = rank.last_write_cycle + (
                    ccd_long if addr.bank_group == rank.last_write_bg
                    else self._tCCDS)
                if spacing > absolute:
                    absolute = spacing
                # Read-to-write turnaround is a data-bus direction change, so
                # it only applies between accesses sharing a data path: host
                # reads and host writes share the channel DQ bus, NDA reads
                # and NDA writes share the rank-internal path.  A read on the
                # *other* path only imposes the basic column spacing.
                if is_nda:
                    same_path_read = rank.last_nda_read_cycle
                    other_path_read = rank.last_host_read_cycle
                else:
                    same_path_read = rank.last_host_read_cycle
                    other_path_read = rank.last_nda_read_cycle
                turnaround = same_path_read + self._read_to_write
                if turnaround > absolute:
                    absolute = turnaround
                spacing = other_path_read + self._tCCDS
                if spacing > absolute:
                    absolute = spacing
                data_start_offset = self._tCWL

            if is_nda:
                # NDA column accesses use the rank-internal bus only; the
                # data burst must wait for the bus, pushing the command back
                # by the burst's start offset.
                bus = rank.nda_bus_free - data_start_offset
                if bus > absolute:
                    absolute = bus
                cache[bank_index] = (version, absolute)
                return absolute if absolute > now else now

            # Host column accesses use the shared channel data bus: the
            # data burst (command + CL/CWL) must clear the bus-free cycle
            # and, when the previous burst came from another rank, the
            # rank-to-rank switching gap.
            channel = self._channels[addr.channel]
            bus = channel.data_bus_free - data_start_offset
            if bus > absolute:
                absolute = bus
            if channel.last_col_rank not in (-1, addr.rank):
                switch = channel.last_data_end + self._tRTRS - data_start_offset
                if switch > absolute:
                    absolute = switch
            return absolute if absolute > now else now

        if kind is CommandType.ACT:
            version = self._row_versions[rank_index]
            cached = self._act_cache[bank_index]
            if cached[0] == version:
                absolute = cached[1]
                return absolute if absolute > now else now
            absolute = rank.refreshing_until
            if bank.act_allowed > absolute:
                absolute = bank.act_allowed
            if rank.act_allowed > absolute:
                absolute = rank.act_allowed
            bg_allowed = rank.act_allowed_bg[addr.bank_group]
            if bg_allowed > absolute:
                absolute = bg_allowed
            if len(rank.faw_window) == 4:
                faw = rank.faw_window[0] + t.tFAW
                if faw > absolute:
                    absolute = faw
            self._act_cache[bank_index] = (version, absolute)
            return absolute if absolute > now else now

        if kind is CommandType.PRE:
            version = self._row_versions[rank_index]
            cached = self._pre_cache[bank_index]
            if cached[0] == version:
                absolute = cached[1]
            else:
                absolute = rank.refreshing_until
                if bank.pre_allowed > absolute:
                    absolute = bank.pre_allowed
                self._pre_cache[bank_index] = (version, absolute)
            return absolute if absolute > now else now

        # REF
        refreshing = rank.refreshing_until
        return refreshing if refreshing > now else now

    def host_column_base(self, is_read: bool, addr: DramAddress) -> int:
        """Bank-independent part of a host column command's earliest cycle.

        Exactly the host-column branch of :meth:`earliest_issue_at` minus
        the per-bank tRCD horizon (``rd_allowed``/``wr_allowed``) and the
        ``now`` clamp, which the caller applies.  The FR-FCFS bucketed scan
        uses it as its column probe (one call per bucket and direction) —
        keep the two branches in lock-step when adding constraints.
        """
        rank = self._ranks[addr.rank_index]
        channel = self._channels[addr.channel]
        bg = addr.bank_group
        base = rank.refreshing_until
        if is_read:
            spacing = rank.last_read_cycle + (
                self._tCCDL if bg == rank.last_read_bg else self._tCCDS)
            if spacing > base:
                base = spacing
            wtr = self._tWTRL if bg == rank.last_write_bg else self._tWTRS
            turnaround = rank.last_write_cycle + self._wr_to_rd + wtr
            if turnaround > base:
                base = turnaround
            offset = self._tCL
        else:
            spacing = rank.last_write_cycle + (
                self._tCCDL if bg == rank.last_write_bg else self._tCCDS)
            if spacing > base:
                base = spacing
            turnaround = rank.last_host_read_cycle + self._read_to_write
            if turnaround > base:
                base = turnaround
            spacing = rank.last_nda_read_cycle + self._tCCDS
            if spacing > base:
                base = spacing
            offset = self._tCWL
        bus = channel.data_bus_free - offset
        if bus > base:
            base = bus
        if channel.last_col_rank not in (-1, addr.rank):
            switch = channel.last_data_end + self._tRTRS - offset
            if switch > base:
                base = switch
        return base

    def can_issue_at(self, kind: CommandType, addr: DramAddress,
                     source: RequestSource, now: int) -> bool:
        """Whether ``(kind, addr)`` can legally issue at cycle ``now``."""
        return self.earliest_issue_at(kind, addr, source, now) <= now

    def earliest_issue(self, cmd: Command, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``cmd`` may legally issue."""
        return self.earliest_issue_at(cmd.kind, cmd.addr, cmd.source, now)

    def can_issue(self, cmd: Command, now: int) -> bool:
        """Whether ``cmd`` can legally issue at cycle ``now``."""
        return self.earliest_issue_at(cmd.kind, cmd.addr, cmd.source, now) <= now

    # ------------------------------------------------------------------ #
    # State updates on issue
    # ------------------------------------------------------------------ #

    def issue(self, cmd: Command, now: int) -> None:
        """Apply the timing consequences of issuing ``cmd`` at cycle ``now``."""
        t = self.timing
        addr = cmd.addr
        rank_index, bank_index = self._indices(addr)
        self._issue_versions[rank_index] += 1
        bank = self._banks[bank_index]
        rank = self._ranks[rank_index]
        kind = cmd.kind
        is_column = kind is CommandType.RD or kind is CommandType.WR
        if is_column:
            # A column command moves no ACT input and, of the PRE inputs,
            # only its own bank's precharge horizon (tRTP / write recovery):
            # kill that single cache entry and leave the row version alone.
            self._pre_cache[bank_index] = (-1, 0)
        else:
            self._row_versions[rank_index] += 1
        if self.busy_observer is not None and not (cmd.is_nda and is_column):
            # Row commands, refresh and host column commands all extend the
            # rank's host-busy windows; let the idle statistics catch up on
            # the unmutated window first.
            self.busy_observer(addr.channel, addr.rank, now)

        if is_column:
            self._issue_column(cmd, kind, addr, bank, rank, now)
            return

        if kind is CommandType.ACT:
            # now + t.X always moves constraints forward from a live bank's
            # perspective, but the max() guards stay (as comparisons) for
            # exactness with out-of-order test scenarios.
            rcd = now + t.tRCD
            if rcd > bank.rd_allowed:
                bank.rd_allowed = rcd
            if rcd > bank.wr_allowed:
                bank.wr_allowed = rcd
            ras = now + t.tRAS
            if ras > bank.pre_allowed:
                bank.pre_allowed = ras
            rc = now + t.tRC
            if rc > bank.act_allowed:
                bank.act_allowed = rc
            rrds = now + t.tRRDS
            if rrds > rank.act_allowed:
                rank.act_allowed = rrds
            bg = addr.bank_group
            rrdl = now + t.tRRDL
            if rrdl > rank.act_allowed_bg[bg]:
                rank.act_allowed_bg[bg] = rrdl
            rank.faw_window.append(now)
            if now + 1 > rank.busy_until:
                rank.busy_until = now + 1
            return

        if kind is CommandType.PRE:
            rp = now + t.tRP
            if rp > bank.act_allowed:
                bank.act_allowed = rp
            if now + 1 > rank.busy_until:
                rank.busy_until = now + 1
            return

        # REF
        rank.refreshing_until = max(rank.refreshing_until, now + t.tRFC)
        rank.refresh_due += t.tREFI
        start = rank_index * self._banks_per_rank
        for b in self._banks[start:start + self._banks_per_rank]:
            b.act_allowed = max(b.act_allowed, now + t.tRFC)
        rank.busy_until = max(rank.busy_until, now + t.tRFC)
        ch = addr.channel
        first = ch * self._ranks_per_channel
        self._channel_refresh_due[ch] = min(
            r.refresh_due
            for r in self._ranks[first:first + self._ranks_per_channel]
        )

    def _issue_column(self, cmd: Command, kind: CommandType, addr: DramAddress,
                      bank: _BankTiming, rank: _RankTiming, now: int) -> None:
        """Column-command (RD/WR) consequences — the dominant issue path."""
        t = self.timing
        is_read = kind is CommandType.RD
        data_start = now + (t.tCL if is_read else t.tCWL)
        data_end = data_start + t.tBL

        if is_read:
            rtp = now + t.tRTP
            if rtp > bank.pre_allowed:
                bank.pre_allowed = rtp
            rank.last_read_cycle = now
            rank.last_read_bg = addr.bank_group
            if cmd.is_nda:
                rank.last_nda_read_cycle = now
            else:
                rank.last_host_read_cycle = now
        else:
            wtp = now + self._write_to_precharge
            if wtp > bank.pre_allowed:
                bank.pre_allowed = wtp
            rank.last_write_cycle = now
            rank.last_write_bg = addr.bank_group

        if cmd.is_nda:
            if data_end > rank.nda_bus_free:
                rank.nda_bus_free = data_end
        else:
            channel = self._channels[addr.channel]
            if data_end > channel.data_bus_free:
                channel.data_bus_free = data_end
            channel.last_col_rank = addr.rank
            channel.last_data_end = data_end
            channel.last_col_was_write = not is_read
            channel.last_col_cycle = now
            # The rank is occupied by the host for the command cycle and for
            # the data-burst window; the gap in between (CAS latency) is a
            # short idle period the NDA may exploit (Section III-B).
            if now + 1 > rank.busy_until:
                rank.busy_until = now + 1
            if data_start >= rank.data_busy_until:
                rank.data_busy_from = data_start
            if data_end > rank.data_busy_until:
                rank.data_busy_until = data_end

    # ------------------------------------------------------------------ #
    # Refresh bookkeeping
    # ------------------------------------------------------------------ #

    def refresh_due(self, channel: int, rank: int, now: int) -> bool:
        """Whether a refresh is due for the given rank at cycle ``now``."""
        return now >= self.rank_state(channel, rank).refresh_due

    def refresh_urgency(self, channel: int, rank: int, now: int) -> float:
        """How overdue the next refresh is, in multiples of tREFI."""
        due = self.rank_state(channel, rank).refresh_due
        return (now - due) / self.timing.tREFI if now > due else 0.0

    # ------------------------------------------------------------------ #
    # Host-busy queries used by the NDA opportunistic scheduler
    # ------------------------------------------------------------------ #

    def rank_host_busy(self, channel: int, rank: int, now: int) -> bool:
        """Whether the host currently occupies the rank (command or data)."""
        state = self.rank_state(channel, rank)
        if state.busy_until > now:
            return True
        return state.data_busy_from <= now < state.data_busy_until

    def next_host_free_cycle(self, channel: int, rank: int, now: int) -> int:
        """Earliest cycle >= ``now`` at which the rank is host-free.

        Valid until the next host command issues to the rank; the event
        engine uses it to find the next NDA issue opportunity without
        stepping through host-busy cycles one by one.
        """
        state = self.rank_state(channel, rank)
        cycle = now
        while True:
            if cycle < state.busy_until:
                cycle = state.busy_until
                continue
            if state.data_busy_from <= cycle < state.data_busy_until:
                cycle = state.data_busy_until
                continue
            return cycle

    def host_busy_span(self, channel: int, rank: int, start: int,
                       stop: int) -> Optional[bool]:
        """Uniform host-busy state over ``[start, stop)``, or None if mixed.

        O(1) fast path for the per-mutation statistics flush: windows with
        no busy edge inside are a single run (the common case between two
        commands of a dense stream).
        """
        state = self._ranks[channel * self._ranks_per_channel + rank]
        busy_until = state.busy_until
        data_from = state.data_busy_from
        data_until = state.data_busy_until
        if (start < busy_until < stop or start < data_from < stop
                or start < data_until < stop):
            return None
        return start < busy_until or data_from <= start < data_until

    def host_busy_runs(self, channel: int, rank: int, start: int,
                       stop: int) -> List[Tuple[bool, int]]:
        """Partition ``[start, stop)`` into (host_busy, cycle_count) runs.

        Exact under the engine's fast-forward contract: no command issues to
        the rank inside the window, so busy-ness over the window is fully
        determined by the current timing state.  Feeding the runs to the
        idle-period statistics is bit-identical to observing each cycle.
        """
        state = self.rank_state(channel, rank)
        busy_until = state.busy_until
        data_from = state.data_busy_from
        data_until = state.data_busy_until
        # Walk the (at most three) interior edges in ascending order without
        # building a set or sorting: this runs once per busy mutation.
        runs: List[Tuple[bool, int]] = []
        cursor = start
        while cursor < stop:
            nxt = stop
            for edge in (busy_until, data_from, data_until):
                if cursor < edge < nxt:
                    nxt = edge
            busy = cursor < busy_until or data_from <= cursor < data_until
            runs.append((busy, nxt - cursor))
            cursor = nxt
        return runs

    def next_refresh_due_cycle(self, channel: int, rank: int) -> int:
        """Absolute cycle at which the rank's next refresh becomes due."""
        return self.rank_state(channel, rank).refresh_due

    def channel_min_refresh_due(self, channel: int) -> int:
        """Earliest refresh-due cycle over all ranks of ``channel`` (O(1))."""
        return self._channel_refresh_due[channel]

    def read_latency(self) -> int:
        """Cycles from RD issue until the last data beat is received."""
        return self.timing.tCL + self.timing.tBL

    def write_latency(self) -> int:
        """Cycles from WR issue until the last data beat is driven."""
        return self.timing.tCWL + self.timing.tBL
