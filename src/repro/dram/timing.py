"""DDR4 timing-constraint engine.

The engine tracks, for every bank, rank and channel, the earliest cycle at
which each command type may legally issue, applying the Table II parameters:

* per bank:  tRCD, tRP, tRAS, tRC, tRTP, write recovery (tCWL+tBL+tWR)
* per rank:  tRRD_S/tRRD_L, tFAW, tCCD_S/tCCD_L, write-to-read turnaround
             (tCWL+tBL+tWTR_S/L), read-to-write turnaround
* per channel (host column commands only): data-bus occupancy (tBL) and
             rank-to-rank switching (tRTRS)
* per rank (NDA column commands only): internal data-bus occupancy

Host and NDA column commands to the *same rank* share the rank-level
constraints (the DRAM IO circuitry is shared inside the rank), which is the
source of the read/write-turnaround interference studied in Section III-B.
Host and NDA commands to *different ranks* only interact through the
channel-level constraints, which NDA commands do not use.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.commands import Command, CommandType


class _RankTiming:
    """Mutable timing state of one rank."""

    __slots__ = (
        "act_allowed", "act_allowed_bg", "faw_window",
        "last_read_cycle", "last_read_bg",
        "last_host_read_cycle", "last_nda_read_cycle",
        "last_write_cycle", "last_write_bg",
        "busy_until", "data_busy_from", "data_busy_until",
        "nda_bus_free", "refresh_due", "refreshing_until",
    )

    def __init__(self, bank_groups: int, tREFI: int) -> None:
        self.act_allowed = 0
        self.act_allowed_bg = [0] * bank_groups
        self.faw_window: Deque[int] = deque(maxlen=4)
        self.last_read_cycle = -(10 ** 9)
        self.last_read_bg = -1
        self.last_host_read_cycle = -(10 ** 9)
        self.last_nda_read_cycle = -(10 ** 9)
        self.last_write_cycle = -(10 ** 9)
        self.last_write_bg = -1
        self.busy_until = 0
        self.data_busy_from = 0
        self.data_busy_until = 0
        self.nda_bus_free = 0
        self.refresh_due = tREFI
        self.refreshing_until = 0


class _BankTiming:
    """Mutable timing state of one bank."""

    __slots__ = ("act_allowed", "pre_allowed", "rd_allowed", "wr_allowed")

    def __init__(self) -> None:
        self.act_allowed = 0
        self.pre_allowed = 0
        self.rd_allowed = 0
        self.wr_allowed = 0


class _ChannelTiming:
    """Mutable timing state of one channel's shared buses (host side)."""

    __slots__ = ("data_bus_free", "last_col_rank", "last_data_end",
                 "last_col_was_write", "last_col_cycle")

    def __init__(self) -> None:
        self.data_bus_free = 0
        self.last_col_rank = -1
        self.last_data_end = 0
        self.last_col_was_write = False
        self.last_col_cycle = -(10 ** 9)


class TimingEngine:
    """Tracks and enforces DDR4 timing constraints for every command."""

    def __init__(self, org: DramOrgConfig, timing: DramTimingConfig) -> None:
        self.org = org
        self.timing = timing
        self._banks: Dict[Tuple[int, int, int, int], _BankTiming] = {}
        self._ranks: Dict[Tuple[int, int], _RankTiming] = {}
        self._channels: List[_ChannelTiming] = [
            _ChannelTiming() for _ in range(org.channels)
        ]
        #: Invoked as ``busy_observer(channel, rank, now)`` immediately
        #: before a command mutates the rank's host-busy state (busy_until /
        #: data-burst windows).  The windowed idle statistics use it to
        #: flush lazily-accumulated observations while the pre-mutation
        #: state — which exactly describes the elapsed window — is still
        #: available.  NDA column commands never mutate host-busy state and
        #: skip the callback.
        self.busy_observer: Optional[Callable[[int, int, int], None]] = None
        for ch in range(org.channels):
            for rk in range(org.ranks_per_channel):
                self._ranks[(ch, rk)] = _RankTiming(org.bank_groups, timing.tREFI)
                for bg in range(org.bank_groups):
                    for bk in range(org.banks_per_group):
                        self._banks[(ch, rk, bg, bk)] = _BankTiming()

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    def _bank(self, cmd: Command) -> _BankTiming:
        a = cmd.addr
        return self._banks[(a.channel, a.rank, a.bank_group, a.bank)]

    def _rank(self, cmd: Command) -> _RankTiming:
        a = cmd.addr
        return self._ranks[(a.channel, a.rank)]

    def rank_state(self, channel: int, rank: int) -> _RankTiming:
        return self._ranks[(channel, rank)]

    # ------------------------------------------------------------------ #
    # Constraint checks
    # ------------------------------------------------------------------ #

    def earliest_issue(self, cmd: Command, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``cmd`` may legally issue."""
        t = self.timing
        bank = self._bank(cmd)
        rank = self._rank(cmd)
        earliest = max(now, rank.refreshing_until)

        if cmd.kind is CommandType.ACT:
            earliest = max(earliest, bank.act_allowed, rank.act_allowed,
                           rank.act_allowed_bg[cmd.addr.bank_group])
            if len(rank.faw_window) == 4:
                earliest = max(earliest, rank.faw_window[0] + t.tFAW)
            return earliest

        if cmd.kind is CommandType.PRE:
            return max(earliest, bank.pre_allowed)

        if cmd.kind is CommandType.REF:
            return earliest

        # Column commands (RD / WR).  NDA accesses move data over the rank's
        # internal (TSV) path rather than the chip IO mux, so back-to-back
        # NDA column commands are paced at tCCD_S even within one bank group;
        # all cross-type turnaround constraints still apply because the bank
        # and sense-amp resources are shared with host accesses.
        same_bg_rd = cmd.addr.bank_group == rank.last_read_bg
        same_bg_wr = cmd.addr.bank_group == rank.last_write_bg
        ccd_long = t.tCCDS if cmd.is_nda else t.tCCDL
        if cmd.kind is CommandType.RD:
            earliest = max(earliest, bank.rd_allowed)
            # read-after-read spacing within the rank
            earliest = max(
                earliest,
                rank.last_read_cycle + (ccd_long if same_bg_rd else t.tCCDS),
            )
            # write-to-read turnaround within the rank
            wtr = t.tWTRL if same_bg_wr else t.tWTRS
            earliest = max(earliest, rank.last_write_cycle + t.tCWL + t.tBL + wtr)
        else:  # WR
            earliest = max(earliest, bank.wr_allowed)
            earliest = max(
                earliest,
                rank.last_write_cycle + (ccd_long if same_bg_wr else t.tCCDS),
            )
            # Read-to-write turnaround is a data-bus direction change, so it
            # only applies between accesses sharing a data path: host reads
            # and host writes share the channel DQ bus, NDA reads and NDA
            # writes share the rank-internal path.  A read on the *other*
            # path only imposes the basic column spacing.
            same_path_read = (rank.last_nda_read_cycle if cmd.is_nda
                              else rank.last_host_read_cycle)
            other_path_read = (rank.last_host_read_cycle if cmd.is_nda
                               else rank.last_nda_read_cycle)
            earliest = max(earliest, same_path_read + t.read_to_write)
            earliest = max(earliest, other_path_read + t.tCCDS)

        if cmd.is_nda:
            # NDA column accesses use the rank-internal bus only.
            data_start_offset = t.tCL if cmd.kind is CommandType.RD else t.tCWL
            if rank.nda_bus_free > earliest + data_start_offset:
                earliest = rank.nda_bus_free - data_start_offset
            return earliest

        # Host column accesses use the shared channel data bus.
        channel = self._channels[cmd.addr.channel]
        data_start_offset = t.tCL if cmd.kind is CommandType.RD else t.tCWL
        data_start = earliest + data_start_offset
        if channel.data_bus_free > data_start:
            data_start = channel.data_bus_free
        if (channel.last_col_rank not in (-1, cmd.addr.rank)
                and channel.last_data_end + t.tRTRS > data_start):
            data_start = channel.last_data_end + t.tRTRS
        return max(earliest, data_start - data_start_offset)

    def can_issue(self, cmd: Command, now: int) -> bool:
        """Whether ``cmd`` can legally issue at cycle ``now``."""
        return self.earliest_issue(cmd, now) <= now

    # ------------------------------------------------------------------ #
    # State updates on issue
    # ------------------------------------------------------------------ #

    def issue(self, cmd: Command, now: int) -> None:
        """Apply the timing consequences of issuing ``cmd`` at cycle ``now``."""
        t = self.timing
        bank = self._bank(cmd)
        rank = self._rank(cmd)
        if self.busy_observer is not None and not (
                cmd.is_nda and (cmd.kind is CommandType.RD
                                or cmd.kind is CommandType.WR)):
            # Row commands, refresh and host column commands all extend the
            # rank's host-busy windows; let the idle statistics catch up on
            # the unmutated window first.
            self.busy_observer(cmd.addr.channel, cmd.addr.rank, now)

        if cmd.kind is CommandType.ACT:
            bank.rd_allowed = max(bank.rd_allowed, now + t.tRCD)
            bank.wr_allowed = max(bank.wr_allowed, now + t.tRCD)
            bank.pre_allowed = max(bank.pre_allowed, now + t.tRAS)
            bank.act_allowed = max(bank.act_allowed, now + t.tRC)
            rank.act_allowed = max(rank.act_allowed, now + t.tRRDS)
            bg = cmd.addr.bank_group
            rank.act_allowed_bg[bg] = max(rank.act_allowed_bg[bg], now + t.tRRDL)
            rank.faw_window.append(now)
            rank.busy_until = max(rank.busy_until, now + 1)
            return

        if cmd.kind is CommandType.PRE:
            bank.act_allowed = max(bank.act_allowed, now + t.tRP)
            rank.busy_until = max(rank.busy_until, now + 1)
            return

        if cmd.kind is CommandType.REF:
            rank.refreshing_until = max(rank.refreshing_until, now + t.tRFC)
            rank.refresh_due += t.tREFI
            for bg in range(self.org.bank_groups):
                for bk in range(self.org.banks_per_group):
                    b = self._banks[(cmd.addr.channel, cmd.addr.rank, bg, bk)]
                    b.act_allowed = max(b.act_allowed, now + t.tRFC)
            rank.busy_until = max(rank.busy_until, now + t.tRFC)
            return

        # Column commands.
        is_read = cmd.kind is CommandType.RD
        data_start = now + (t.tCL if is_read else t.tCWL)
        data_end = data_start + t.tBL

        if is_read:
            bank.pre_allowed = max(bank.pre_allowed, now + t.tRTP)
            rank.last_read_cycle = now
            rank.last_read_bg = cmd.addr.bank_group
            if cmd.is_nda:
                rank.last_nda_read_cycle = now
            else:
                rank.last_host_read_cycle = now
        else:
            bank.pre_allowed = max(bank.pre_allowed, now + t.write_to_precharge)
            rank.last_write_cycle = now
            rank.last_write_bg = cmd.addr.bank_group

        if cmd.is_nda:
            rank.nda_bus_free = max(rank.nda_bus_free, data_end)
        else:
            channel = self._channels[cmd.addr.channel]
            channel.data_bus_free = max(channel.data_bus_free, data_end)
            channel.last_col_rank = cmd.addr.rank
            channel.last_data_end = data_end
            channel.last_col_was_write = not is_read
            channel.last_col_cycle = now
            # The rank is occupied by the host for the command cycle and for
            # the data-burst window; the gap in between (CAS latency) is a
            # short idle period the NDA may exploit (Section III-B).
            rank.busy_until = max(rank.busy_until, now + 1)
            if data_start >= rank.data_busy_until:
                rank.data_busy_from = data_start
            rank.data_busy_until = max(rank.data_busy_until, data_end)

    # ------------------------------------------------------------------ #
    # Refresh bookkeeping
    # ------------------------------------------------------------------ #

    def refresh_due(self, channel: int, rank: int, now: int) -> bool:
        """Whether a refresh is due for the given rank at cycle ``now``."""
        return now >= self._ranks[(channel, rank)].refresh_due

    def refresh_urgency(self, channel: int, rank: int, now: int) -> float:
        """How overdue the next refresh is, in multiples of tREFI."""
        due = self._ranks[(channel, rank)].refresh_due
        return (now - due) / self.timing.tREFI if now > due else 0.0

    # ------------------------------------------------------------------ #
    # Host-busy queries used by the NDA opportunistic scheduler
    # ------------------------------------------------------------------ #

    def rank_host_busy(self, channel: int, rank: int, now: int) -> bool:
        """Whether the host currently occupies the rank (command or data)."""
        state = self._ranks[(channel, rank)]
        if state.busy_until > now:
            return True
        return state.data_busy_from <= now < state.data_busy_until

    def next_host_free_cycle(self, channel: int, rank: int, now: int) -> int:
        """Earliest cycle >= ``now`` at which the rank is host-free.

        Valid until the next host command issues to the rank; the event
        engine uses it to find the next NDA issue opportunity without
        stepping through host-busy cycles one by one.
        """
        state = self._ranks[(channel, rank)]
        cycle = now
        while True:
            if cycle < state.busy_until:
                cycle = state.busy_until
                continue
            if state.data_busy_from <= cycle < state.data_busy_until:
                cycle = state.data_busy_until
                continue
            return cycle

    def host_busy_runs(self, channel: int, rank: int, start: int,
                       stop: int) -> List[Tuple[bool, int]]:
        """Partition ``[start, stop)`` into (host_busy, cycle_count) runs.

        Exact under the engine's fast-forward contract: no command issues to
        the rank inside the window, so busy-ness over the window is fully
        determined by the current timing state.  Feeding the runs to the
        idle-period statistics is bit-identical to observing each cycle.
        """
        state = self._ranks[(channel, rank)]
        breakpoints = {start, stop}
        for edge in (state.busy_until, state.data_busy_from,
                     state.data_busy_until):
            if start < edge < stop:
                breakpoints.add(edge)
        points = sorted(breakpoints)
        runs: List[Tuple[bool, int]] = []
        for a, b in zip(points, points[1:]):
            busy = (a < state.busy_until
                    or state.data_busy_from <= a < state.data_busy_until)
            runs.append((busy, b - a))
        return runs

    def next_refresh_due_cycle(self, channel: int, rank: int) -> int:
        """Absolute cycle at which the rank's next refresh becomes due."""
        return self._ranks[(channel, rank)].refresh_due

    def read_latency(self) -> int:
        """Cycles from RD issue until the last data beat is received."""
        return self.timing.tCL + self.timing.tBL

    def write_latency(self) -> int:
        """Cycles from WR issue until the last data beat is driven."""
        return self.timing.tCWL + self.timing.tBL
