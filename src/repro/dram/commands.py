"""DRAM command and address types."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional


class CommandType(enum.Enum):
    """DDR4 command set used by the simulator."""

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"

    @property
    def is_column(self) -> bool:
        """True for commands that move data (occupy a data bus)."""
        return self in (CommandType.RD, CommandType.WR)

    @property
    def is_row(self) -> bool:
        """True for row commands (ACT/PRE)."""
        return self in (CommandType.ACT, CommandType.PRE)


class RequestSource(enum.Enum):
    """Who issued a command: the host memory controller or a rank's NDA."""

    HOST = "host"
    NDA = "nda"


class DramAddress(NamedTuple):
    """A fully decoded DRAM location.

    ``column`` is in cache-line granularity (one column = one 64-byte burst
    across the rank, or 8 bytes per chip for NDA-local accesses).
    """

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Bank index within the rank, flattened over bank groups."""
        return self.bank_group * 4 + self.bank

    def with_column(self, column: int) -> "DramAddress":
        return self._replace(column=column)

    def with_row(self, row: int) -> "DramAddress":
        return self._replace(row=row)

    def same_bank(self, other: "DramAddress") -> bool:
        return (self.channel == other.channel and self.rank == other.rank
                and self.bank_group == other.bank_group and self.bank == other.bank)


@dataclass
class Command:
    """A DRAM command ready to be issued to a device.

    Attributes
    ----------
    kind:
        The command type.
    addr:
        Target DRAM address.  For ``PRE`` and ``REF`` only the bank/rank
        portion is meaningful.
    source:
        ``HOST`` for commands issued by the host memory controller over the
        channel C/A bus, ``NDA`` for commands issued locally by a rank's NDA
        memory controller.
    request_id:
        Identifier of the originating memory request (host requests only).
    """

    kind: CommandType
    addr: DramAddress
    source: RequestSource = RequestSource.HOST
    request_id: Optional[int] = None

    @property
    def is_nda(self) -> bool:
        return self.source is RequestSource.NDA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Command({self.kind.name}, ch{self.addr.channel} rk{self.addr.rank} "
                f"bg{self.addr.bank_group} bk{self.addr.bank} row{self.addr.row} "
                f"col{self.addr.column}, {self.source.value})")
