"""DRAM command and address types.

Hot-path notes: :class:`DramAddress` carries *optional* dense indices
(``rank_index``/``bank_index``) stamped at decode time by the address
mappings (and by the NDA controller's local address builder).  The timing
engine and device use them to index flat per-rank/per-bank state arrays
without tuple hashing; an unstamped address (``-1``) falls back to a cheap
arithmetic recomputation, so hand-built addresses (tests, refresh plumbing)
keep working.  The indices are deliberately excluded from equality and
hashing — two addresses naming the same DRAM coordinates compare equal no
matter who built them.
"""

from __future__ import annotations

import collections
import enum
from typing import Optional


class CommandType(enum.Enum):
    """DDR4 command set used by the simulator.

    ``is_column`` (moves data / occupies a data bus: RD, WR) and ``is_row``
    (ACT, PRE) are plain per-member attributes, assigned below — the hot
    paths read them every command attempt, and a property that builds a
    membership tuple per call is measurable at that rate.
    """

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"


for _member in CommandType:
    _member.is_column = _member in (CommandType.RD, CommandType.WR)
    _member.is_row = _member in (CommandType.ACT, CommandType.PRE)
del _member


class RequestSource(enum.Enum):
    """Who issued a command: the host memory controller or a rank's NDA."""

    HOST = "host"
    NDA = "nda"


_DramAddressBase = collections.namedtuple(
    "_DramAddressBase",
    ("channel", "rank", "bank_group", "bank", "row", "column",
     "rank_index", "bank_index"),
    defaults=(-1, -1),
)


class DramAddress(_DramAddressBase):
    """A fully decoded DRAM location.

    ``column`` is in cache-line granularity (one column = one 64-byte burst
    across the rank, or 8 bytes per chip for NDA-local accesses).

    ``rank_index``/``bank_index`` are dense flat indices over the whole
    system (``rank_index = channel * ranks_per_channel + rank``,
    ``bank_index = rank_index * banks_per_rank + flat_bank``); ``-1`` means
    "not stamped".  They are an addressing-time cache for the timing
    engine's flat state arrays and never participate in equality, hashing
    or ``same_bank``.  The address must stay immutable: stamped indices are
    only valid for the coordinates they were computed from, so mutation
    would silently corrupt flat-array lookups (``_replace`` clears them
    whenever a bank-identifying coordinate changes).
    """

    __slots__ = ()

    @property
    def flat_bank(self) -> int:
        """Bank index within the rank, flattened over bank groups."""
        return self.bank_group * 4 + self.bank

    def with_column(self, column: int) -> "DramAddress":
        # Column changes keep the bank identity, so stamps stay valid.
        return self._make((self.channel, self.rank, self.bank_group, self.bank,
                           self.row, column, self.rank_index, self.bank_index))

    def with_row(self, row: int) -> "DramAddress":
        return self._make((self.channel, self.rank, self.bank_group, self.bank,
                           row, self.column, self.rank_index, self.bank_index))

    def _replace(self, **kwargs) -> "DramAddress":
        if any(key in kwargs for key in ("channel", "rank", "bank_group", "bank")):
            kwargs.setdefault("rank_index", -1)
            kwargs.setdefault("bank_index", -1)
        return super()._replace(**kwargs)

    def same_bank(self, other: "DramAddress") -> bool:
        return (self.channel == other.channel and self.rank == other.rank
                and self.bank_group == other.bank_group and self.bank == other.bank)

    # Equality/hashing over the six DRAM coordinates only, so stamped and
    # unstamped addresses of one location are interchangeable as values.

    def __eq__(self, other) -> bool:
        if isinstance(other, DramAddress):
            return self[:6] == other[:6]
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self[:6])


class Command:
    """A DRAM command ready to be issued to a device.

    A plain ``__slots__`` class (not a dataclass): commands used to be
    allocated per queued request per scheduler scan; the scan is now
    value-based and builds exactly one ``Command`` per issued command, but
    the slotted layout keeps even that allocation small.

    Attributes
    ----------
    kind:
        The command type.
    addr:
        Target DRAM address.  For ``PRE`` and ``REF`` only the bank/rank
        portion is meaningful.
    source:
        ``HOST`` for commands issued by the host memory controller over the
        channel C/A bus, ``NDA`` for commands issued locally by a rank's NDA
        memory controller.
    request_id:
        Identifier of the originating memory request (host requests only).
    """

    __slots__ = ("kind", "addr", "source", "request_id", "is_nda")

    def __init__(self, kind: CommandType, addr: DramAddress,
                 source: RequestSource = RequestSource.HOST,
                 request_id: Optional[int] = None) -> None:
        self.kind = kind
        self.addr = addr
        self.source = source
        self.request_id = request_id
        # Precomputed: read several times per issue on the hot path
        # (device counts, timing updates), where property-call overhead
        # is measurable.
        self.is_nda = source is RequestSource.NDA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Command({self.kind.name}, ch{self.addr.channel} rk{self.addr.rank} "
                f"bg{self.addr.bank_group} bk{self.addr.bank} row{self.addr.row} "
                f"col{self.addr.column}, {self.source.value})")
