"""Small statistics helpers used throughout the simulator."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Optional


class Counter:
    """A named group of monotonically increasing event counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._counts


class MovingAverage:
    """Fixed-window moving average."""

    def __init__(self, window: int = 64) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)
        self._sum = 0.0

    def add(self, value: float) -> None:
        if len(self._values) == self.window:
            self._sum -= self._values[0]
        self._values.append(value)
        self._sum += value

    @property
    def value(self) -> float:
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    def __len__(self) -> int:
        return len(self._values)


class RateMeter:
    """Tracks an event rate (events per cycle) over a simulation run."""

    def __init__(self) -> None:
        self.events = 0
        self.quantity = 0.0
        self.start_cycle: Optional[int] = None
        self.last_cycle: Optional[int] = None

    def record(self, cycle: int, quantity: float = 1.0) -> None:
        if self.start_cycle is None:
            self.start_cycle = cycle
        self.last_cycle = cycle
        self.events += 1
        self.quantity += quantity

    def rate(self, total_cycles: Optional[int] = None) -> float:
        """Quantity per cycle over the measured window (or given window)."""
        if total_cycles is not None and total_cycles > 0:
            return self.quantity / total_cycles
        if self.start_cycle is None or self.last_cycle is None:
            return 0.0
        span = max(1, self.last_cycle - self.start_cycle + 1)
        return self.quantity / span


class WindowedStat:
    """Accumulates samples and reports simple summary statistics."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "WindowedStat") -> None:
        self.count += other.count
        self.total += other.total
        for attr in ("minimum", "maximum"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is None:
                continue
            if mine is None:
                setattr(self, attr, theirs)
            elif attr == "minimum":
                setattr(self, attr, min(mine, theirs))
            else:
                setattr(self, attr, max(mine, theirs))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; returns 0 for an empty sequence."""
    values = [v for v in values]
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values; returns 0 for an empty sequence."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
