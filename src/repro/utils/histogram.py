"""Bucketed histograms.

The rank idle-time analysis of Figure 2 reports the fraction of time a rank
spends busy or idle, with idle periods broken into duration buckets
(1-10, 10-100, 100-250, 250-500, 500-1000 and 1000+ cycles).  The
:class:`BucketHistogram` here accumulates *weighted* samples (each idle period
contributes its full length to its bucket) so the result is a time breakdown,
matching the figure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Bucket upper bounds (exclusive) used by Figure 2, in DRAM cycles.  The
#: final bucket is unbounded.
IDLE_BUCKETS: Tuple[int, ...] = (10, 100, 250, 500, 1000)

#: Human-readable labels for the Figure 2 buckets, shortest first.
IDLE_BUCKET_LABELS: Tuple[str, ...] = (
    "1-10", "10-100", "100-250", "250-500", "500-1000", "1000-",
)


class BucketHistogram:
    """Histogram over configurable value buckets with weighted samples."""

    def __init__(self, bounds: Sequence[int] = IDLE_BUCKETS,
                 labels: Sequence[str] = IDLE_BUCKET_LABELS) -> None:
        if len(labels) != len(bounds) + 1:
            raise ValueError("need exactly one more label than bucket bounds")
        self.bounds: Tuple[int, ...] = tuple(bounds)
        self.labels: Tuple[str, ...] = tuple(labels)
        self.weights: List[float] = [0.0] * (len(bounds) + 1)
        self.counts: List[int] = [0] * (len(bounds) + 1)

    def bucket_index(self, value: float) -> int:
        """Index of the bucket a value falls into."""
        for i, bound in enumerate(self.bounds):
            if value < bound:
                return i
        return len(self.bounds)

    def add(self, value: float, weight: float = None) -> None:
        """Add a sample.  Weight defaults to the value itself.

        Using the value as its own weight turns the histogram into a *time*
        breakdown: an idle period of 300 cycles contributes 300 cycles of
        time to the 250-500 bucket.
        """
        idx = self.bucket_index(value)
        self.counts[idx] += 1
        self.weights[idx] += value if weight is None else weight

    @property
    def total_weight(self) -> float:
        return sum(self.weights)

    @property
    def total_count(self) -> int:
        return sum(self.counts)

    def fractions(self, extra_total: float = 0.0) -> Dict[str, float]:
        """Per-bucket weight fraction.

        ``extra_total`` is added to the denominator; Figure 2 uses it to add
        the busy time so the fractions sum to the full simulation window.
        """
        denom = self.total_weight + extra_total
        if denom <= 0:
            return {label: 0.0 for label in self.labels}
        return {label: self.weights[i] / denom for i, label in enumerate(self.labels)}

    def merge(self, other: "BucketHistogram") -> None:
        """Accumulate another histogram with identical buckets into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i in range(len(self.weights)):
            self.weights[i] += other.weights[i]
            self.counts[i] += other.counts[i]

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.labels, self.weights))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{l}={w:.0f}" for l, w in zip(self.labels, self.weights))
        return f"BucketHistogram({parts})"
