"""Shared utilities: deterministic RNG, histograms, counters and rate meters."""

from repro.utils.rng import DeterministicRng
from repro.utils.histogram import BucketHistogram, IDLE_BUCKETS
from repro.utils.stats import Counter, MovingAverage, RateMeter, WindowedStat

__all__ = [
    "DeterministicRng",
    "BucketHistogram",
    "IDLE_BUCKETS",
    "Counter",
    "MovingAverage",
    "RateMeter",
    "WindowedStat",
]
