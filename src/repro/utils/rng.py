"""Deterministic random number generation.

Every stochastic component of the simulator (traffic generators, stochastic
NDA issue, synthetic datasets) draws from a :class:`DeterministicRng` that is
seeded from the system seed plus a component-specific stream name.  This keeps
runs reproducible regardless of component construction order.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(base_seed: int, stream: str) -> int:
    """Derive a 64-bit stream seed from a base seed and a stream label."""
    digest = hashlib.sha256(f"{base_seed}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """A named, reproducible random stream.

    Parameters
    ----------
    base_seed:
        The system-wide seed (``SystemConfig.seed``).
    stream:
        A label identifying the consumer, e.g. ``"traffic.core0"``.
    """

    def __init__(self, base_seed: int, stream: str) -> None:
        self.base_seed = base_seed
        self.stream = stream
        self._rng = random.Random(_derive_seed(base_seed, stream))

    def spawn(self, substream: str) -> "DeterministicRng":
        """Create an independent child stream."""
        return DeterministicRng(self.base_seed, f"{self.stream}/{substream}")

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._rng.randint(lo, hi)

    def randrange(self, n: int) -> int:
        """Uniform integer in [0, n)."""
        return self._rng.randrange(n)

    def coin(self, probability: float) -> bool:
        """Bernoulli trial with the given success probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        self._rng.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def numpy_seed(self) -> int:
        """A 32-bit seed suitable for ``numpy.random.default_rng``."""
        return _derive_seed(self.base_seed, self.stream) & 0xFFFFFFFF

    def getstate(self):
        """The underlying Mersenne Twister state (checkpointing)."""
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._rng.setstate(state)
