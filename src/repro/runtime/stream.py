"""Asynchronous and macro NDA operation launches (Section V).

Short NDA operations (for example the per-sample AXPY in the average-gradient
kernel of Figure 8) suffer load imbalance when launched blocking: every rank
must finish before the next launch.  Chopim's runtime therefore supports
asynchronous launches grouped into *macro operations* — analogous to CUDA
streams or OpenMP ``parallel for`` with ``nowait`` — that only synchronize
once at the end of the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.nda.launch import NdaOperation


@dataclass
class MacroOperation:
    """A group of asynchronously launched NDA operations with one barrier."""

    name: str
    operations: List[NdaOperation] = field(default_factory=list)

    def add(self, operation: NdaOperation) -> None:
        self.operations.append(operation)

    @property
    def launched(self) -> int:
        return len(self.operations)

    @property
    def completed(self) -> int:
        return sum(1 for op in self.operations if op.completed_cycle is not None)

    @property
    def done(self) -> bool:
        return self.completed == len(self.operations)

    def completion_cycle(self) -> Optional[int]:
        if not self.done or not self.operations:
            return None
        return max(op.completed_cycle or 0 for op in self.operations)


class NdaStream:
    """An ordered stream of NDA operations with async semantics.

    Operations appended to the stream are launched without blocking the
    caller; :meth:`synchronize` advances the simulator until every operation
    in the stream has completed.
    """

    def __init__(self, runtime: "object", name: str = "stream0") -> None:
        # ``runtime`` is a ChopimRuntime; typed loosely to avoid an import cycle.
        self._runtime = runtime
        self.name = name
        self._operations: List[NdaOperation] = []

    def append(self, operation: NdaOperation) -> NdaOperation:
        self._operations.append(operation)
        return operation

    @property
    def pending(self) -> int:
        return sum(1 for op in self._operations if op.completed_cycle is None)

    @property
    def done(self) -> bool:
        return self.pending == 0

    def synchronize(self, max_cycles: int = 2_000_000) -> int:
        """Advance the simulator until the stream drains; returns cycles spent."""
        return self._runtime.run_until(lambda: self.done, max_cycles=max_cycles)

    def clear_completed(self) -> None:
        self._operations = [op for op in self._operations
                            if op.completed_cycle is None]
