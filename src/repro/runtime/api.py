"""The user-facing NDA array API (paper Figure 8).

:class:`ChopimRuntime` exposes NDA vectors and matrices backed by real numpy
storage (so results are functionally correct) plus physical placement in
colored shared regions of the simulated memory system (so launches have
faithful timing).  The Table I operations are provided as methods; each call

1. validates operand colors (inserting copies when operands live in regions
   of different colors, as the paper's runtime does),
2. computes the functional result with numpy,
3. submits the corresponding NDA operation(s) to the simulated host-side NDA
   controller, and
4. optionally advances the simulator until the operation completes
   (blocking launch) or returns immediately (asynchronous launch).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import SystemConfig
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.nda.isa import NdaOpcode
from repro.nda.launch import NdaOperation
from repro.runtime.allocator import RuntimeAllocator, SharedRegion
from repro.runtime.stream import MacroOperation, NdaStream

_array_ids = itertools.count()


class ColorMismatchError(Exception):
    """Raised when operands of one NDA operation live in different colors
    and automatic copying has been disabled."""


@dataclass
class NdaArray:
    """Base class for NDA-resident arrays."""

    data: np.ndarray
    region: Optional[SharedRegion]
    virtual_address: int
    private: bool = False
    array_id: int = field(default_factory=lambda: next(_array_ids))

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def color(self) -> Optional[Tuple[int, int]]:
        return self.region.color if self.region is not None else None

    def numpy(self) -> np.ndarray:
        """The functional contents of the array."""
        return self.data


@dataclass
class NdaVector(NdaArray):
    """A dense vector resident in NDA-shared memory."""

    @property
    def length(self) -> int:
        return int(self.data.shape[0])


@dataclass
class NdaMatrix(NdaArray):
    """A dense row-major matrix resident in NDA-shared memory."""

    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def cols(self) -> int:
        return int(self.data.shape[1])


class ChopimRuntime:
    """Memory management plus NDA operation launch for one application."""

    def __init__(self, system: Optional[ChopimSystem] = None,
                 config: Optional[SystemConfig] = None,
                 mode: AccessMode = AccessMode.BANK_PARTITIONED,
                 mix: Optional[str] = "mix1",
                 blocking: bool = True,
                 auto_copy_on_color_mismatch: bool = True,
                 dtype: np.dtype = np.float32) -> None:
        if system is None:
            system = ChopimSystem(config=config, mode=mode, mix=mix)
        self.system = system
        self.blocking = blocking
        self.auto_copy = auto_copy_on_color_mismatch
        self.dtype = np.dtype(dtype)
        frame_bytes = self.system.config.org.system_row_bytes
        self.allocator = RuntimeAllocator.for_mapping(self.system.mapping, frame_bytes)
        self._default_region: Optional[SharedRegion] = None
        self.copies_inserted = 0
        self.operations_submitted = 0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def _region_for(self, size: int, region: Optional[SharedRegion]) -> SharedRegion:
        if region is not None:
            return region
        # Reservations are aligned to the system-row (frame) granularity, so
        # budget a full frame of slack on top of the requested size.
        needed = size + self.allocator.frame_bytes
        if (self._default_region is None
                or self._default_region.bytes_free < needed):
            request = max(needed * 2, 8 * self.allocator.frame_bytes)
            self._default_region = self.allocator.create_region(request)
        return self._default_region

    def shared_region(self, size_bytes: int,
                      color: Optional[Tuple[int, int]] = None) -> SharedRegion:
        """Explicitly create a shared region (one color)."""
        return self.allocator.create_region(size_bytes, color)

    def vector(self, length: int, region: Optional[SharedRegion] = None,
               private: bool = False, init: Optional[np.ndarray] = None) -> NdaVector:
        """Allocate a shared (or PE-private) vector of ``length`` elements."""
        data = np.zeros(length, dtype=self.dtype) if init is None else \
            np.asarray(init, dtype=self.dtype).copy()
        size = data.nbytes
        if private:
            # Private allocations hold one copy per NDA and never leave the
            # rank; they do not consume shared-region space.
            return NdaVector(data=data, region=None, virtual_address=0, private=True)
        target = self._region_for(size, region)
        vaddr = target.reserve(size, alignment=self.allocator.frame_bytes)
        return NdaVector(data=data, region=target, virtual_address=vaddr)

    def matrix(self, rows: int, cols: int, region: Optional[SharedRegion] = None,
               init: Optional[np.ndarray] = None) -> NdaMatrix:
        """Allocate a shared row-major matrix."""
        data = np.zeros((rows, cols), dtype=self.dtype) if init is None else \
            np.asarray(init, dtype=self.dtype).reshape(rows, cols).copy()
        target = self._region_for(data.nbytes, region)
        vaddr = target.reserve(data.nbytes, alignment=self.allocator.frame_bytes)
        return NdaMatrix(data=data, region=target, virtual_address=vaddr)

    # ------------------------------------------------------------------ #
    # Launch plumbing
    # ------------------------------------------------------------------ #

    def _check_colors(self, arrays: Sequence[NdaArray]) -> None:
        colors = {a.color for a in arrays if a.region is not None}
        if len(colors) <= 1:
            return
        if not self.auto_copy:
            raise ColorMismatchError(
                f"operands span colors {sorted(colors)}; allocate them from the "
                "same shared region or enable auto_copy_on_color_mismatch"
            )
        # Model the copy the runtime would insert: one COPY operation per
        # mismatched operand (data itself is already consistent in numpy).
        self.copies_inserted += len(colors) - 1
        for _ in range(len(colors) - 1):
            self._submit(NdaOpcode.COPY, total_elements=arrays[0].data.size,
                         blocking=False)

    def _submit(self, opcode: NdaOpcode, total_elements: int,
                blocking: Optional[bool] = None, async_launch: bool = False,
                matrix_columns: int = 0, cache_blocks: Optional[int] = None,
                ) -> NdaOperation:
        operation = self.system.nda_host.submit_kernel(
            opcode,
            total_elements=max(1, int(total_elements)),
            cache_blocks=cache_blocks,
            async_launch=async_launch,
            matrix_columns=matrix_columns,
        )
        self.operations_submitted += 1
        should_block = self.blocking if blocking is None else blocking
        if should_block and not async_launch:
            self.run_until(lambda: operation.completed_cycle is not None)
        return operation

    def run_until(self, predicate: Callable[[], bool],
                  max_cycles: int = 2_000_000) -> int:
        """Advance the simulator until ``predicate()`` holds; returns cycles."""
        start = self.system.now
        while not predicate():
            if self.system.now - start >= max_cycles:
                raise TimeoutError(
                    f"condition not reached within {max_cycles} cycles"
                )
            self.system.step()
        return self.system.now - start

    def run_until_idle(self, max_cycles: int = 2_000_000) -> int:
        return self.run_until(lambda: self.system.nda_host.idle, max_cycles)

    def stream(self, name: str = "stream0") -> NdaStream:
        return NdaStream(self, name)

    # ------------------------------------------------------------------ #
    # Table I operations
    # ------------------------------------------------------------------ #

    def copy(self, dst: NdaVector, src: NdaVector, **launch) -> NdaOperation:
        """dst = src."""
        self._check_colors([dst, src])
        dst.data[:] = src.data
        return self._submit(NdaOpcode.COPY, src.length, **launch)

    def scal(self, x: NdaVector, alpha: float, **launch) -> NdaOperation:
        """x = alpha * x."""
        x.data *= self.dtype.type(alpha)
        return self._submit(NdaOpcode.SCAL, x.length, **launch)

    def axpy(self, y: NdaVector, alpha: float, x: Union[NdaVector, np.ndarray],
             **launch) -> NdaOperation:
        """y = alpha * x + y (Table I writes it as y = a*y + x; same traffic)."""
        x_data = x.data if isinstance(x, NdaArray) else np.asarray(x, dtype=self.dtype)
        if isinstance(x, NdaArray):
            self._check_colors([y, x])
        y.data += self.dtype.type(alpha) * x_data
        return self._submit(NdaOpcode.AXPY, y.length, **launch)

    def axpby(self, z: NdaVector, alpha: float, x: NdaVector, beta: float,
              y: NdaVector, **launch) -> NdaOperation:
        """z = alpha * x + beta * y."""
        self._check_colors([z, x, y])
        z.data[:] = self.dtype.type(alpha) * x.data + self.dtype.type(beta) * y.data
        return self._submit(NdaOpcode.AXPBY, z.length, **launch)

    def axpbypcz(self, w: NdaVector, alpha: float, x: NdaVector, beta: float,
                 y: NdaVector, gamma: float, z: NdaVector, **launch) -> NdaOperation:
        """w = alpha * x + beta * y + gamma * z."""
        self._check_colors([w, x, y, z])
        w.data[:] = (self.dtype.type(alpha) * x.data
                     + self.dtype.type(beta) * y.data
                     + self.dtype.type(gamma) * z.data)
        return self._submit(NdaOpcode.AXPBYPCZ, w.length, **launch)

    def xmy(self, z: NdaVector, x: NdaVector, y: NdaVector, **launch) -> NdaOperation:
        """z = x (element-wise multiply) y."""
        self._check_colors([z, x, y])
        z.data[:] = x.data * y.data
        return self._submit(NdaOpcode.XMY, x.length, **launch)

    def dot(self, x: NdaVector, y: NdaVector, **launch) -> float:
        """Return x . y (scalar reductions are returned through the host)."""
        self._check_colors([x, y])
        self._submit(NdaOpcode.DOT, x.length, **launch)
        return float(np.dot(x.data.astype(np.float64), y.data.astype(np.float64)))

    def nrm2(self, x: NdaVector, **launch) -> float:
        """Return ||x||_2."""
        self._submit(NdaOpcode.NRM2, x.length, **launch)
        return float(np.linalg.norm(x.data.astype(np.float64)))

    def gemv(self, y: NdaVector, a: NdaMatrix, x: NdaVector, **launch) -> NdaOperation:
        """y = A x."""
        self._check_colors([y, a, x])
        y.data[:] = (a.data.astype(np.float64) @ x.data.astype(np.float64)).astype(self.dtype)
        return self._submit(NdaOpcode.GEMV, a.rows, matrix_columns=a.cols, **launch)

    # ------------------------------------------------------------------ #
    # Host-side helpers used by the case-study code (Figure 8)
    # ------------------------------------------------------------------ #

    @staticmethod
    def host_sigmoid(dst: NdaVector, src: NdaVector) -> None:
        """dst = sigmoid(src), computed on the host."""
        dst.data[:] = 1.0 / (1.0 + np.exp(-src.data.astype(np.float64)))

    @staticmethod
    def host_reduce(dst: NdaVector, private: NdaVector) -> None:
        """Global reduction of PE-private copies into a shared vector."""
        dst.data[:] = private.data

    # ------------------------------------------------------------------ #
    # Macro operations (parallel_for of Figure 8)
    # ------------------------------------------------------------------ #

    def macro(self, name: str = "macro") -> MacroOperation:
        return MacroOperation(name)

    def axpy_macro(self, macro: MacroOperation, y: NdaVector, alpha: float,
                   x_row: np.ndarray) -> NdaOperation:
        """One asynchronous AXPY inside a macro operation (Figure 8's loop)."""
        y.data += self.dtype.type(alpha) * np.asarray(x_row, dtype=self.dtype)
        operation = self._submit(NdaOpcode.AXPY, y.length, blocking=False,
                                 async_launch=True)
        macro.add(operation)
        return operation

    def macro_wait(self, macro: MacroOperation, max_cycles: int = 2_000_000) -> int:
        """Barrier at the end of a macro operation."""
        return self.run_until(lambda: macro.done, max_cycles=max_cycles)
