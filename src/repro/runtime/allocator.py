"""Runtime memory allocation: colored shared regions for NDA operands.

A *shared region* is a set of system-row-aligned frames of one color mapped
contiguously into the application's virtual address space.  All operands of
one NDA instruction must come from regions of the same color; the runtime
inserts copies otherwise (Section V).  In the paper's reference system there
are 8 colors and each color corresponds to a 4 GiB region; here the counts
follow the configured geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.addressing.bank_partition import BankPartitionMapping
from repro.addressing.mapping import AddressMapping
from repro.osmodel.coloring import ColoredFrameAllocator
from repro.osmodel.vm import VirtualMemory


@dataclass
class SharedRegion:
    """A colored, virtually contiguous region for NDA-visible data."""

    region_id: int
    color: Tuple[int, int]
    virtual_base: int
    size_bytes: int
    frames: List[int]
    frame_bytes: int
    _cursor: int = 0

    @property
    def bytes_free(self) -> int:
        return self.size_bytes - self._cursor

    def reserve(self, size: int, alignment: int) -> int:
        """Reserve ``size`` bytes inside the region; returns the virtual address."""
        aligned = (self._cursor + alignment - 1) // alignment * alignment
        if aligned + size > self.size_bytes:
            raise MemoryError(
                f"shared region {self.region_id} exhausted "
                f"({size} bytes requested, {self.size_bytes - aligned} available)"
            )
        self._cursor = aligned + size
        return self.virtual_base + aligned


class RuntimeAllocator:
    """Creates shared (colored) and private regions for the runtime."""

    def __init__(self, mapping: AddressMapping, heap_base: int, heap_bytes: int,
                 frame_bytes: int) -> None:
        self.mapping = mapping
        self.frame_bytes = frame_bytes
        self.vm = VirtualMemory(page_bytes=4096)
        self.frame_allocator = ColoredFrameAllocator(
            mapping, heap_base, heap_bytes, frame_bytes
        )
        self._regions: List[SharedRegion] = []

    # ------------------------------------------------------------------ #

    @classmethod
    def for_mapping(cls, mapping: AddressMapping, frame_bytes: int,
                    heap_fraction: float = 0.25) -> "RuntimeAllocator":
        """Place the NDA heap at the top of the NDA-visible address space.

        With bank partitioning the heap is the dedicated shared region
        (reserved banks); otherwise it is carved from the top of the physical
        address space.
        """
        if isinstance(mapping, BankPartitionMapping):
            base = mapping.shared_base()
            size = mapping.shared_capacity_bytes
        else:
            size = int(mapping.capacity_bytes * heap_fraction)
            size = (size // frame_bytes) * frame_bytes
            base = mapping.capacity_bytes - size
        base = (base // frame_bytes) * frame_bytes
        size = (size // frame_bytes) * frame_bytes
        return cls(mapping, base, size, frame_bytes)

    # ------------------------------------------------------------------ #

    def available_colors(self) -> List[Tuple[int, int]]:
        return self.frame_allocator.colors()

    def create_region(self, size_bytes: int,
                      color: Optional[Tuple[int, int]] = None) -> SharedRegion:
        """Create a shared region of at least ``size_bytes`` of one color."""
        frames = self.frame_allocator.allocate_bytes(size_bytes, color)
        actual_color = self.frame_allocator.color_of(frames[0])
        virtual_base = self.vm.map_frames(frames, self.frame_bytes)
        region = SharedRegion(
            region_id=len(self._regions),
            color=actual_color,
            virtual_base=virtual_base,
            size_bytes=len(frames) * self.frame_bytes,
            frames=frames,
            frame_bytes=self.frame_bytes,
        )
        self._regions.append(region)
        return region

    def regions(self) -> List[SharedRegion]:
        return list(self._regions)

    def translate(self, vaddr: int) -> int:
        """Host-based translation of an operand origin (Section V)."""
        return self.vm.translate(vaddr)

    def physical_extents(self, vaddr: int, size: int) -> List[Tuple[int, int]]:
        return self.vm.translate_range(vaddr, size)

    def same_color(self, regions: List[SharedRegion]) -> bool:
        if not regions:
            return True
        return all(r.color == regions[0].color for r in regions)
