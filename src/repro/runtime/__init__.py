"""Chopim runtime: memory allocation, the NDA array API and async streams.

The runtime is the software layer of Section V: it allocates NDA operands in
colored, system-row-aligned shared regions so that coarse-grain NDA
instructions find all their operands rank-aligned, translates operand origins
to physical addresses at launch time, splits API calls into per-rank NDA
operations, and supports blocking, asynchronous and macro (``parallel_for``)
launches.
"""

from repro.runtime.allocator import SharedRegion, RuntimeAllocator
from repro.runtime.api import ChopimRuntime, NdaMatrix, NdaVector
from repro.runtime.stream import MacroOperation, NdaStream

__all__ = [
    "SharedRegion",
    "RuntimeAllocator",
    "ChopimRuntime",
    "NdaVector",
    "NdaMatrix",
    "MacroOperation",
    "NdaStream",
]
