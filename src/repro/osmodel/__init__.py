"""OS memory-management model: buddy allocation, frame coloring, translation.

Chopim relies on the OS for two things (Section III-A): coarse-grain
allocation at system-row granularity (like huge pages) and physical-frame
coloring so that all operands of an NDA instruction are rank-aligned.  This
package models both on top of a buddy allocator, plus the host-based virtual
address translation used when launching NDA operations (Section V).
"""

from repro.osmodel.buddy import BuddyAllocator, OutOfMemoryError
from repro.osmodel.coloring import ColoredFrameAllocator
from repro.osmodel.vm import PageTable, VirtualMemory

__all__ = [
    "BuddyAllocator",
    "OutOfMemoryError",
    "ColoredFrameAllocator",
    "PageTable",
    "VirtualMemory",
]
