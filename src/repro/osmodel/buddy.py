"""Binary buddy allocator over a physical address range.

The paper notes that coarse-grain (system-row / 2 MiB) allocation "is simple
with the common buddy allocator if allocation granularity is also a system
row".  This is that allocator: power-of-two block sizes, splitting on demand
and coalescing buddies on free.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set


class OutOfMemoryError(Exception):
    """Raised when an allocation cannot be satisfied."""


def _round_up_pow2(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


class BuddyAllocator:
    """Buddy allocator over ``[base, base + size_bytes)``.

    ``min_block`` is the smallest allocatable block (the page size); all
    allocations are rounded up to a power-of-two multiple of it.
    """

    def __init__(self, base: int, size_bytes: int, min_block: int = 4096) -> None:
        if size_bytes <= 0 or min_block <= 0:
            raise ValueError("size_bytes and min_block must be positive")
        if min_block & (min_block - 1):
            raise ValueError("min_block must be a power of two")
        if size_bytes % min_block:
            raise ValueError("size_bytes must be a multiple of min_block")
        if base % min_block:
            raise ValueError("base must be aligned to min_block")
        self.base = base
        self.size_bytes = size_bytes
        self.min_block = min_block
        self.max_order = (size_bytes // min_block).bit_length() - 1
        # free_lists[order] holds block offsets (relative to base) of free
        # blocks of size min_block * 2**order.
        self._free: List[Set[int]] = [set() for _ in range(self.max_order + 1)]
        self._allocated: Dict[int, int] = {}  # offset -> order
        offset = 0
        remaining = size_bytes
        while remaining >= min_block:
            order = min(self.max_order, (remaining // min_block).bit_length() - 1)
            block = min_block << order
            self._free[order].add(offset)
            offset += block
            remaining -= block

    # ------------------------------------------------------------------ #

    def _order_for(self, size: int) -> int:
        blocks = _round_up_pow2(max(1, (size + self.min_block - 1) // self.min_block))
        order = blocks.bit_length() - 1
        if order > self.max_order:
            raise OutOfMemoryError(f"request of {size} bytes exceeds pool size")
        return order

    def allocate(self, size: int, alignment: Optional[int] = None) -> int:
        """Allocate at least ``size`` bytes; returns the physical base address.

        Buddy blocks are naturally aligned to their own size, which satisfies
        any ``alignment`` up to the block size; larger alignments raise.
        """
        order = self._order_for(size)
        block_size = self.min_block << order
        if alignment is not None and alignment > block_size:
            order = self._order_for(alignment)
            block_size = self.min_block << order
        offset = self._take_block(order)
        self._allocated[offset] = order
        return self.base + offset

    def _take_block(self, order: int) -> int:
        for o in range(order, self.max_order + 1):
            if self._free[o]:
                offset = min(self._free[o])
                self._free[o].remove(offset)
                # Split down to the requested order.
                while o > order:
                    o -= 1
                    buddy = offset + (self.min_block << o)
                    self._free[o].add(buddy)
                return offset
        raise OutOfMemoryError(
            f"no free block of order {order} ({self.min_block << order} bytes)"
        )

    def free(self, addr: int) -> None:
        offset = addr - self.base
        if offset not in self._allocated:
            raise ValueError(f"address {addr:#x} was not allocated by this pool")
        order = self._allocated.pop(offset)
        # Coalesce with the buddy while possible.
        while order < self.max_order:
            buddy = offset ^ (self.min_block << order)
            if buddy in self._free[order]:
                self._free[order].remove(buddy)
                offset = min(offset, buddy)
                order += 1
            else:
                break
        self._free[order].add(offset)

    # ------------------------------------------------------------------ #

    @property
    def allocated_bytes(self) -> int:
        return sum(self.min_block << order for order in self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return sum(len(blocks) * (self.min_block << order)
                   for order, blocks in enumerate(self._free))

    def fragmentation(self) -> float:
        """1 - (largest free block / total free bytes); 0 when unfragmented."""
        free_total = self.free_bytes
        if free_total == 0:
            return 0.0
        largest = 0
        for order in range(self.max_order, -1, -1):
            if self._free[order]:
                largest = self.min_block << order
                break
        return 1.0 - largest / free_total
