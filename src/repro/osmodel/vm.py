"""Virtual memory model: page tables and host-based translation for NDAs.

NDA operations in Chopim are constrained to physical regions that are
contiguous in the virtual address space; translation is performed by the host
when an NDA command is launched, and the NDAs themselves only perform bounds
checks (paper Section II, "Address Translation").  This module provides the
page-table model the runtime uses for that translation, supporting both 4 KiB
base pages and 2 MiB huge pages (the coarse-allocation granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


class TranslationError(Exception):
    """Raised when a virtual address has no mapping or crosses a hole."""


@dataclass(frozen=True)
class PageMapping:
    """One virtual-to-physical page mapping."""

    virtual_base: int
    physical_base: int
    size_bytes: int

    def contains(self, vaddr: int) -> bool:
        return self.virtual_base <= vaddr < self.virtual_base + self.size_bytes

    def translate(self, vaddr: int) -> int:
        if not self.contains(vaddr):
            raise TranslationError(f"vaddr {vaddr:#x} outside mapping")
        return self.physical_base + (vaddr - self.virtual_base)


class PageTable:
    """A sorted collection of page mappings for one address space."""

    def __init__(self, page_bytes: int = 4096) -> None:
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page_bytes must be a positive power of two")
        self.page_bytes = page_bytes
        self._mappings: List[PageMapping] = []

    def map(self, virtual_base: int, physical_base: int, size_bytes: int) -> None:
        if virtual_base % self.page_bytes or size_bytes % self.page_bytes:
            raise ValueError("mappings must be page-aligned and page-sized")
        new = PageMapping(virtual_base, physical_base, size_bytes)
        for existing in self._mappings:
            if (new.virtual_base < existing.virtual_base + existing.size_bytes
                    and existing.virtual_base < new.virtual_base + new.size_bytes):
                raise ValueError("overlapping virtual mapping")
        self._mappings.append(new)
        self._mappings.sort(key=lambda m: m.virtual_base)

    def unmap(self, virtual_base: int) -> None:
        for i, m in enumerate(self._mappings):
            if m.virtual_base == virtual_base:
                del self._mappings[i]
                return
        raise ValueError(f"no mapping at {virtual_base:#x}")

    def translate(self, vaddr: int) -> int:
        for m in self._mappings:
            if m.contains(vaddr):
                return m.translate(vaddr)
        raise TranslationError(f"no mapping for vaddr {vaddr:#x}")

    def translate_range(self, vaddr: int, size: int) -> List[Tuple[int, int]]:
        """Translate a virtual range into (physical base, length) extents."""
        extents: List[Tuple[int, int]] = []
        remaining = size
        cursor = vaddr
        while remaining > 0:
            mapping = None
            for m in self._mappings:
                if m.contains(cursor):
                    mapping = m
                    break
            if mapping is None:
                raise TranslationError(f"range crosses unmapped vaddr {cursor:#x}")
            available = mapping.virtual_base + mapping.size_bytes - cursor
            take = min(available, remaining)
            extents.append((mapping.translate(cursor), take))
            cursor += take
            remaining -= take
        return extents

    @property
    def mapped_bytes(self) -> int:
        return sum(m.size_bytes for m in self._mappings)

    def mappings(self) -> List[PageMapping]:
        return list(self._mappings)


class VirtualMemory:
    """A tiny process address-space model built on :class:`PageTable`.

    The runtime uses it to obtain virtually-contiguous views over the
    physically-colored frames the OS hands out, and to translate operand
    origins to physical addresses at NDA-launch time.
    """

    def __init__(self, page_bytes: int = 4096,
                 virtual_base: int = 0x1000_0000) -> None:
        self.page_table = PageTable(page_bytes)
        self.page_bytes = page_bytes
        self._next_virtual = virtual_base

    def map_frames(self, frames: List[int], frame_bytes: int) -> int:
        """Map a list of physical frames contiguously; returns the virtual base."""
        if not frames:
            raise ValueError("no frames to map")
        if frame_bytes % self.page_bytes:
            raise ValueError("frame size must be a multiple of the page size")
        base = self._next_virtual
        vaddr = base
        for frame in frames:
            self.page_table.map(vaddr, frame, frame_bytes)
            vaddr += frame_bytes
        self._next_virtual = vaddr
        return base

    def translate(self, vaddr: int) -> int:
        return self.page_table.translate(vaddr)

    def translate_range(self, vaddr: int, size: int) -> List[Tuple[int, int]]:
        return self.page_table.translate_range(vaddr, size)

    def is_physically_contiguous(self, vaddr: int, size: int) -> bool:
        extents = self.translate_range(vaddr, size)
        if len(extents) <= 1:
            return True
        cursor = extents[0][0] + extents[0][1]
        for base, length in extents[1:]:
            if base != cursor:
                return False
            cursor = base + length
        return True
