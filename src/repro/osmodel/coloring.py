"""Physical-frame coloring for rank alignment of NDA operands.

A frame's *color* is the (channel, rank) hash contribution of its
physical-frame-number bits under the host address mapping.  Allocating all
operands of an NDA instruction from frames of the same color guarantees that
equal element indices land in the same rank, which is what coarse-grain NDA
operations require (Section III-A, Figure 3).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.addressing.mapping import AddressMapping
from repro.osmodel.buddy import OutOfMemoryError

Color = Tuple[int, int]


class ColoredFrameAllocator:
    """Allocates system-row-aligned frames of a requested color.

    Parameters
    ----------
    mapping:
        The host address mapping; defines each frame's color.
    base, size_bytes:
        Physical region managed by this allocator.
    frame_bytes:
        The coarse allocation granularity — one *system row* (2 MiB in the
        paper's reference system), also the huge-page size.
    """

    def __init__(self, mapping: AddressMapping, base: int, size_bytes: int,
                 frame_bytes: int = 2 * 1024 * 1024) -> None:
        if frame_bytes <= 0 or frame_bytes & (frame_bytes - 1):
            raise ValueError("frame_bytes must be a positive power of two")
        if base % frame_bytes or size_bytes % frame_bytes:
            raise ValueError("region must be frame-aligned and frame-sized")
        self.mapping = mapping
        self.base = base
        self.size_bytes = size_bytes
        self.frame_bytes = frame_bytes
        self.page_bits = frame_bytes.bit_length() - 1
        self._free_by_color: Dict[Color, List[int]] = defaultdict(list)
        self._allocated: Dict[int, Color] = {}
        for addr in range(base, base + size_bytes, frame_bytes):
            color = mapping.frame_color(addr, page_bits=self.page_bits)
            self._free_by_color[color].append(addr)
        for frames in self._free_by_color.values():
            frames.sort(reverse=True)  # pop() returns the lowest address

    # ------------------------------------------------------------------ #

    def colors(self) -> List[Color]:
        """All colors present in the managed region."""
        return sorted(self._free_by_color.keys() | {c for c in self._allocated.values()})

    def free_frames(self, color: Optional[Color] = None) -> int:
        if color is not None:
            return len(self._free_by_color.get(color, []))
        return sum(len(v) for v in self._free_by_color.values())

    def color_of(self, addr: int) -> Color:
        # Frames handed out by this allocator already know their color; the
        # mapping's own frame_color cache covers everything else.
        color = self._allocated.get(addr)
        if color is not None:
            return color
        return self.mapping.frame_color(addr, page_bits=self.page_bits)

    # ------------------------------------------------------------------ #

    def allocate_frames(self, count: int, color: Optional[Color] = None) -> List[int]:
        """Allocate ``count`` frames, all of the same color.

        If ``color`` is None the color with the most free frames is chosen.
        Returns the frame base addresses in ascending order.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if color is None:
            color = max(self._free_by_color,
                        key=lambda c: len(self._free_by_color[c]), default=None)
            if color is None:
                raise OutOfMemoryError("no free frames of any color")
        frames = self._free_by_color.get(color, [])
        if len(frames) < count:
            raise OutOfMemoryError(
                f"need {count} frames of color {color}, only {len(frames)} free"
            )
        taken = [frames.pop() for _ in range(count)]
        for addr in taken:
            self._allocated[addr] = color
        return sorted(taken)

    def allocate_bytes(self, size: int, color: Optional[Color] = None) -> List[int]:
        """Allocate enough same-colored frames to cover ``size`` bytes."""
        count = (size + self.frame_bytes - 1) // self.frame_bytes
        return self.allocate_frames(count, color)

    def free_frame(self, addr: int) -> None:
        color = self._allocated.pop(addr, None)
        if color is None:
            raise ValueError(f"frame {addr:#x} is not allocated")
        self._free_by_color[color].append(addr)
        self._free_by_color[color].sort(reverse=True)

    # ------------------------------------------------------------------ #

    def verify_color_invariant(self, sample: int = 64) -> bool:
        """Check that allocated frames recorded under a color really have it."""
        for i, (addr, color) in enumerate(self._allocated.items()):
            if i >= sample:
                break
            if self.color_of(addr) != color:
                return False
        return True
