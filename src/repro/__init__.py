"""Chopim reproduction: near-data acceleration with concurrent host access.

This package is a from-scratch, full-system Python reproduction of

    Benjamin Y. Cho, Yongkee Kwon, Sangkug Lym, Mattan Erez,
    "Near Data Acceleration with Concurrent Host Access", ISCA 2020.

The public API is intentionally small; most users interact with:

* :class:`repro.config.SystemConfig` — system/DRAM/NDA configuration (Table II).
* :class:`repro.core.system.ChopimSystem` — the full-system simulator.
* :mod:`repro.runtime.api` — the NDA vector/matrix runtime API used by
  example applications.
* :mod:`repro.experiments` — one module per paper figure/table.
* :mod:`repro.platform` — named memory-platform presets (DDR4/DDR5/LPDDR4/
  HBM2-class) whose clocks and cycle counts are derived from raw
  nanosecond parameters; ``ddr4-2400`` is the paper baseline.
"""

from repro.config import (
    DramOrgConfig,
    DramTimingConfig,
    EnergyConfig,
    HostConfig,
    NdaConfig,
    SystemConfig,
)
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.platform import PlatformSpec, get_platform, platform_config, platform_names

__version__ = "1.0.0"

__all__ = [
    "DramTimingConfig",
    "DramOrgConfig",
    "EnergyConfig",
    "HostConfig",
    "NdaConfig",
    "SystemConfig",
    "ChopimSystem",
    "AccessMode",
    "PlatformSpec",
    "get_platform",
    "platform_config",
    "platform_names",
    "__version__",
]
