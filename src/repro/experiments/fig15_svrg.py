"""Figure 15: SVRG collaboration benefits.

* Figure 15a — training-loss-vs-time trajectories for host-only execution
  (epoch N, N/2, N/4), NDA-accelerated serialized execution (same epoch
  sweep) and delayed-update parallel execution.
* Figure 15b — speedup of the best accelerated configuration and of
  delayed-update SVRG over host-only, as the NDA count scales (4, 8, 16 NDAs
  = 2x2, 2x4, 2x8 ranks).

Convergence is functional (numpy); timing comes from simulator-measured host
and NDA bandwidth (:func:`repro.apps.svrg.measure_svrg_timing`) or, when
``measure=False``, from the analytic bandwidth model, which keeps the quick
benchmark path fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.datasets import make_dataset
from repro.apps.svrg import (
    SvrgConfig,
    SvrgHistoryPoint,
    SvrgTimingModel,
    SvrgTrainer,
    SvrgVariant,
    measure_svrg_timing,
)
from repro.experiments.common import format_table, resolve_config, run_experiment_cli
from repro.experiments.sweep import SweepOptions, run_sweep

#: Epoch fractions swept by the paper (N, N/2, N/4).
EPOCH_FRACTIONS: Tuple[float, ...] = (1.0, 0.5, 0.25)

#: NDA counts of Figure 15b and the rank configurations providing them.
NDA_SCALING: Tuple[Tuple[int, Tuple[int, int]], ...] = (
    (4, (2, 2)), (8, (2, 4)), (16, (2, 8)),
)


#: "learning rate = best-tuned" (Table II): tuned for the synthetic dataset.
BEST_TUNED_LR = 0.05


def _trainer(num_ndas: int, measure: bool, dataset_kwargs: Optional[Dict] = None,
             measure_cycles: int = 4000,
             learning_rate: float = BEST_TUNED_LR,
             platform: Optional[str] = None) -> SvrgTrainer:
    dataset = make_dataset(**(dataset_kwargs or {}))
    if measure:
        channels, ranks = next(cfg for n, cfg in NDA_SCALING if n == num_ndas)
        timing = measure_svrg_timing(
            channels, ranks, cycles=measure_cycles,
            config=resolve_config(platform, channels, ranks))
    else:
        timing = SvrgTimingModel.analytic(num_ndas,
                                          config=resolve_config(platform))
    return SvrgTrainer(dataset, SvrgConfig(learning_rate=learning_rate), timing)


def run_svrg_convergence(num_ndas: int = 8,
                         outer_iterations: int = 12,
                         epoch_fractions: Sequence[float] = EPOCH_FRACTIONS,
                         measure: bool = False,
                         dataset_kwargs: Optional[Dict] = None,
                         platform: Optional[str] = None,
                         ) -> Dict[str, List[SvrgHistoryPoint]]:
    """Figure 15a: named loss trajectories.

    Keys follow the paper's legend: ``HO_epoch_N``, ``ACC_epoch_N/4``,
    ``DelayedUpdate`` and so on.  ``platform`` retimes the bandwidth model
    (measured or analytic) to a memory-platform preset.
    """
    trainer = _trainer(num_ndas, measure, dataset_kwargs, platform=platform)
    histories: Dict[str, List[SvrgHistoryPoint]] = {}
    for fraction in epoch_fractions:
        label = {1.0: "N", 0.5: "N/2", 0.25: "N/4"}.get(fraction, f"{fraction:g}N")
        histories[f"HO_epoch_{label}"] = trainer.train(
            SvrgVariant.HOST_ONLY, epoch_fraction=fraction,
            outer_iterations=outer_iterations)
        histories[f"ACC_epoch_{label}"] = trainer.train(
            SvrgVariant.ACCELERATED, epoch_fraction=fraction,
            outer_iterations=outer_iterations)
    histories["DelayedUpdate"] = trainer.train(
        SvrgVariant.DELAYED_UPDATE, epoch_fraction=min(epoch_fractions),
        outer_iterations=outer_iterations)
    return histories


def _point(num_ndas: int, outer_iterations: int, measure: bool,
           dataset_kwargs: Optional[Dict] = None,
           platform: Optional[str] = None) -> Dict[str, object]:
    """Figure 15b sweep point: speedups at one NDA count."""
    trainer = _trainer(num_ndas, measure, dataset_kwargs, platform=platform)
    max_outer = outer_iterations * 4
    # The quality target is the gap host-only SVRG reaches at its default
    # (epoch N) setting; the host-only baseline itself is then best-tuned
    # over epoch fractions, as in the paper ("lr = best-tuned").
    reference = trainer.train(SvrgVariant.HOST_ONLY,
                              outer_iterations=max(2, outer_iterations // 2),
                              epoch_fraction=1.0)
    threshold = reference[-1].loss_gap * 1.01
    host_times: List[float] = [reference[-1].wall_clock_seconds]
    for fraction in EPOCH_FRACTIONS[1:]:
        history = trainer.train_until(SvrgVariant.HOST_ONLY, threshold,
                                      epoch_fraction=fraction,
                                      max_outer_iterations=max_outer)
        t = SvrgTrainer.time_to_converge(history, threshold)
        if t is not None:
            host_times.append(t)
    host_time = min(host_times)

    acc_times: Dict[str, Optional[float]] = {}
    for fraction in EPOCH_FRACTIONS:
        history = trainer.train_until(SvrgVariant.ACCELERATED, threshold,
                                      epoch_fraction=fraction,
                                      max_outer_iterations=max_outer)
        acc_times[f"ACC_{fraction:g}"] = SvrgTrainer.time_to_converge(
            history, threshold)
    reached = [t for t in acc_times.values() if t is not None]
    acc_time = min(reached) if reached else None

    # Delayed update is best-tuned over the same epoch fractions; the
    # exchange cadence itself is set by the NDA summarization time
    # (Section IV), so the fraction mostly controls snapshot frequency.
    delayed_times: List[float] = []
    for fraction in EPOCH_FRACTIONS:
        history = trainer.train_until(
            SvrgVariant.DELAYED_UPDATE, threshold,
            epoch_fraction=fraction,
            max_outer_iterations=max_outer)
        t = SvrgTrainer.time_to_converge(history, threshold)
        if t is not None:
            delayed_times.append(t)
    delayed_time = min(delayed_times) if delayed_times else None

    return {
        "num_ndas": num_ndas,
        "threshold": threshold,
        "host_only_seconds": host_time,
        "acc_best_seconds": acc_time,
        "delayed_update_seconds": delayed_time,
        "acc_best_speedup": (host_time / acc_time
                             if host_time and acc_time else None),
        "delayed_update_speedup": (host_time / delayed_time
                                   if host_time and delayed_time else None),
    }


def run_svrg_scaling(nda_counts: Sequence[int] = (4, 8, 16),
                     outer_iterations: int = 10,
                     measure: bool = False,
                     dataset_kwargs: Optional[Dict] = None,
                     processes: Optional[int] = None,
                     cache_dir: Optional[str] = None,
                     platform: Optional[str] = None,
                     options: Optional[SweepOptions] = None,
                     ) -> List[Dict[str, object]]:
    """Figure 15b: ACC_Best and DelayedUpdate speedup over host-only per NDA count.

    Following the paper, performance is the wall-clock time until the
    training loss reaches a fixed distance from the optimum.  The quality
    target is whatever gap the host-only run achieves in
    ``outer_iterations`` epochs; the accelerated and delayed-update variants
    then train until they reach that same gap.
    """
    params = [
        {"num_ndas": num_ndas, "outer_iterations": outer_iterations,
         "measure": measure, "dataset_kwargs": dataset_kwargs,
         "platform": platform}
        for num_ndas in nda_counts
    ]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir,
                     options=options)


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_svrg_scaling()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
