"""Preemptible sweep points: worker-side checkpoint slots.

Long simulation points are the sweep service's blind spot: a crash ten
minutes into a point costs ten minutes, every retry starts from cycle
zero, and the journal can only say "it was leased".  This module closes
that gap with per-key checkpoint files (``<checkpoint_dir>/<key>.ckpt``,
written through :mod:`repro.snapshot`'s atomic, digest-checked envelope):

* the driver arms a :class:`CheckpointSlot` around each point execution
  (supervised workers and the serial path alike);
* a point function opts in by running its system through
  :func:`run_with_checkpoint` instead of calling ``system.run`` directly —
  with ``REPRO_CHECKPOINT_EVERY`` set, the measured window then snapshots
  every N cycles and a retried attempt resumes **bit-exactly** from the
  last durable checkpoint instead of recomputing the prefix;
* the ledger's ``leased`` records carry the provenance
  (``checkpoint="fresh"`` / ``"resume"``), and the checkpoint file is
  deleted when the row lands in the store.

Checkpointing changes when work happens, never what it computes: the
resumed row is bit-identical to an uninterrupted run (the equivalence is
pinned by tests/test_snapshot.py and ``selftest ckpt-proof``).

The ``die`` fault kind (see :mod:`.faults`) integrates here: an armed
slot kills the worker with the standard crash exit code right after its
first durable checkpoint save — the exact "crashed mid-point with a valid
resume file" scenario the recovery path exists for.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Union

from repro.experiments.sweeprunner.faults import CRASH_EXIT_CODE
from repro.snapshot import (
    SnapshotError,
    read_snapshot,
    restore_system,
    snapshot_system,
    write_snapshot,
)

#: Cycles between checkpoints of a preemptible point; unset/0 disables.
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"


def checkpoint_every(environ: Optional[Mapping[str, str]] = None) -> int:
    """The checkpoint interval from the environment (0 = disabled)."""
    raw = (os.environ if environ is None else environ).get(
        CHECKPOINT_EVERY_ENV, "")
    try:
        value = int(raw)
    except (TypeError, ValueError):
        return 0
    return max(0, value)


def checkpoint_file(directory: Union[str, Path], key: str) -> Path:
    """The checkpoint path for one task key (attempt-independent: a retry
    resumes whatever the previous attempt last saved)."""
    return Path(directory) / f"{key}.ckpt"


def peek_fraction(path: Union[str, Path]) -> float:
    """How much of its run a checkpoint has already simulated, in [0, 1].

    Progress/ETA accounting credits a resumed point for the cycles its
    checkpoint carries (a resumed point only *computes* the remainder, so
    counting it as a full row of work would skew the measured rate and the
    ETA).  Reads the snapshot's ``now``/``run_end``/``run_cycles`` fields;
    anything unreadable or incompatible is worth zero credit — the point
    then just counts as fresh, which is always a safe estimate.
    """
    try:
        payload = read_snapshot(Path(path))
    except (OSError, SnapshotError):
        return 0.0
    if not isinstance(payload, dict):
        return 0.0
    now = payload.get("now")
    run_end = payload.get("run_end")
    run_cycles = payload.get("run_cycles")
    if not all(isinstance(v, int) for v in (now, run_end, run_cycles)) \
            or run_cycles <= 0:
        return 0.0
    remaining = max(run_end - now, 0)
    return min(max(1.0 - remaining / run_cycles, 0.0), 1.0)


class CheckpointSlot:
    """One point execution's handle on its checkpoint file."""

    def __init__(self, directory: Union[str, Path], key: str,
                 attempt: int) -> None:
        self.directory = Path(directory)
        self.key = key
        self.attempt = attempt
        self.saves = 0
        self._die_armed = False

    def path(self) -> Path:
        return checkpoint_file(self.directory, self.key)

    def arm_die(self) -> None:
        """Injected die-mid-point: exit after the first durable save."""
        self._die_armed = True

    def load(self) -> Optional[Any]:
        """The last saved payload, or None (missing, corrupt, wrong schema —
        all of which mean "start fresh", never "fail the point")."""
        path = self.path()
        if not path.exists():
            return None
        try:
            return read_snapshot(path)
        except (OSError, SnapshotError):
            return None

    def save(self, payload: Any) -> None:
        write_snapshot(self.path(), payload)
        self.saves += 1
        if self._die_armed:
            # The checkpoint is durable; now die the way an OOM-kill would,
            # leaving the resume file for the next attempt to prove itself on.
            os._exit(CRASH_EXIT_CODE)

    def save_system(self, system: Any) -> None:
        """``checkpoint_hook`` form: snapshot a running system into the slot."""
        self.save(snapshot_system(system))


#: The slot armed for the currently executing point, if any.  Worker
#: processes and the serial path set this around each ``fn(**params)``
#: call; :func:`run_with_checkpoint` picks it up without the point
#: function having to thread sweep plumbing through its signature.
_active: Optional[CheckpointSlot] = None


def activate(slot: CheckpointSlot) -> None:
    global _active
    _active = slot


def deactivate() -> None:
    global _active
    _active = None


def active_slot() -> Optional[CheckpointSlot]:
    return _active


def run_with_checkpoint(build: Callable[[], Any], cycles: int,
                        warmup: int = 0) -> Any:
    """Run a simulation point preemptibly; returns its SimulationResult.

    ``build`` constructs the fully configured ChopimSystem (mode, workload,
    engine — everything but the ``run`` call).  Without an armed slot or a
    checkpoint interval this is exactly ``build().run(cycles, warmup)``;
    with both, the run checkpoints every interval and resumes bit-exactly
    from the slot's last good save when one exists.
    """
    slot = active_slot()
    every = checkpoint_every()
    if slot is None or every <= 0:
        return build().run(cycles, warmup=warmup)
    payload = slot.load()
    if payload is not None:
        try:
            system = restore_system(payload)
        except SnapshotError:
            # Incompatible or stale checkpoint (e.g. a burst-config flip
            # between attempts): recompute from scratch rather than fail.
            system = None
        if system is not None:
            return system.finish_run(checkpoint_hook=slot.save_system,
                                     checkpoint_every=every)
    return build().run(cycles, warmup=warmup,
                       checkpoint_hook=slot.save_system,
                       checkpoint_every=every)


__all__ = [
    "CHECKPOINT_EVERY_ENV", "CheckpointSlot", "activate", "active_slot",
    "checkpoint_every", "checkpoint_file", "deactivate", "peek_fraction",
    "run_with_checkpoint",
]
