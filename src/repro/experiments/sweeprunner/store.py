"""Content-addressed result store: one JSON file per sweep row.

The store is addressed by :meth:`SweepTask.cache_key`, so it doubles as the
sweep cache (unchanged parameters replay instantly) and as the durable row
storage ledger done-records point into (a ``done`` ledger record means "the
row for this key is in the store").

Load validation happens **before** the hit counter: an entry that is not a
``{"row": {...}}`` object — a ``{"row": null}`` left by an old bug, a
truncated write, a hand-edited file — is a miss, and the offending file is
quarantined (renamed to ``*.corrupt``, deleted if the rename fails) so it
cannot fail every future load of the same key.

:func:`collect_garbage` is the retention side of the same discipline:
quarantined ``*.corrupt`` files are kept for a forensics window and then
deleted, and orphaned ``.ckpt`` checkpoint files whose rows already landed
in the store (any shard) are deleted immediately — both previously
accumulated forever in long-lived cache directories.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.sweeprunner.tasks import CACHE_ENV_VAR, SweepTask

#: Per-process temp-name ticket: two writers of the same key must never
#: share a temp file (a shared name lets writer A replace writer B's
#: half-written temp mid-write, landing a torn entry in the store).
_temp_tickets = itertools.count()

#: How long quarantined ``*.corrupt`` files are kept for inspection before
#: :func:`collect_garbage` removes them.
DEFAULT_CORRUPT_RETENTION = 7 * 86400.0


class SweepCache:
    """JSON-file store of sweep rows, keyed by task fingerprint."""

    def __init__(self, directory: Path, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: The cache base directory sibling artifacts (ledger, checkpoints,
        #: claims) hang off.  Equal to ``directory`` for the flat one-box
        #: layout; the federated store overrides it (rows go to a per-host
        #: shard below the shared root).
        self.root = self.directory
        self.fsync = fsync
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, task: SweepTask) -> Path:
        return self.directory / f"{task.cache_key()}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the key namespace (delete as fallback)."""
        self.quarantined += 1
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _read_validated(self, path: Path) -> Optional[Dict[str, Any]]:
        """The validated row at ``path``, or None (missing entries are
        silent; corrupt ones are quarantined).  Counter-free, so merged
        multi-shard reads can probe several candidates per logical load."""
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            return None
        except ValueError:
            self._quarantine(path)
            return None
        row = entry.get("row") if isinstance(entry, dict) else None
        if not isinstance(row, dict):
            self._quarantine(path)
            return None
        return row

    def load(self, task: SweepTask) -> Optional[Dict[str, Any]]:
        row = self._read_validated(self._path(task))
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return row

    def store(self, task: SweepTask, row: Dict[str, Any]) -> bool:
        path = self._path(task)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_temp_tickets)}.tmp")
        entry = {
            "module": task.module,
            "qualname": task.qualname,
            "params": task.params,
            "environment": task.environment,
            "code": task.code,
            "row": row,
        }
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(entry, handle, default=str)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            tmp.replace(path)
            return True
        except OSError:  # caching is best-effort; never fail the sweep
            tmp.unlink(missing_ok=True)
            return False


def _row_landed(root: Path, key: str) -> bool:
    """Whether any store layout under ``root`` holds a row for ``key``."""
    if (root / f"{key}.json").exists():
        return True
    shards = root / "shards"
    if shards.is_dir():
        for shard in shards.iterdir():
            if (shard / f"{key}.json").exists():
                return True
    return False


def collect_garbage(root: Path,
                    corrupt_retention: float = DEFAULT_CORRUPT_RETENTION,
                    now: Optional[float] = None) -> Dict[str, int]:
    """Retention sweep over a cache directory; returns removal counts.

    * ``*.corrupt`` quarantine files (flat layout and per-host shards)
      older than ``corrupt_retention`` seconds are deleted.
    * Orphaned ``checkpoints/**/*.ckpt`` files whose row already landed in
      the store (any shard) are deleted — the row is durable, so the
      resume file is dead weight; a checkpoint whose row has *not* landed
      is live recovery state and is always kept.

    Purely best-effort: every failure is skipped, never raised, and a
    concurrent sweep deleting the same file is harmless.
    """
    root = Path(root)
    now = time.time() if now is None else now
    removed = {"corrupt": 0, "checkpoints": 0}
    try:
        for path in root.rglob("*.corrupt"):
            try:
                if now - path.stat().st_mtime > corrupt_retention:
                    path.unlink()
                    removed["corrupt"] += 1
            except OSError:
                continue
        checkpoints = root / "checkpoints"
        if checkpoints.is_dir():
            for path in checkpoints.rglob("*.ckpt"):
                try:
                    if _row_landed(root, path.name[:-len(".ckpt")]):
                        path.unlink()
                        removed["checkpoints"] += 1
                except OSError:
                    continue
    except OSError:
        pass
    return removed


def default_cache_dir() -> Optional[Path]:
    """The cache directory from the environment, or None when disabled."""
    value = os.environ.get(CACHE_ENV_VAR)
    if not value:
        return None
    return Path(value)
