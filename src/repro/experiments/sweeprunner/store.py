"""Content-addressed result store: one JSON file per sweep row.

The store is addressed by :meth:`SweepTask.cache_key`, so it doubles as the
sweep cache (unchanged parameters replay instantly) and as the durable row
storage the run ledger points into (a ``done`` ledger record means "the row
for this key is in the store").

Load validation happens **before** the hit counter: an entry that is not a
``{"row": {...}}`` object — a ``{"row": null}`` left by an old bug, a
truncated write, a hand-edited file — is a miss, and the offending file is
quarantined (renamed to ``*.corrupt``, deleted if the rename fails) so it
cannot fail every future load of the same key.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.experiments.sweeprunner.tasks import CACHE_ENV_VAR, SweepTask

#: Per-process temp-name ticket: two writers of the same key must never
#: share a temp file (a shared name lets writer A replace writer B's
#: half-written temp mid-write, landing a torn entry in the store).
_temp_tickets = itertools.count()


class SweepCache:
    """JSON-file store of sweep rows, keyed by task fingerprint."""

    def __init__(self, directory: Path, fsync: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, task: SweepTask) -> Path:
        return self.directory / f"{task.cache_key()}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the key namespace (delete as fallback)."""
        self.quarantined += 1
        try:
            path.replace(path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def load(self, task: SweepTask) -> Optional[Dict[str, Any]]:
        path = self._path(task)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return None
        row = entry.get("row") if isinstance(entry, dict) else None
        if not isinstance(row, dict):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return row

    def store(self, task: SweepTask, row: Dict[str, Any]) -> bool:
        path = self._path(task)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_temp_tickets)}.tmp")
        entry = {
            "module": task.module,
            "qualname": task.qualname,
            "params": task.params,
            "environment": task.environment,
            "code": task.code,
            "row": row,
        }
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(entry, handle, default=str)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            tmp.replace(path)
            return True
        except OSError:  # caching is best-effort; never fail the sweep
            tmp.unlink(missing_ok=True)
            return False


def default_cache_dir() -> Optional[Path]:
    """The cache directory from the environment, or None when disabled."""
    value = os.environ.get(CACHE_ENV_VAR)
    if not value:
        return None
    return Path(value)
