"""Append-only JSONL run ledger: the sweep's durable state machine.

One ledger file per sweep identity (see :func:`tasks.sweep_id`), holding one
JSON object per line.  The task-level state machine is::

    queued -> leased -> done
                  \\-> failed -> (leased again, while attempts remain)
                          \\-> exhausted (attempts == 1 + max_retries)

* ``queued`` records are written once, when the ledger is created, and
  carry the sweep metadata (total points, point function).
* ``leased`` is appended **and fsynced before** the task is handed to a
  worker: every execution is journaled first, so after a ``kill -9`` of
  driver or worker the replay sees the interrupted lease, counts it as a
  used attempt, and never executes any point more than ``1 + max_retries``
  times in total across all driver incarnations.
* ``done`` is appended (and fsynced) after the row has been written to the
  content-addressed store — the record points into the store by key, it
  does not carry the row.
* ``failed`` records carry the failure kind (``crash``, ``timeout``,
  ``error``, ``corrupt-row``) and a short error description for the
  failure report.

Replay is tolerant of a torn final line (the driver can die mid-append);
any line that does not parse is counted and skipped.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List


@dataclass
class TaskRecord:
    """Replay state of one task key."""

    leases: int = 0
    done: bool = False
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def interrupted(self) -> bool:
        """A lease with neither a done nor a failed record: a crashed run."""
        return not self.done and self.leases > len(self.failures)


class RunLedger:
    """Append-only journal for one sweep; safe to reopen after any crash."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.torn_lines = 0
        self._records = self._replay()
        self._handle = self.path.open("a", encoding="utf-8")

    # -- replay ----------------------------------------------------------

    def _replay(self) -> Dict[str, TaskRecord]:
        records: Dict[str, TaskRecord] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return records
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                self.torn_lines += 1
                continue
            if not isinstance(event, dict):
                self.torn_lines += 1
                continue
            key = event.get("key")
            kind = event.get("event")
            if not key or kind not in ("queued", "leased", "done", "failed"):
                continue
            record = records.setdefault(key, TaskRecord())
            if kind == "leased":
                record.leases += 1
            elif kind == "done":
                record.done = True
            elif kind == "failed":
                record.failures.append({
                    "attempt": event.get("attempt"),
                    "kind": event.get("kind", "error"),
                    "error_type": event.get("error_type", ""),
                    "message": event.get("message", ""),
                })
        return records

    @property
    def resumed(self) -> bool:
        """Whether the ledger held prior state when this driver opened it."""
        return any(r.leases or r.done for r in self._records.values())

    def record(self, key: str) -> TaskRecord:
        return self._records.setdefault(key, TaskRecord())

    def records(self) -> Dict[str, TaskRecord]:
        return self._records

    # -- appends ---------------------------------------------------------

    def _append(self, event: Dict[str, Any], sync: bool = True) -> None:
        self._handle.write(json.dumps(event, default=str) + "\n")
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def append_queued(self, keys: Iterable[str], meta: Dict[str, Any]) -> None:
        """Journal the work plan (once, for a fresh ledger): one line per key."""
        keys = list(keys)
        for key in keys:
            self._append({"event": "queued", "key": key, **meta}, sync=False)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_leased(self, key: str, attempt: int, worker: Any = None) -> None:
        self.record(key).leases += 1
        self._append({"event": "leased", "key": key, "attempt": attempt,
                      "worker": worker, "t": time.time()})

    def append_done(self, key: str, attempt: int) -> None:
        self.record(key).done = True
        self._append({"event": "done", "key": key, "attempt": attempt,
                      "t": time.time()})

    def append_failed(self, key: str, attempt: int, kind: str,
                      error_type: str = "", message: str = "") -> None:
        self.record(key).failures.append({
            "attempt": attempt, "kind": kind,
            "error_type": error_type, "message": message,
        })
        self._append({"event": "failed", "key": key, "attempt": attempt,
                      "kind": kind, "error_type": error_type,
                      "message": message[:500], "t": time.time()})

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


def ledger_path(directory: Path, sweep_identity: str) -> Path:
    return Path(directory) / f"sweep-{sweep_identity}.jsonl"


def lease_counts(path: Path) -> Dict[str, int]:
    """Executions per key, read straight from a ledger file.

    Used by tests and the recovery proof to assert the retry bound: no key
    may ever show more than ``1 + max_retries`` leases, across every driver
    incarnation that touched the ledger.
    """
    counts: Dict[str, int] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict) and event.get("event") == "leased":
            counts[event["key"]] = counts.get(event["key"], 0) + 1
    return counts


def count_events(path: Path, kind: str) -> int:
    """Number of ``kind`` events in a ledger file (tolerant of torn lines)."""
    total = 0
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return 0
    for line in lines:
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict) and event.get("event") == kind:
            total += 1
    return total


__all__ = ["RunLedger", "TaskRecord", "ledger_path", "lease_counts",
           "count_events"]
