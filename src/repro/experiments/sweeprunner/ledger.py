"""Append-only JSONL run ledger: the sweep's durable state machine.

One ledger file per sweep identity (see :func:`tasks.sweep_id`), holding one
JSON object per line.  The task-level state machine is::

    queued -> leased -> done
                  \\-> failed -> (leased again, while attempts remain)
                          \\-> exhausted (attempts == 1 + max_retries)

* ``queued`` records are written once, when the ledger is created, and
  carry the sweep metadata (total points, point function).
* ``leased`` is appended **and fsynced before** the task is handed to a
  worker: every execution is journaled first, so after a ``kill -9`` of
  driver or worker the replay sees the interrupted lease, counts it as a
  used attempt, and never executes any point more than ``1 + max_retries``
  times in total across all driver incarnations.
* ``done`` is appended (and fsynced) after the row has been written to the
  content-addressed store — the record points into the store by key, it
  does not carry the row.
* ``failed`` records carry the failure kind (``crash``, ``timeout``,
  ``error``, ``corrupt-row``) and a short error description for the
  failure report.

Replay is tolerant of a torn final line (the driver can die mid-append);
any line that does not parse is counted and skipped.

Cluster sweeps (see :mod:`.cluster`) give each host its **own** ledger
file (``sweep-<id>.<host>.jsonl``) — append-only JSONL has exactly one
writer per file, always — and audits merge every host's journal:
:func:`merged_counts` sums a per-file counter (e.g. :func:`lease_counts`)
over all ``sweep-*.jsonl`` files in a directory, which is how the shard
proof asserts the global lease bound across hosts.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class TaskRecord:
    """Replay state of one task key."""

    leases: int = 0
    done: bool = False
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Leases that resumed from a mid-point checkpoint (see .checkpoint).
    resumed: int = 0
    #: Resumed leases whose checkpoint was migrated from another host's
    #: shard after a lease steal (see .cluster; counted in ``resumed`` too).
    migrated: int = 0

    @property
    def interrupted(self) -> bool:
        """A lease with neither a done nor a failed record: a crashed run."""
        return not self.done and self.leases > len(self.failures)


class RunLedger:
    """Append-only journal for one sweep; safe to reopen after any crash."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.torn_lines = 0
        self._records = self._replay()
        self._handle = self.path.open("a", encoding="utf-8")

    # -- replay ----------------------------------------------------------

    def _replay(self) -> Dict[str, TaskRecord]:
        records: Dict[str, TaskRecord] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return records
        for line in lines:
            try:
                event = json.loads(line)
            except ValueError:
                self.torn_lines += 1
                continue
            if not isinstance(event, dict):
                self.torn_lines += 1
                continue
            kind = event.get("event")
            if kind == "snapshot":
                # A compacted journal: one record carrying the replay state
                # of every key (see :meth:`compact`).
                tasks = event.get("tasks")
                if isinstance(tasks, dict):
                    for key, state in tasks.items():
                        records[key] = TaskRecord(
                            leases=int(state.get("leases", 0)),
                            done=bool(state.get("done", False)),
                            failures=list(state.get("failures", [])),
                            resumed=int(state.get("resumed", 0)),
                            migrated=int(state.get("migrated", 0)))
                continue
            key = event.get("key")
            if not key or kind not in ("queued", "leased", "done", "failed"):
                continue
            record = records.setdefault(key, TaskRecord())
            if kind == "leased":
                record.leases += 1
                if event.get("checkpoint") in ("resume", "migrated"):
                    record.resumed += 1
                if event.get("checkpoint") == "migrated":
                    record.migrated += 1
            elif kind == "done":
                record.done = True
            elif kind == "failed":
                record.failures.append({
                    "attempt": event.get("attempt"),
                    "kind": event.get("kind", "error"),
                    "error_type": event.get("error_type", ""),
                    "message": event.get("message", ""),
                })
        return records

    @property
    def resumed(self) -> bool:
        """Whether the ledger held prior state when this driver opened it."""
        return any(r.leases or r.done for r in self._records.values())

    def record(self, key: str) -> TaskRecord:
        return self._records.setdefault(key, TaskRecord())

    def records(self) -> Dict[str, TaskRecord]:
        return self._records

    # -- appends ---------------------------------------------------------

    def _append(self, event: Dict[str, Any], sync: bool = True) -> None:
        self._handle.write(json.dumps(event, default=str) + "\n")
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def append_queued(self, keys: Iterable[str], meta: Dict[str, Any]) -> None:
        """Journal the work plan (once, for a fresh ledger): one line per key."""
        keys = list(keys)
        for key in keys:
            self._append({"event": "queued", "key": key, **meta}, sync=False)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_leased(self, key: str, attempt: int, worker: Any = None,
                      checkpoint: str = "fresh") -> None:
        """Journal a lease; ``checkpoint`` records the execution's provenance:
        ``"fresh"`` (from cycle zero), ``"resume"`` (from a checkpoint left
        by an earlier, interrupted attempt), or ``"migrated"`` (from a
        checkpoint shipped from another host's shard after a lease steal)."""
        record = self.record(key)
        record.leases += 1
        if checkpoint in ("resume", "migrated"):
            record.resumed += 1
        if checkpoint == "migrated":
            record.migrated += 1
        self._append({"event": "leased", "key": key, "attempt": attempt,
                      "worker": worker, "checkpoint": checkpoint,
                      "t": time.time()})

    def append_done(self, key: str, attempt: int) -> None:
        self.record(key).done = True
        self._append({"event": "done", "key": key, "attempt": attempt,
                      "t": time.time()})

    def append_failed(self, key: str, attempt: int, kind: str,
                      error_type: str = "", message: str = "") -> None:
        self.record(key).failures.append({
            "attempt": attempt, "kind": kind,
            "error_type": error_type, "message": message,
        })
        self._append({"event": "failed", "key": key, "attempt": attempt,
                      "kind": kind, "error_type": error_type,
                      "message": message[:500], "t": time.time()})

    def compact(self) -> bool:
        """Collapse the journal into a single snapshot record.

        Safe only when no lease is outstanding — i.e. after the run loop has
        drained — so it is called at clean sweep completion.  The replay
        state (leases, done flags, failure history) is preserved exactly;
        only the event-by-event history is dropped.  The old journal is kept
        as ``<name>.bak`` until the compacted file is durably in place, then
        removed best-effort.  Returns False (journal untouched) on any I/O
        error.
        """
        snapshot = {"event": "snapshot", "t": time.time(),
                    "tasks": {key: {"leases": record.leases,
                                    "done": record.done,
                                    "failures": record.failures,
                                    "resumed": record.resumed,
                                    "migrated": record.migrated}
                              for key, record in self._records.items()}}
        tmp = self.path.with_name(
            f"{self.path.name}.{os.getpid()}.compact.tmp")
        backup = self.path.with_name(self.path.name + ".bak")
        moved_aside = False
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                handle.write(json.dumps(snapshot, default=str) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(self.path, backup)
            moved_aside = True
            os.replace(tmp, self.path)
        except OSError:
            if moved_aside:
                # Put the original journal back so no state is lost.
                try:
                    os.replace(backup, self.path)
                except OSError:
                    pass
            try:
                tmp.unlink()
            except OSError:
                pass
            self._handle = self.path.open("a", encoding="utf-8")
            return False
        self._handle = self.path.open("a", encoding="utf-8")
        try:
            backup.unlink()
        except OSError:
            pass
        return True

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


def ledger_path(directory: Path, sweep_identity: str,
                host: Optional[str] = None) -> Path:
    """The journal file for one sweep — per-host in cluster mode, so every
    append-only file has exactly one writer."""
    if host:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "-", host)
        return Path(directory) / f"sweep-{sweep_identity}.{safe}.jsonl"
    return Path(directory) / f"sweep-{sweep_identity}.jsonl"


def sweep_ledger_paths(directory: Path) -> List[Path]:
    """Every ledger file in a directory (all hosts, all sweeps), sorted."""
    try:
        return sorted(Path(directory).glob("sweep-*.jsonl"))
    except OSError:
        return []


def merged_counts(directory: Path, counter) -> Dict[str, int]:
    """Sum a per-file counter (e.g. :func:`lease_counts`) across every
    ledger file in ``directory`` — the cross-host audit primitive."""
    totals: Dict[str, int] = {}
    for path in sweep_ledger_paths(directory):
        for key, count in counter(path).items():
            totals[key] = totals.get(key, 0) + count
    return totals


def lease_counts(path: Path) -> Dict[str, int]:
    """Executions per key, read straight from a ledger file.

    Used by tests and the recovery proof to assert the retry bound: no key
    may ever show more than ``1 + max_retries`` leases, across every driver
    incarnation that touched the ledger.
    """
    counts: Dict[str, int] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if not isinstance(event, dict):
            continue
        if event.get("event") == "snapshot":
            # Compacted journal: the snapshot carries the summed leases.
            tasks = event.get("tasks")
            if isinstance(tasks, dict):
                for key, state in tasks.items():
                    leased = int(state.get("leases", 0))
                    if leased:  # parity with replay: no zero-count keys
                        counts[key] = counts.get(key, 0) + leased
            continue
        if event.get("event") == "leased":
            counts[event["key"]] = counts.get(event["key"], 0) + 1
    return counts


def resume_counts(path: Path) -> Dict[str, int]:
    """Resumed-from-checkpoint leases per key (snapshot-aware).

    Used by the checkpoint recovery proof: a killed-mid-point key must show
    at least one ``checkpoint="resume"`` lease, and the count must survive
    ledger compaction.
    """
    counts: Dict[str, int] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if not isinstance(event, dict):
            continue
        if event.get("event") == "snapshot":
            tasks = event.get("tasks")
            if isinstance(tasks, dict):
                for key, state in tasks.items():
                    resumed = int(state.get("resumed", 0))
                    if resumed:  # parity with replay: no zero-count keys
                        counts[key] = counts.get(key, 0) + resumed
            continue
        if event.get("event") == "leased" \
                and event.get("checkpoint") in ("resume", "migrated"):
            counts[event["key"]] = counts.get(event["key"], 0) + 1
    return counts


def migrate_counts(path: Path) -> Dict[str, int]:
    """Migrated-checkpoint leases per key (snapshot-aware).

    Used by the shard proof: a key stolen from a SIGKILLed host with a
    durable checkpoint must show a ``checkpoint="migrated"`` lease in the
    stealing host's ledger.
    """
    counts: Dict[str, int] = {}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if not isinstance(event, dict):
            continue
        if event.get("event") == "snapshot":
            tasks = event.get("tasks")
            if isinstance(tasks, dict):
                for key, state in tasks.items():
                    migrated = int(state.get("migrated", 0))
                    if migrated:  # parity with replay: no zero-count keys
                        counts[key] = counts.get(key, 0) + migrated
            continue
        if event.get("event") == "leased" \
                and event.get("checkpoint") == "migrated":
            counts[event["key"]] = counts.get(event["key"], 0) + 1
    return counts


def count_events(path: Path, kind: str) -> int:
    """Number of ``kind`` events in a ledger file (tolerant of torn lines)."""
    total = 0
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError:
        return 0
    for line in lines:
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict) and event.get("event") == kind:
            total += 1
    return total


__all__ = ["RunLedger", "TaskRecord", "count_events", "lease_counts",
           "ledger_path", "merged_counts", "migrate_counts",
           "resume_counts", "sweep_ledger_paths"]
