"""Sweep outcomes: completed rows plus a structured failure report.

Graceful degradation is the default contract of the sweep service: a point
that exhausts its retries does not abort the sweep — the completed rows
come back together with one :class:`TaskFailure` per dead point, and the
caller (or strict mode) decides whether that is fatal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional


@dataclass
class TaskFailure:
    """One point that exhausted its retries (or was deemed unrunnable)."""

    key: str
    params: Dict[str, Any]
    attempts: int
    kind: str  # crash | timeout | error | corrupt-row
    error_type: str = ""
    message: str = ""


@dataclass
class SweepStats:
    """Service-level counters for one ``run_sweep`` call."""

    total_points: int = 0
    completed: int = 0
    failed_points: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0          # leases taken by this driver incarnation
    retries: int = 0           # executions beyond each point's first
    timeouts: int = 0
    crashes: int = 0
    corrupt_rows: int = 0
    worker_respawns: int = 0
    resumed: bool = False      # the ledger held prior state at open
    duration_seconds: float = 0.0
    # Cluster counters (zero on single-host sweeps; see .cluster):
    steals: int = 0            # leases taken over from a dead host
    migrated_resumes: int = 0  # steals that shipped the dead host's .ckpt
    fenced_writes: int = 0     # stale done/failed/store writes discarded
    peer_rows: int = 0         # points another host completed for us

    @property
    def rows_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds


@dataclass
class SweepOutcome:
    """Everything one sweep produced: rows, failures, stats, journal."""

    rows: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[TaskFailure] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)
    ledger_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def failure_report(self) -> str:
        """The structured failure report, rendered for terminal/CI logs."""
        stats = self.stats
        lines = [
            f"sweep degraded: {len(self.failures)} of {stats.total_points} "
            f"point(s) failed after exhausting retries "
            f"({stats.completed} completed, {stats.retries} retries, "
            f"{stats.crashes} crashes, {stats.timeouts} timeouts, "
            f"{stats.corrupt_rows} corrupt rows)",
        ]
        for failure in self.failures:
            params = ", ".join(f"{k}={v!r}" for k, v in
                               sorted(failure.params.items()))
            detail = failure.error_type or failure.kind
            if failure.message:
                detail += f": {failure.message}"
            lines.append(f"  [{failure.kind}] {failure.key[:12]} "
                         f"({params}) x{failure.attempts} attempts — {detail}")
        if self.ledger_path is not None:
            lines.append(f"  ledger: {self.ledger_path}")
        return "\n".join(lines)


class SweepPointsFailed(RuntimeError):
    """Strict mode: raised when any point exhausted its retries.

    Carries the full :class:`SweepOutcome` — the completed rows are not
    thrown away, and the failure report is the exception message.
    """

    def __init__(self, outcome: SweepOutcome) -> None:
        super().__init__(outcome.failure_report())
        self.outcome = outcome


__all__ = ["SweepOutcome", "SweepPointsFailed", "SweepStats", "TaskFailure"]
