"""End-to-end recovery proof for the sweep service.

The proof the ISSUE/CI demand, runnable as one command::

    python -m repro.experiments.sweeprunner.selftest proof \
        --points 200 --fault-rate 0.05 --kill-after 25

1. A clean **serial** run of a deterministic point function produces the
   expected rows (no faults, no cache — the ground truth).
2. A **child driver** runs the same sweep supervised, with crash/hang/
   corrupt faults injected at the given rate, journaling to a store; the
   parent watches the ledger and ``SIGKILL``'s the child mid-run.
3. The sweep is **resumed** in-process against the same store/plan and
   runs to completion.
4. Verification: final rows bit-identical (JSON) to the clean run, every
   row done before the kill replayed from the store (not recomputed), no
   key leased more than ``1 + max_retries`` times across both driver
   incarnations, and zero exhausted points.

``drive`` is the child-driver entry point (also handy for manual kill -9
experiments); ``proof`` orchestrates the whole thing and exits non-zero on
any violated property.  The point function is pure integer math so the
proof runs anywhere in seconds, including the no-numpy CI legs.

``ckpt-proof`` is the checkpoint-recovery variant: one *real simulator*
point (a ChopimSystem run made preemptible via
:func:`..checkpoint.run_with_checkpoint`), a child driver that is
SIGKILL'd as soon as its first mid-point checkpoint lands on disk, and a
resume that must (a) journal a ``checkpoint="resume"`` lease and (b)
produce a row bit-identical to an uninterrupted run.  The parent also
restores the orphaned checkpoint file directly and finishes it in-process,
pinning the bit-exactness of the very snapshot the kill interrupted.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.sweeprunner import ledger as ledger_module
from repro.experiments.sweeprunner.faults import (
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
)
from repro.experiments.sweeprunner.service import (
    SweepOptions,
    run_sweep_outcome,
)
from repro.experiments.sweeprunner.tasks import make_task


def checksum_point(value: int, spin: int = 2000,
                   sleep: float = 0.0) -> Dict[str, Any]:
    """A deterministic, JSON-pure sweep point: an LCG checksum of ``value``.

    ``spin`` sets the work per point, ``sleep`` stretches wall-clock so a
    parent has time to kill a driver mid-sweep.
    """
    acc = value & 0xFFFFFFFFFFFFFFFF
    for _ in range(spin):
        acc = (acc * 6364136223846793005 + 1442695040888963407) \
            & 0xFFFFFFFFFFFFFFFF
    if sleep > 0:
        time.sleep(sleep)
    return {"value": value, "checksum": acc, "spin": spin}


def _canonical_point():
    """``checksum_point`` from the canonically-imported module.

    Task keys embed the point function's module name.  When this file runs
    as ``python -m ...selftest`` the in-file reference would be
    ``__main__.checksum_point`` while an in-process caller (pytest, the
    resume leg) sees ``repro...selftest.checksum_point`` — different keys,
    so a resume would never match the child driver's store.  Resolving
    through :mod:`importlib` gives every incarnation the same identity.
    """
    import importlib

    module = importlib.import_module(
        "repro.experiments.sweeprunner.selftest")
    return module.checksum_point


def proof_params(points: int, spin: int, sleep: float) -> List[Dict[str, Any]]:
    return [{"value": v, "spin": spin, "sleep": sleep}
            for v in range(points)]


def _result_row(result, cycles: int, elements: int, seed: int
                ) -> Dict[str, Any]:
    """Flatten a SimulationResult into a JSON-pure row with a full-state
    digest, so "bit-identical" covers every field, not just the flat ones."""
    import dataclasses
    import hashlib

    state = dataclasses.asdict(result)
    digest = hashlib.sha256(
        repr(sorted(state.items())).encode("utf-8")).hexdigest()
    row = {key: value for key, value in state.items()
           if isinstance(value, (int, float, str, bool))}
    row.update(cycles=cycles, elements=elements, seed=seed, digest=digest)
    return row


def simulation_point(cycles: int, elements: int,
                     seed: int = 12345) -> Dict[str, Any]:
    """A real-simulator sweep point, preemptible when checkpointing is on."""
    from repro.config import default_config
    from repro.core.modes import AccessMode
    from repro.core.system import ChopimSystem
    from repro.experiments.sweeprunner.checkpoint import run_with_checkpoint
    from repro.nda.isa import NdaOpcode

    def build():
        config = default_config()
        config.seed = seed
        system = ChopimSystem(config=config, mode=AccessMode.BANK_PARTITIONED,
                              mix="mix5")
        system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=elements)
        return system

    result = run_with_checkpoint(build, cycles, warmup=100)
    return _result_row(result, cycles, elements, seed)


def _normalized(rows: List[Dict[str, Any]]) -> str:
    """JSON normal form, so store-replayed and fresh rows compare equal."""
    return json.dumps(rows, sort_keys=True, default=str)


def drive(store: Path, points: int, spin: int, sleep: float,
          fault_plan: Optional[FaultPlan], workers: int, max_retries: int,
          task_timeout: float, progress: Optional[float] = None):
    """One driver incarnation over the proof sweep (killable, resumable)."""
    options = SweepOptions(
        processes=workers, cache_dir=store, max_retries=max_retries,
        task_timeout=task_timeout, retry_backoff=0.05,
        fault_plan=fault_plan, progress=progress)
    return run_sweep_outcome(_canonical_point(),
                             proof_params(points, spin, sleep),
                             options=options)


def _reset_sim_watermarks() -> None:
    """Zero the global id counters so in-process simulator runs are
    reproducible regardless of what ran earlier in this process."""
    from repro.memctrl.request import set_request_id_watermark
    from repro.nda.isa import set_instruction_id_watermark
    from repro.nda.launch import set_operation_id_watermark

    set_request_id_watermark(0)
    set_instruction_id_watermark(0)
    set_operation_id_watermark(0)


def _canonical_sim_point():
    """``simulation_point`` under its canonical module identity."""
    import importlib

    module = importlib.import_module(
        "repro.experiments.sweeprunner.selftest")
    return module.simulation_point


def drive_ckpt(store: Path, cycles: int, elements: int, seed: int,
               max_retries: int = 3):
    """One driver incarnation over the single checkpoint-proof point."""
    options = SweepOptions(processes=1, cache_dir=store,
                           max_retries=max_retries, retry_backoff=0.05)
    return run_sweep_outcome(
        _canonical_sim_point(),
        [{"cycles": cycles, "elements": elements, "seed": seed}],
        options=options)


def _ledger_file(store: Path) -> Optional[Path]:
    candidates = sorted((store / "ledger").glob("sweep-*.jsonl"))
    return candidates[0] if candidates else None


def _spawn_child_driver(store: Path, args, env_plan: FaultPlan
                        ) -> subprocess.Popen:
    env = dict(os.environ)
    env.update(env_plan.to_env())
    src_root = str(Path(__file__).resolve().parents[3])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.experiments.sweeprunner.selftest",
        "drive", "--store", str(store), "--points", str(args.points),
        "--spin", str(args.spin), "--sleep", str(args.sleep),
        "--workers", str(args.workers),
        "--max-retries", str(args.max_retries),
        "--task-timeout", str(args.task_timeout),
    ]
    return subprocess.Popen(command, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _kill_mid_run(child: subprocess.Popen, store: Path, kill_after: int,
                  deadline_seconds: float = 120.0) -> int:
    """SIGKILL the child once its ledger shows ``kill_after`` done rows."""
    started = time.monotonic()
    done = 0
    while time.monotonic() - started < deadline_seconds:
        if child.poll() is not None:
            return done  # finished before we could kill it — still a run
        path = _ledger_file(store)
        if path is not None:
            done = ledger_module.count_events(path, "done")
            if done >= kill_after:
                child.send_signal(signal.SIGKILL)
                child.wait(timeout=30)
                return done
        time.sleep(0.02)
    child.kill()
    child.wait(timeout=30)
    return done


def run_proof(points: int = 200, fault_rate: float = 0.05, seed: int = 7,
              kill_after: int = 25, workers: int = 4, max_retries: int = 3,
              task_timeout: float = 2.0, spin: int = 2000,
              sleep: float = 0.01, store_dir: Optional[Path] = None,
              verbose: bool = True) -> Dict[str, Any]:
    """The full crash/fault/resume proof; returns a verdict report dict."""
    import tempfile

    plan = FaultPlan(rate=fault_rate, seed=seed)
    point = _canonical_point()
    clean = run_sweep_outcome(
        point, proof_params(points, spin, sleep=0.0),
        options=SweepOptions(processes=1, cache_dir="", journal=False,
                             fault_plan=FaultPlan(rate=0.0)))
    assert clean.ok and len(clean.rows) == points
    # sleep only pads the faulty run's wall clock; rows don't include it.
    expected = _normalized(clean.rows)

    with tempfile.TemporaryDirectory(prefix="repro-sweep-proof-") as tmp:
        store = Path(store_dir) if store_dir is not None else Path(tmp)
        args = argparse.Namespace(points=points, spin=spin, sleep=sleep,
                                  workers=workers, max_retries=max_retries,
                                  task_timeout=task_timeout)
        child = _spawn_child_driver(store, args, plan)
        done_at_kill = _kill_mid_run(child, store, kill_after)
        child_finished = child.returncode == 0

        resumed = drive(store, points, spin, sleep, plan, workers,
                        max_retries, task_timeout)

        ledger_path = _ledger_file(store)
        leases = (ledger_module.lease_counts(ledger_path)
                  if ledger_path is not None else {})
        tasks = [make_task(point, p)
                 for p in proof_params(points, spin, sleep)]
        keys = {t.cache_key() for t in tasks}

        report = {
            "points": points,
            "fault_rate": fault_rate,
            "seed": seed,
            "done_at_kill": done_at_kill,
            "child_finished_before_kill": child_finished,
            "rows_match": _normalized(resumed.rows) == expected,
            "failures": len(resumed.failures),
            "resumed_flag": resumed.stats.resumed,
            "cache_hits_on_resume": resumed.stats.cache_hits,
            "recovered_at_least_kill_count":
                resumed.stats.cache_hits >= min(done_at_kill, points),
            "max_leases_observed": max(leases.values()) if leases else 0,
            "lease_bound": 1 + max_retries,
            "lease_bound_held":
                all(count <= 1 + max_retries for count in leases.values()),
            "leases_on_known_keys": all(key in keys for key in leases),
            "retries": resumed.stats.retries,
            "worker_respawns": resumed.stats.worker_respawns,
            "timeouts": resumed.stats.timeouts,
            "crashes": resumed.stats.crashes,
            "corrupt_rows": resumed.stats.corrupt_rows,
        }
        report["ok"] = bool(
            report["rows_match"]
            and report["failures"] == 0
            and report["lease_bound_held"]
            and report["leases_on_known_keys"]
            and (child_finished or report["resumed_flag"])
            and (child_finished or report["recovered_at_least_kill_count"]))
    if verbose:
        print(json.dumps(report, indent=2))
    return report


def run_ckpt_proof(cycles: int = 12000, elements: int = 1 << 12,
                   seed: int = 12345, every: int = 400,
                   max_retries: int = 3, store_dir: Optional[Path] = None,
                   verbose: bool = True) -> Dict[str, Any]:
    """Kill a driver mid-point, resume from its checkpoint, prove bit-exactness."""
    import tempfile

    from repro.experiments.sweeprunner.checkpoint import CHECKPOINT_EVERY_ENV
    from repro.snapshot import SnapshotError, read_snapshot, restore_system

    point = _canonical_sim_point()
    # Direct call, no slot armed: the uninterrupted ground truth.
    _reset_sim_watermarks()
    baseline = point(cycles=cycles, elements=elements, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-ckpt-proof-") as tmp:
        store = Path(store_dir) if store_dir is not None else Path(tmp)
        ckpt_dir = store / "checkpoints"

        env = dict(os.environ)
        env[CHECKPOINT_EVERY_ENV] = str(every)
        src_root = str(Path(__file__).resolve().parents[3])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-m",
             "repro.experiments.sweeprunner.selftest", "drive-ckpt",
             "--store", str(store), "--cycles", str(cycles),
             "--elements", str(elements), "--seed", str(seed),
             "--max-retries", str(max_retries)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

        # Kill the driver the moment its first mid-point checkpoint is
        # durable — the sharpest possible "crashed mid-point" cut.
        started = time.monotonic()
        killed = False
        while time.monotonic() - started < 180.0:
            if child.poll() is not None:
                break
            if ckpt_dir.is_dir() and any(ckpt_dir.glob("*.ckpt")):
                child.send_signal(signal.SIGKILL)
                child.wait(timeout=30)
                killed = True
                break
            time.sleep(0.01)
        else:
            child.kill()
            child.wait(timeout=30)
        child_finished = child.returncode == 0

        # Leg 1: restore the orphaned checkpoint file directly and finish
        # it in-process — the snapshot itself must be bit-exact.
        direct_match = None
        orphan = sorted(ckpt_dir.glob("*.ckpt")) if ckpt_dir.is_dir() else []
        if orphan:
            try:
                restored = restore_system(read_snapshot(orphan[0]))
                direct_row = _result_row(restored.finish_run(),
                                         cycles, elements, seed)
                direct_match = direct_row == baseline
            except SnapshotError as exc:
                direct_match = False
                if verbose:
                    print(f"direct restore failed: {exc}", file=sys.stderr)

        # Leg 2: resume through the sweep service.
        previous_every = os.environ.get(CHECKPOINT_EVERY_ENV)
        os.environ[CHECKPOINT_EVERY_ENV] = str(every)
        _reset_sim_watermarks()  # restore overrides these; fresh runs need 0
        try:
            resumed = drive_ckpt(store, cycles, elements, seed, max_retries)
        finally:
            if previous_every is None:
                os.environ.pop(CHECKPOINT_EVERY_ENV, None)
            else:
                os.environ[CHECKPOINT_EVERY_ENV] = previous_every

        ledger_path = _ledger_file(store)
        leases = (ledger_module.lease_counts(ledger_path)
                  if ledger_path is not None else {})
        resumes = (ledger_module.resume_counts(ledger_path)
                   if ledger_path is not None else {})

        report = {
            "cycles": cycles,
            "checkpoint_every": every,
            "child_finished_before_kill": child_finished,
            "killed_mid_point": killed and not child_finished,
            "checkpoint_seen": bool(orphan),
            "direct_restore_match": direct_match,
            "rows_match": _normalized(resumed.rows) == _normalized([baseline]),
            "failures": len(resumed.failures),
            "resumed_leases": max(resumes.values()) if resumes else 0,
            "max_leases_observed": max(leases.values()) if leases else 0,
            "lease_bound": 1 + max_retries,
            "lease_bound_held":
                all(count <= 1 + max_retries for count in leases.values()),
            "checkpoint_cleaned":
                not (ckpt_dir.is_dir() and any(ckpt_dir.glob("*.ckpt"))),
            "ledger_compacted":
                ledger_path is not None
                and ledger_module.count_events(ledger_path, "snapshot") == 1,
        }
        report["ok"] = bool(
            report["rows_match"]
            and report["failures"] == 0
            and report["lease_bound_held"]
            and report["ledger_compacted"]
            and (child_finished
                 or (report["checkpoint_seen"]
                     and report["direct_restore_match"]
                     and report["resumed_leases"] >= 1
                     and report["checkpoint_cleaned"])))
    if verbose:
        print(json.dumps(report, indent=2))
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    proof = sub.add_parser("proof", help="full crash/fault/resume proof")
    proof.add_argument("--points", type=int, default=200)
    proof.add_argument("--fault-rate", type=float,
                       default=float(os.environ.get(FAULT_RATE_ENV) or 0.05))
    proof.add_argument("--seed", type=int,
                       default=int(os.environ.get(FAULT_SEED_ENV) or 7))
    proof.add_argument("--kill-after", type=int, default=25,
                       help="done rows in the ledger before the driver "
                            "is SIGKILLed")
    proof.add_argument("--workers", type=int, default=4)
    proof.add_argument("--max-retries", type=int, default=3)
    proof.add_argument("--task-timeout", type=float, default=2.0)
    proof.add_argument("--spin", type=int, default=2000)
    proof.add_argument("--sleep", type=float, default=0.01)

    driver = sub.add_parser("drive", help="one killable driver incarnation")
    driver.add_argument("--store", type=Path, required=True)
    driver.add_argument("--points", type=int, default=200)
    driver.add_argument("--spin", type=int, default=2000)
    driver.add_argument("--sleep", type=float, default=0.01)
    driver.add_argument("--workers", type=int, default=4)
    driver.add_argument("--max-retries", type=int, default=3)
    driver.add_argument("--task-timeout", type=float, default=2.0)

    ckpt = sub.add_parser("ckpt-proof",
                          help="kill-mid-point checkpoint/resume proof")
    ckpt.add_argument("--cycles", type=int, default=12000)
    ckpt.add_argument("--elements", type=int, default=1 << 12)
    ckpt.add_argument("--seed", type=int, default=12345)
    ckpt.add_argument("--every", type=int, default=400,
                      help="checkpoint interval in simulated cycles")
    ckpt.add_argument("--max-retries", type=int, default=3)

    ckpt_driver = sub.add_parser(
        "drive-ckpt", help="one killable driver over the checkpoint point")
    ckpt_driver.add_argument("--store", type=Path, required=True)
    ckpt_driver.add_argument("--cycles", type=int, default=12000)
    ckpt_driver.add_argument("--elements", type=int, default=1 << 12)
    ckpt_driver.add_argument("--seed", type=int, default=12345)
    ckpt_driver.add_argument("--max-retries", type=int, default=3)

    args = parser.parse_args(argv)
    try:
        if args.command == "proof":
            report = run_proof(
                points=args.points, fault_rate=args.fault_rate,
                seed=args.seed, kill_after=args.kill_after,
                workers=args.workers, max_retries=args.max_retries,
                task_timeout=args.task_timeout,
                spin=args.spin, sleep=args.sleep)
            return 0 if report["ok"] else 1
        if args.command == "ckpt-proof":
            report = run_ckpt_proof(
                cycles=args.cycles, elements=args.elements, seed=args.seed,
                every=args.every, max_retries=args.max_retries)
            return 0 if report["ok"] else 1
        if args.command == "drive-ckpt":
            outcome = drive_ckpt(args.store, args.cycles, args.elements,
                                 args.seed, args.max_retries)
            print(f"drive-ckpt: {outcome.stats.completed} completed, "
                  f"{len(outcome.failures)} failed")
            return 0 if outcome.ok else 1
        outcome = drive(args.store, args.points, args.spin, args.sleep,
                        FaultPlan.from_env(), args.workers, args.max_retries,
                        args.task_timeout, progress=1.0)
        print(f"drive: {outcome.stats.completed} completed, "
              f"{len(outcome.failures)} failed")
        return 0 if outcome.ok else 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
