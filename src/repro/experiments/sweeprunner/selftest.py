"""End-to-end recovery proof for the sweep service.

The proof the ISSUE/CI demand, runnable as one command::

    python -m repro.experiments.sweeprunner.selftest proof \
        --points 200 --fault-rate 0.05 --kill-after 25

1. A clean **serial** run of a deterministic point function produces the
   expected rows (no faults, no cache — the ground truth).
2. A **child driver** runs the same sweep supervised, with crash/hang/
   corrupt faults injected at the given rate, journaling to a store; the
   parent watches the ledger and ``SIGKILL``'s the child mid-run.
3. The sweep is **resumed** in-process against the same store/plan and
   runs to completion.
4. Verification: final rows bit-identical (JSON) to the clean run, every
   row done before the kill replayed from the store (not recomputed), no
   key leased more than ``1 + max_retries`` times across both driver
   incarnations, and zero exhausted points.

``drive`` is the child-driver entry point (also handy for manual kill -9
experiments); ``proof`` orchestrates the whole thing and exits non-zero on
any violated property.  The point function is pure integer math so the
proof runs anywhere in seconds, including the no-numpy CI legs.

``ckpt-proof`` is the checkpoint-recovery variant: one *real simulator*
point (a ChopimSystem run made preemptible via
:func:`..checkpoint.run_with_checkpoint`), a child driver that is
SIGKILL'd as soon as its first mid-point checkpoint lands on disk, and a
resume that must (a) journal a ``checkpoint="resume"`` lease and (b)
produce a row bit-identical to an uninterrupted run.  The parent also
restores the orphaned checkpoint file directly and finishes it in-process,
pinning the bit-exactness of the very snapshot the kill interrupted.

``shard-proof`` is the multi-host variant (see :mod:`.cluster`): three
driver processes with distinct host identities share one sweep directory
over real simulator points; the parent SIGKILLs one host right after its
first mid-point checkpoint lands, the survivors steal its lease (shipping
the orphaned checkpoint across shards), and the verdict demands rows
bit-identical to a clean single-host run, the global lease bound held
across every host's ledger, at least one ``checkpoint="migrated"`` lease,
and a final in-process verifier pass that executes nothing (every row
served by the federated store).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.sweeprunner import ledger as ledger_module
from repro.experiments.sweeprunner.checkpoint import CHECKPOINT_EVERY_ENV
from repro.experiments.sweeprunner.cluster import ClusterOptions
from repro.experiments.sweeprunner.faults import (
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
)
from repro.experiments.sweeprunner.service import (
    SweepOptions,
    run_sweep_outcome,
)
from repro.experiments.sweeprunner.tasks import make_task


def wait_until(condition, timeout: float, initial: float = 0.005,
               factor: float = 1.5, max_interval: float = 0.25) -> bool:
    """Deadline-bounded condition polling with exponential backoff.

    Returns True the moment ``condition()`` does, False once ``timeout``
    seconds have elapsed without it.  The backoff starts tight (so fast
    transitions are caught fast) and decays toward ``max_interval`` (so a
    long wait does not busy-spin the way a fixed short sleep would).
    """
    deadline = time.monotonic() + timeout
    interval = initial
    while True:
        if condition():
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return False
        time.sleep(min(interval, remaining, max_interval))
        interval = min(interval * factor, max_interval)


def checksum_point(value: int, spin: int = 2000,
                   sleep: float = 0.0) -> Dict[str, Any]:
    """A deterministic, JSON-pure sweep point: an LCG checksum of ``value``.

    ``spin`` sets the work per point, ``sleep`` stretches wall-clock so a
    parent has time to kill a driver mid-sweep.
    """
    acc = value & 0xFFFFFFFFFFFFFFFF
    for _ in range(spin):
        acc = (acc * 6364136223846793005 + 1442695040888963407) \
            & 0xFFFFFFFFFFFFFFFF
    if sleep > 0:
        time.sleep(sleep)
    return {"value": value, "checksum": acc, "spin": spin}


def _canonical_point():
    """``checksum_point`` from the canonically-imported module.

    Task keys embed the point function's module name.  When this file runs
    as ``python -m ...selftest`` the in-file reference would be
    ``__main__.checksum_point`` while an in-process caller (pytest, the
    resume leg) sees ``repro...selftest.checksum_point`` — different keys,
    so a resume would never match the child driver's store.  Resolving
    through :mod:`importlib` gives every incarnation the same identity.
    """
    import importlib

    module = importlib.import_module(
        "repro.experiments.sweeprunner.selftest")
    return module.checksum_point


def proof_params(points: int, spin: int, sleep: float) -> List[Dict[str, Any]]:
    return [{"value": v, "spin": spin, "sleep": sleep}
            for v in range(points)]


def _result_row(result, cycles: int, elements: int, seed: int
                ) -> Dict[str, Any]:
    """Flatten a SimulationResult into a JSON-pure row with a full-state
    digest, so "bit-identical" covers every field, not just the flat ones."""
    import dataclasses
    import hashlib

    state = dataclasses.asdict(result)
    digest = hashlib.sha256(
        repr(sorted(state.items())).encode("utf-8")).hexdigest()
    row = {key: value for key, value in state.items()
           if isinstance(value, (int, float, str, bool))}
    row.update(cycles=cycles, elements=elements, seed=seed, digest=digest)
    return row


def simulation_point(cycles: int, elements: int,
                     seed: int = 12345) -> Dict[str, Any]:
    """A real-simulator sweep point, preemptible when checkpointing is on."""
    from repro.config import default_config
    from repro.core.modes import AccessMode
    from repro.core.system import ChopimSystem
    from repro.experiments.sweeprunner.checkpoint import run_with_checkpoint
    from repro.nda.isa import NdaOpcode

    # Fresh executions must be self-deterministic no matter what ran in
    # this process before (multi-point shard sweeps execute several points
    # back to back); a checkpoint restore re-overrides the watermarks.
    _reset_sim_watermarks()

    def build():
        config = default_config()
        config.seed = seed
        system = ChopimSystem(config=config, mode=AccessMode.BANK_PARTITIONED,
                              mix="mix5")
        system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=elements)
        return system

    result = run_with_checkpoint(build, cycles, warmup=100)
    return _result_row(result, cycles, elements, seed)


def _normalized(rows: List[Dict[str, Any]]) -> str:
    """JSON normal form, so store-replayed and fresh rows compare equal."""
    return json.dumps(rows, sort_keys=True, default=str)


def drive(store: Path, points: int, spin: int, sleep: float,
          fault_plan: Optional[FaultPlan], workers: int, max_retries: int,
          task_timeout: float, progress: Optional[float] = None):
    """One driver incarnation over the proof sweep (killable, resumable)."""
    options = SweepOptions(
        processes=workers, cache_dir=store, max_retries=max_retries,
        task_timeout=task_timeout, retry_backoff=0.05,
        fault_plan=fault_plan, progress=progress)
    return run_sweep_outcome(_canonical_point(),
                             proof_params(points, spin, sleep),
                             options=options)


def _reset_sim_watermarks() -> None:
    """Zero the global id counters so in-process simulator runs are
    reproducible regardless of what ran earlier in this process."""
    from repro.memctrl.request import set_request_id_watermark
    from repro.nda.isa import set_instruction_id_watermark
    from repro.nda.launch import set_operation_id_watermark

    set_request_id_watermark(0)
    set_instruction_id_watermark(0)
    set_operation_id_watermark(0)


def _canonical_sim_point():
    """``simulation_point`` under its canonical module identity."""
    import importlib

    module = importlib.import_module(
        "repro.experiments.sweeprunner.selftest")
    return module.simulation_point


def drive_ckpt(store: Path, cycles: int, elements: int, seed: int,
               max_retries: int = 3):
    """One driver incarnation over the single checkpoint-proof point."""
    options = SweepOptions(processes=1, cache_dir=store,
                           max_retries=max_retries, retry_backoff=0.05)
    return run_sweep_outcome(
        _canonical_sim_point(),
        [{"cycles": cycles, "elements": elements, "seed": seed}],
        options=options)


def _ledger_file(store: Path) -> Optional[Path]:
    candidates = sorted((store / "ledger").glob("sweep-*.jsonl"))
    return candidates[0] if candidates else None


def _spawn_child_driver(store: Path, args, env_plan: FaultPlan
                        ) -> subprocess.Popen:
    env = dict(os.environ)
    env.update(env_plan.to_env())
    src_root = str(Path(__file__).resolve().parents[3])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro.experiments.sweeprunner.selftest",
        "drive", "--store", str(store), "--points", str(args.points),
        "--spin", str(args.spin), "--sleep", str(args.sleep),
        "--workers", str(args.workers),
        "--max-retries", str(args.max_retries),
        "--task-timeout", str(args.task_timeout),
    ]
    return subprocess.Popen(command, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)


def _kill_mid_run(child: subprocess.Popen, store: Path, kill_after: int,
                  deadline_seconds: float = 120.0) -> int:
    """SIGKILL the child once its ledger shows ``kill_after`` done rows."""
    done = 0

    def ripe() -> bool:
        nonlocal done
        if child.poll() is not None:
            return True  # finished before we could kill it — still a run
        path = _ledger_file(store)
        if path is not None:
            done = ledger_module.count_events(path, "done")
            return done >= kill_after
        return False

    wait_until(ripe, deadline_seconds, initial=0.01, max_interval=0.05)
    if child.poll() is None:
        child.send_signal(signal.SIGKILL)
    child.wait(timeout=30)
    return done


def run_proof(points: int = 200, fault_rate: float = 0.05, seed: int = 7,
              kill_after: int = 25, workers: int = 4, max_retries: int = 3,
              task_timeout: float = 2.0, spin: int = 2000,
              sleep: float = 0.01, store_dir: Optional[Path] = None,
              verbose: bool = True) -> Dict[str, Any]:
    """The full crash/fault/resume proof; returns a verdict report dict."""
    import tempfile

    plan = FaultPlan(rate=fault_rate, seed=seed)
    point = _canonical_point()
    clean = run_sweep_outcome(
        point, proof_params(points, spin, sleep=0.0),
        options=SweepOptions(processes=1, cache_dir="", journal=False,
                             fault_plan=FaultPlan(rate=0.0)))
    assert clean.ok and len(clean.rows) == points
    # sleep only pads the faulty run's wall clock; rows don't include it.
    expected = _normalized(clean.rows)

    with tempfile.TemporaryDirectory(prefix="repro-sweep-proof-") as tmp:
        store = Path(store_dir) if store_dir is not None else Path(tmp)
        args = argparse.Namespace(points=points, spin=spin, sleep=sleep,
                                  workers=workers, max_retries=max_retries,
                                  task_timeout=task_timeout)
        child = _spawn_child_driver(store, args, plan)
        done_at_kill = _kill_mid_run(child, store, kill_after)
        child_finished = child.returncode == 0

        resumed = drive(store, points, spin, sleep, plan, workers,
                        max_retries, task_timeout)

        ledger_path = _ledger_file(store)
        leases = (ledger_module.lease_counts(ledger_path)
                  if ledger_path is not None else {})
        tasks = [make_task(point, p)
                 for p in proof_params(points, spin, sleep)]
        keys = {t.cache_key() for t in tasks}

        report = {
            "points": points,
            "fault_rate": fault_rate,
            "seed": seed,
            "done_at_kill": done_at_kill,
            "child_finished_before_kill": child_finished,
            "rows_match": _normalized(resumed.rows) == expected,
            "failures": len(resumed.failures),
            "resumed_flag": resumed.stats.resumed,
            "cache_hits_on_resume": resumed.stats.cache_hits,
            "recovered_at_least_kill_count":
                resumed.stats.cache_hits >= min(done_at_kill, points),
            "max_leases_observed": max(leases.values()) if leases else 0,
            "lease_bound": 1 + max_retries,
            "lease_bound_held":
                all(count <= 1 + max_retries for count in leases.values()),
            "leases_on_known_keys": all(key in keys for key in leases),
            "retries": resumed.stats.retries,
            "worker_respawns": resumed.stats.worker_respawns,
            "timeouts": resumed.stats.timeouts,
            "crashes": resumed.stats.crashes,
            "corrupt_rows": resumed.stats.corrupt_rows,
        }
        report["ok"] = bool(
            report["rows_match"]
            and report["failures"] == 0
            and report["lease_bound_held"]
            and report["leases_on_known_keys"]
            and (child_finished or report["resumed_flag"])
            and (child_finished or report["recovered_at_least_kill_count"]))
    if verbose:
        print(json.dumps(report, indent=2))
    return report


def run_ckpt_proof(cycles: int = 12000, elements: int = 1 << 12,
                   seed: int = 12345, every: int = 400,
                   max_retries: int = 3, store_dir: Optional[Path] = None,
                   verbose: bool = True) -> Dict[str, Any]:
    """Kill a driver mid-point, resume from its checkpoint, prove bit-exactness."""
    import tempfile

    from repro.snapshot import SnapshotError, read_snapshot, restore_system

    point = _canonical_sim_point()
    # Direct call, no slot armed: the uninterrupted ground truth.
    _reset_sim_watermarks()
    baseline = point(cycles=cycles, elements=elements, seed=seed)

    with tempfile.TemporaryDirectory(prefix="repro-ckpt-proof-") as tmp:
        store = Path(store_dir) if store_dir is not None else Path(tmp)
        ckpt_dir = store / "checkpoints"

        env = dict(os.environ)
        env[CHECKPOINT_EVERY_ENV] = str(every)
        src_root = str(Path(__file__).resolve().parents[3])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-m",
             "repro.experiments.sweeprunner.selftest", "drive-ckpt",
             "--store", str(store), "--cycles", str(cycles),
             "--elements", str(elements), "--seed", str(seed),
             "--max-retries", str(max_retries)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

        # Kill the driver the moment its first mid-point checkpoint is
        # durable — the sharpest possible "crashed mid-point" cut.
        wait_until(lambda: child.poll() is not None
                   or (ckpt_dir.is_dir() and any(ckpt_dir.glob("*.ckpt"))),
                   180.0, initial=0.005, max_interval=0.05)
        killed = child.poll() is None
        if killed:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        child_finished = child.returncode == 0

        # Leg 1: restore the orphaned checkpoint file directly and finish
        # it in-process — the snapshot itself must be bit-exact.
        direct_match = None
        orphan = sorted(ckpt_dir.glob("*.ckpt")) if ckpt_dir.is_dir() else []
        if orphan:
            try:
                restored = restore_system(read_snapshot(orphan[0]))
                direct_row = _result_row(restored.finish_run(),
                                         cycles, elements, seed)
                direct_match = direct_row == baseline
            except SnapshotError as exc:
                direct_match = False
                if verbose:
                    print(f"direct restore failed: {exc}", file=sys.stderr)

        # Leg 2: resume through the sweep service.
        previous_every = os.environ.get(CHECKPOINT_EVERY_ENV)
        os.environ[CHECKPOINT_EVERY_ENV] = str(every)
        _reset_sim_watermarks()  # restore overrides these; fresh runs need 0
        try:
            resumed = drive_ckpt(store, cycles, elements, seed, max_retries)
        finally:
            if previous_every is None:
                os.environ.pop(CHECKPOINT_EVERY_ENV, None)
            else:
                os.environ[CHECKPOINT_EVERY_ENV] = previous_every

        ledger_path = _ledger_file(store)
        leases = (ledger_module.lease_counts(ledger_path)
                  if ledger_path is not None else {})
        resumes = (ledger_module.resume_counts(ledger_path)
                   if ledger_path is not None else {})

        report = {
            "cycles": cycles,
            "checkpoint_every": every,
            "child_finished_before_kill": child_finished,
            "killed_mid_point": killed and not child_finished,
            "checkpoint_seen": bool(orphan),
            "direct_restore_match": direct_match,
            "rows_match": _normalized(resumed.rows) == _normalized([baseline]),
            "failures": len(resumed.failures),
            "resumed_leases": max(resumes.values()) if resumes else 0,
            "max_leases_observed": max(leases.values()) if leases else 0,
            "lease_bound": 1 + max_retries,
            "lease_bound_held":
                all(count <= 1 + max_retries for count in leases.values()),
            "checkpoint_cleaned":
                not (ckpt_dir.is_dir() and any(ckpt_dir.glob("*.ckpt"))),
            "ledger_compacted":
                ledger_path is not None
                and ledger_module.count_events(ledger_path, "snapshot") == 1,
        }
        report["ok"] = bool(
            report["rows_match"]
            and report["failures"] == 0
            and report["lease_bound_held"]
            and report["ledger_compacted"]
            and (child_finished
                 or (report["checkpoint_seen"]
                     and report["direct_restore_match"]
                     and report["resumed_leases"] >= 1
                     and report["checkpoint_cleaned"])))
    if verbose:
        print(json.dumps(report, indent=2))
    return report


def shard_params(points: int, cycles: int, elements: int,
                 seed: int) -> List[Dict[str, Any]]:
    """Distinct real-simulator points (per-point seeds) for the shard proof."""
    return [{"cycles": cycles, "elements": elements, "seed": seed + i}
            for i in range(points)]


def drive_shard(store: Path, host: str, points: int, cycles: int,
                elements: int, seed: int, max_retries: int = 3,
                staleness: float = 1.0, heartbeat: float = 0.1,
                poll: float = 0.1,
                fault_plan: Optional[FaultPlan] = None):
    """One host's driver incarnation over the shared shard-proof sweep."""
    options = SweepOptions(
        processes=1, cache_dir=store, max_retries=max_retries,
        retry_backoff=0.05, fault_plan=fault_plan,
        cluster=ClusterOptions(host=host, heartbeat_interval=heartbeat,
                               staleness=staleness, steal_stagger=0.25,
                               poll_interval=poll))
    return run_sweep_outcome(_canonical_sim_point(),
                             shard_params(points, cycles, elements, seed),
                             options=options)


def run_shard_proof(points: int = 4, cycles: int = 9000,
                    elements: int = 1 << 11, seed: int = 12345,
                    every: int = 300, hosts: int = 3, max_retries: int = 3,
                    staleness: float = 1.0, fault_rate: float = 0.1,
                    fault_seed: int = 7, store_dir: Optional[Path] = None,
                    verbose: bool = True) -> Dict[str, Any]:
    """Kill one of N cooperating hosts mid-point; prove the survivors win.

    The verdict (``report["ok"]``) requires rows bit-identical to a clean
    single-host run, zero failed points, the global lease bound held over
    the merged per-host ledgers, at least one migrated-checkpoint lease
    (unless the victim finished before the kill could land), survivors
    exiting cleanly, and a final verifier host that executes nothing.
    """
    import tempfile

    plan = (FaultPlan(rate=fault_rate, seed=fault_seed,
                      kinds=("netsplit", "steal-race"))
            if fault_rate > 0 else FaultPlan(rate=0.0))
    point = _canonical_sim_point()
    params = shard_params(points, cycles, elements, seed)
    clean = run_sweep_outcome(
        point, params,
        options=SweepOptions(processes=1, cache_dir="", journal=False,
                             fault_plan=FaultPlan(rate=0.0)))
    assert clean.ok and len(clean.rows) == points
    expected = _normalized(clean.rows)

    with tempfile.TemporaryDirectory(prefix="repro-shard-proof-") as tmp:
        store = Path(store_dir) if store_dir is not None else Path(tmp)
        ckpt_root = store / "checkpoints"

        env = dict(os.environ)
        env.update(plan.to_env())
        env[CHECKPOINT_EVERY_ENV] = str(every)
        src_root = str(Path(__file__).resolve().parents[3])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        children: Dict[str, subprocess.Popen] = {}
        for n in range(hosts):
            host = f"shard{n}"
            children[host] = subprocess.Popen(
                [sys.executable, "-m",
                 "repro.experiments.sweeprunner.selftest", "drive-shard",
                 "--store", str(store), "--host", host,
                 "--points", str(points), "--cycles", str(cycles),
                 "--elements", str(elements), "--seed", str(seed),
                 "--max-retries", str(max_retries),
                 "--staleness", str(staleness)],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)

        # SIGKILL the first host whose mid-point checkpoint lands: its
        # claim outlives it, and a survivor must steal + migrate.
        victim: Optional[str] = None

        def checkpoint_seen() -> bool:
            nonlocal victim
            if all(c.poll() is not None for c in children.values()):
                return True  # everyone finished before any checkpoint
            for host, child in children.items():
                shard = ckpt_root / host
                if child.poll() is None and shard.is_dir() \
                        and any(shard.glob("*.ckpt")):
                    victim = host
                    return True
            return False

        wait_until(checkpoint_seen, 240.0, initial=0.005, max_interval=0.05)
        if victim is not None:
            children[victim].send_signal(signal.SIGKILL)
            children[victim].wait(timeout=30)

        survivors_ok = True
        for host, child in children.items():
            if host == victim:
                continue
            try:
                child.wait(timeout=300)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait(timeout=30)
            survivors_ok = survivors_ok and child.returncode == 0

        # Verifier host: every row must come back from the federated store
        # without executing anything — cross-host results are first-class.
        verifier = run_sweep_outcome(
            point, params,
            options=SweepOptions(
                processes=1, cache_dir=store, max_retries=max_retries,
                retry_backoff=0.05,
                cluster=ClusterOptions(host="verifier",
                                       heartbeat_interval=0.1,
                                       staleness=staleness,
                                       poll_interval=0.05)))

        ledger_dir = store / "ledger"
        leases = ledger_module.merged_counts(ledger_dir,
                                             ledger_module.lease_counts)
        migrated = ledger_module.merged_counts(ledger_dir,
                                               ledger_module.migrate_counts)
        keys = {make_task(point, p).cache_key() for p in params}

        report = {
            "points": points,
            "hosts": hosts,
            "victim": victim,
            "killed_mid_point": victim is not None,
            "survivors_ok": survivors_ok,
            "rows_match": _normalized(verifier.rows) == expected,
            "failures": len(verifier.failures),
            "verifier_executed": verifier.stats.executed,
            "verifier_peer_rows": verifier.stats.peer_rows,
            "ledger_files": len(
                ledger_module.sweep_ledger_paths(ledger_dir)),
            "max_leases_observed": max(leases.values()) if leases else 0,
            "lease_bound": 1 + max_retries,
            "lease_bound_held":
                all(count <= 1 + max_retries for count in leases.values()),
            "leases_on_known_keys": all(key in keys for key in leases),
            "migrated_leases": sum(migrated.values()),
        }
        report["ok"] = bool(
            report["rows_match"]
            and report["failures"] == 0
            and report["survivors_ok"]
            and report["verifier_executed"] == 0
            and report["lease_bound_held"]
            and report["leases_on_known_keys"]
            and (report["migrated_leases"] >= 1
                 or not report["killed_mid_point"]))
    if verbose:
        print(json.dumps(report, indent=2))
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    proof = sub.add_parser("proof", help="full crash/fault/resume proof")
    proof.add_argument("--points", type=int, default=200)
    proof.add_argument("--fault-rate", type=float,
                       default=float(os.environ.get(FAULT_RATE_ENV) or 0.05))
    proof.add_argument("--seed", type=int,
                       default=int(os.environ.get(FAULT_SEED_ENV) or 7))
    proof.add_argument("--kill-after", type=int, default=25,
                       help="done rows in the ledger before the driver "
                            "is SIGKILLed")
    proof.add_argument("--workers", type=int, default=4)
    proof.add_argument("--max-retries", type=int, default=3)
    proof.add_argument("--task-timeout", type=float, default=2.0)
    proof.add_argument("--spin", type=int, default=2000)
    proof.add_argument("--sleep", type=float, default=0.01)

    driver = sub.add_parser("drive", help="one killable driver incarnation")
    driver.add_argument("--store", type=Path, required=True)
    driver.add_argument("--points", type=int, default=200)
    driver.add_argument("--spin", type=int, default=2000)
    driver.add_argument("--sleep", type=float, default=0.01)
    driver.add_argument("--workers", type=int, default=4)
    driver.add_argument("--max-retries", type=int, default=3)
    driver.add_argument("--task-timeout", type=float, default=2.0)

    ckpt = sub.add_parser("ckpt-proof",
                          help="kill-mid-point checkpoint/resume proof")
    ckpt.add_argument("--cycles", type=int, default=12000)
    ckpt.add_argument("--elements", type=int, default=1 << 12)
    ckpt.add_argument("--seed", type=int, default=12345)
    ckpt.add_argument("--every", type=int, default=400,
                      help="checkpoint interval in simulated cycles")
    ckpt.add_argument("--max-retries", type=int, default=3)

    ckpt_driver = sub.add_parser(
        "drive-ckpt", help="one killable driver over the checkpoint point")
    ckpt_driver.add_argument("--store", type=Path, required=True)
    ckpt_driver.add_argument("--cycles", type=int, default=12000)
    ckpt_driver.add_argument("--elements", type=int, default=1 << 12)
    ckpt_driver.add_argument("--seed", type=int, default=12345)
    ckpt_driver.add_argument("--max-retries", type=int, default=3)

    shard = sub.add_parser(
        "shard-proof", help="multi-host steal/migrate/federation proof")
    shard.add_argument("--points", type=int, default=4)
    shard.add_argument("--cycles", type=int, default=9000)
    shard.add_argument("--elements", type=int, default=1 << 11)
    shard.add_argument("--seed", type=int, default=12345)
    shard.add_argument("--every", type=int, default=300,
                       help="checkpoint interval in simulated cycles")
    shard.add_argument("--hosts", type=int, default=3)
    shard.add_argument("--max-retries", type=int, default=3)
    shard.add_argument("--staleness", type=float, default=1.0)
    shard.add_argument("--fault-rate", type=float, default=0.1,
                       help="rate for the netsplit/steal-race schedule "
                            "the child hosts run under (0 disables)")
    shard.add_argument("--fault-seed", type=int, default=7)

    shard_driver = sub.add_parser(
        "drive-shard", help="one killable host over the shared shard sweep")
    shard_driver.add_argument("--store", type=Path, required=True)
    shard_driver.add_argument("--host", required=True)
    shard_driver.add_argument("--points", type=int, default=4)
    shard_driver.add_argument("--cycles", type=int, default=9000)
    shard_driver.add_argument("--elements", type=int, default=1 << 11)
    shard_driver.add_argument("--seed", type=int, default=12345)
    shard_driver.add_argument("--max-retries", type=int, default=3)
    shard_driver.add_argument("--staleness", type=float, default=1.0)

    args = parser.parse_args(argv)
    try:
        if args.command == "proof":
            report = run_proof(
                points=args.points, fault_rate=args.fault_rate,
                seed=args.seed, kill_after=args.kill_after,
                workers=args.workers, max_retries=args.max_retries,
                task_timeout=args.task_timeout,
                spin=args.spin, sleep=args.sleep)
            return 0 if report["ok"] else 1
        if args.command == "ckpt-proof":
            report = run_ckpt_proof(
                cycles=args.cycles, elements=args.elements, seed=args.seed,
                every=args.every, max_retries=args.max_retries)
            return 0 if report["ok"] else 1
        if args.command == "drive-ckpt":
            outcome = drive_ckpt(args.store, args.cycles, args.elements,
                                 args.seed, args.max_retries)
            print(f"drive-ckpt: {outcome.stats.completed} completed, "
                  f"{len(outcome.failures)} failed")
            return 0 if outcome.ok else 1
        if args.command == "shard-proof":
            report = run_shard_proof(
                points=args.points, cycles=args.cycles,
                elements=args.elements, seed=args.seed, every=args.every,
                hosts=args.hosts, max_retries=args.max_retries,
                staleness=args.staleness, fault_rate=args.fault_rate,
                fault_seed=args.fault_seed)
            return 0 if report["ok"] else 1
        if args.command == "drive-shard":
            outcome = drive_shard(args.store, args.host, args.points,
                                  args.cycles, args.elements, args.seed,
                                  args.max_retries, args.staleness,
                                  fault_plan=FaultPlan.from_env())
            print(f"drive-shard[{args.host}]: "
                  f"{outcome.stats.completed} completed, "
                  f"{outcome.stats.executed} executed, "
                  f"{outcome.stats.steals} stolen, "
                  f"{len(outcome.failures)} failed")
            return 0 if outcome.ok else 1
        outcome = drive(args.store, args.points, args.spin, args.sleep,
                        FaultPlan.from_env(), args.workers, args.max_retries,
                        args.task_timeout, progress=1.0)
        print(f"drive: {outcome.stats.completed} completed, "
              f"{len(outcome.failures)} failed")
        return 0 if outcome.ok else 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
