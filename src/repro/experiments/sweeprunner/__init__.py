"""Fault-tolerant, resumable sweep service.

The package behind :mod:`repro.experiments.sweep` (kept as the compatible
facade).  Layering:

* :mod:`.tasks` — task identity: content-addressed keys over
  (function, params, environment axes, code fingerprint).
* :mod:`.store` — the content-addressed result store (doubles as the sweep
  cache); validates entries before counting hits and quarantines corrupt
  files.
* :mod:`.ledger` — append-only JSONL run journal (queued/leased/done/
  failed), fsynced at lease and completion; replays after any crash.
* :mod:`.faults` — deterministic crash/hang/corrupt-row injection
  (``REPRO_SWEEP_FAULT_RATE``/``_SEED``/``_KINDS``).
* :mod:`.supervisor` — async-submit worker processes with crash detection,
  SIGKILL-on-timeout and respawn.
* :mod:`.report` — sweep outcomes: rows + structured failure report.
* :mod:`.progress` — live done/leased/failed, rows/sec, ETA lines.
* :mod:`.cluster` — multi-host sharding: fenced epoch-file leases,
  heartbeat liveness, lease stealing with checkpoint migration, and the
  per-host store shards merged on read (``SweepOptions.cluster``).
* :mod:`.service` — the orchestrator: ``run_sweep`` /
  ``run_sweep_outcome`` with retries, backoff, resume and strict mode.
* :mod:`.selftest` — the end-to-end crash/fault/resume proofs
  (``python -m repro.experiments.sweeprunner.selftest proof`` /
  ``ckpt-proof`` / ``shard-proof``).
"""

from repro.experiments.sweeprunner.cluster import (
    HOST_ENV,
    ClusterOptions,
    FederatedStore,
    ShardCoordinator,
    resolve_host,
)
from repro.experiments.sweeprunner.faults import (
    CORRUPT_MARKER,
    FAULT_KINDS_ENV,
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    FaultPlan,
)
from repro.experiments.sweeprunner.ledger import (
    RunLedger,
    lease_counts,
    merged_counts,
    migrate_counts,
    resume_counts,
    sweep_ledger_paths,
)
from repro.experiments.sweeprunner.progress import PROGRESS_ENV
from repro.experiments.sweeprunner.report import (
    SweepOutcome,
    SweepPointsFailed,
    SweepStats,
    TaskFailure,
)
from repro.experiments.sweeprunner.service import (
    STRICT_ENV,
    SweepOptions,
    default_processes,
    resolve_strict,
    run_sweep,
    run_sweep_outcome,
)
from repro.experiments.sweeprunner.store import (
    SweepCache,
    collect_garbage,
    default_cache_dir,
)
from repro.experiments.sweeprunner.supervisor import Supervisor
from repro.experiments.sweeprunner.tasks import (
    CACHE_ENV_VAR,
    CACHE_VERSION,
    SweepTask,
    code_fingerprint,
    environment_axes,
    make_task,
    sweep_id,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "CORRUPT_MARKER",
    "FAULT_KINDS_ENV",
    "FAULT_RATE_ENV",
    "FAULT_SEED_ENV",
    "HOST_ENV",
    "PROGRESS_ENV",
    "STRICT_ENV",
    "ClusterOptions",
    "FaultPlan",
    "FederatedStore",
    "RunLedger",
    "ShardCoordinator",
    "Supervisor",
    "SweepCache",
    "SweepOptions",
    "SweepOutcome",
    "SweepPointsFailed",
    "SweepStats",
    "SweepTask",
    "TaskFailure",
    "code_fingerprint",
    "collect_garbage",
    "default_cache_dir",
    "default_processes",
    "environment_axes",
    "lease_counts",
    "make_task",
    "merged_counts",
    "migrate_counts",
    "resolve_host",
    "resolve_strict",
    "resume_counts",
    "run_sweep",
    "run_sweep_outcome",
    "sweep_id",
]
