"""Live progress/ETA lines for long sweeps.

Off by default (figure regenerations inside tests and benchmarks must stay
silent); enabled by passing an interval to :class:`SweepOptions.progress`
or setting ``REPRO_SWEEP_PROGRESS`` (``1``/``true`` for the default 2 s
cadence, or a float number of seconds).  Lines go to stderr so piped row
output stays clean.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Optional, TextIO

PROGRESS_ENV = "REPRO_SWEEP_PROGRESS"
DEFAULT_INTERVAL = 2.0


def resolve_interval(explicit: Optional[float]) -> Optional[float]:
    """The reporting interval in seconds, or None for silent."""
    if explicit is not None:
        return float(explicit) if explicit > 0 else None
    raw = os.environ.get(PROGRESS_ENV, "").strip().lower()
    if not raw or raw in ("0", "false", "no", "off"):
        return None
    if raw in ("1", "true", "yes", "on"):
        return DEFAULT_INTERVAL
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return value if value > 0 else None


class ProgressReporter:
    """Throttled progress printer: done/leased/failed, rows/sec, ETA, cache.

    The rate and ETA are computed over **work units**, not raw row counts:
    a point resumed from a mid-run checkpoint only computes the cycles the
    checkpoint did not already carry, so the service credits it as a
    fractional unit via ``computed_work`` (and discounts its in-flight
    remainder via ``in_flight_credit``).  Counting a resumed point as a
    full unit made the measured rate — and therefore the ETA for the
    remaining, mostly-fresh points — wrong by exactly the resumed prefix.
    ``computed_work=None`` falls back to ``done - cache_hits``, the
    pre-checkpoint behavior.
    """

    def __init__(self, total: int, interval: Optional[float],
                 stream: Optional[TextIO] = None) -> None:
        self.total = total
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self.started = time.monotonic()
        self._last = 0.0  # always print the first eligible tick

    @property
    def enabled(self) -> bool:
        return self.interval is not None

    def maybe_report(self, done: int, leased: int, failed: int,
                     cache_hits: int, force: bool = False,
                     computed_work: Optional[float] = None,
                     in_flight_credit: float = 0.0) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        elapsed = max(now - self.started, 1e-9)
        if computed_work is None:
            computed_work = max(done - cache_hits, 0)
        rate = computed_work / elapsed
        remaining = self.total - done - failed
        remaining_work = max(remaining - in_flight_credit, 0.0)
        if remaining > 0 and rate > 0:
            eta = f"eta {remaining_work / rate:.0f}s"
        elif remaining > 0:
            eta = "eta ?"
        else:
            eta = "finishing"
        hit_rate = (100.0 * cache_hits / done) if done else 0.0
        print(f"sweep {done}/{self.total} done, {leased} leased, "
              f"{failed} failed | {rate:.1f} rows/s | "
              f"cache {cache_hits} hits ({hit_rate:.0f}%) | {eta}",
              file=self.stream, flush=True)

    def final(self, done: int, failed: int, cache_hits: int,
              computed_work: Optional[float] = None) -> None:
        if not self.enabled:
            return
        self.maybe_report(done, 0, failed, cache_hits, force=True,
                          computed_work=computed_work)


__all__ = ["DEFAULT_INTERVAL", "PROGRESS_ENV", "ProgressReporter",
           "resolve_interval"]
