"""Worker-process supervision: async submit, crash detection, respawn.

This replaces ``multiprocessing.Pool.map``, whose all-or-nothing contract
is exactly what the sweep service must not have: one worker segfault or
OOM-kill aborts the whole map and discards every in-flight row.  Here each
worker is a bare ``Process`` with its own inbox; the driver submits tasks
asynchronously and collects :class:`TaskEvent` s:

* ``row`` / ``error`` — the worker reported a result (or a caught
  exception) through the shared outbox.
* ``crash`` — the worker died without reporting (segfault, OOM-kill,
  injected ``os._exit``): detected by liveness-checking workers that hold
  an assignment, the sentinel being the *absence* of a result from a dead
  process.  The worker is respawned; the task is the scheduler's to retry.
* ``timeout`` — the assignment outlived its wall-clock deadline; the
  worker is killed (SIGKILL — a hung worker won't honor anything gentler)
  and respawned.

Stale results are fenced by per-assignment tickets: a worker that beats
its own SIGKILL by a microsecond cannot resurrect an assignment the
supervisor already wrote off.  Workers ignore SIGINT (the driver owns
interrupt handling) and self-exit when their driver disappears, so a
``kill -9`` of the driver leaks no processes.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import signal
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from multiprocessing import get_context

from repro.experiments.sweeprunner import checkpoint as checkpoint_module
from repro.experiments.sweeprunner.faults import (
    CRASH_EXIT_CODE,
    FaultPlan,
    corrupt_row,
    hang_forever,
)

#: Seconds an idle worker waits on its inbox before re-checking that its
#: driver is still alive (orphan self-exit after a driver ``kill -9``).
_ORPHAN_POLL = 1.0


def default_start_method() -> str:
    """``fork`` shares the already-imported simulator with the workers;
    platforms without it fall back to ``spawn``."""
    return "fork" if sys.platform != "win32" else "spawn"


@dataclass
class Assignment:
    """One task execution leased to one worker."""

    ticket: int
    index: int
    key: str
    attempt: int
    params: Dict[str, Any]
    deadline: Optional[float]  # time.monotonic() cutoff, None = no timeout


@dataclass
class TaskEvent:
    """One supervision outcome, handed back to the scheduler."""

    kind: str  # row | error | crash | timeout
    assignment: Assignment
    payload: Any = None


def _describe_error(exc: BaseException) -> Dict[str, str]:
    return {
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback.format_exc(limit=20),
    }


def _worker_main(worker_id, fn, inbox, outbox, fault_plan, parent_pid,
                 checkpoint_dir):
    """Worker loop: lease → (maybe fault) → run → report.

    Runs in a child process.  Fault decisions replay the deterministic
    plan, so a resumed driver and a spawned worker agree with the serial
    path on exactly which (key, attempt) executions misbehave.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            message = inbox.get(timeout=_ORPHAN_POLL)
        except queue_module.Empty:
            if os.getppid() != parent_pid:
                os._exit(0)
            continue
        if message is None:
            return
        ticket, index, key, attempt, params = message
        fault = fault_plan.decide(key, attempt) if fault_plan else None
        if fault == "crash":
            os._exit(CRASH_EXIT_CODE)
        if fault == "hang":
            hang_forever(parent_pid)
        slot = None
        if checkpoint_dir is not None:
            slot = checkpoint_module.CheckpointSlot(checkpoint_dir, key,
                                                    attempt)
            if fault == "die":
                slot.arm_die()
            checkpoint_module.activate(slot)
        elif fault == "die":
            os._exit(CRASH_EXIT_CODE)  # no checkpointing: die is a crash
        try:
            row = fn(**params)
            if slot is not None:
                checkpoint_module.deactivate()
            if fault == "die":
                # The point never checkpointed (armed saves would have
                # exited already); die at completion so the fault still
                # costs this attempt.
                os._exit(CRASH_EXIT_CODE)
            if fault == "corrupt":
                row = corrupt_row(row)
            # The queue's feeder thread pickles asynchronously — an
            # unpicklable row would vanish there and hang the assignment,
            # so probe here where the failure is attributable.
            pickle.dumps(row)
            outbox.put((worker_id, ticket, "row", row))
        except KeyboardInterrupt:
            return
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            if slot is not None:
                checkpoint_module.deactivate()
            try:
                outbox.put((worker_id, ticket, "error", _describe_error(exc)))
            except Exception:
                os._exit(1)


class _WorkerHandle:
    def __init__(self, ctx, worker_id: int, fn, outbox, fault_plan,
                 checkpoint_dir) -> None:
        self.worker_id = worker_id
        self.inbox = ctx.Queue()
        self.assignment: Optional[Assignment] = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, fn, self.inbox, outbox, fault_plan, os.getpid(),
                  checkpoint_dir),
            daemon=True,
        )
        self.process.start()

    def submit(self, assignment: Assignment) -> None:
        self.assignment = assignment
        self.inbox.put((assignment.ticket, assignment.index, assignment.key,
                        assignment.attempt, assignment.params))

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):
            try:
                self.process.terminate()
            except OSError:
                pass
        self.process.join(timeout=5.0)

    def stop(self, join_timeout: float = 2.0) -> None:
        try:
            self.inbox.put(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=join_timeout)
        if self.process.is_alive():
            self.kill()


class Supervisor:
    """Owns the worker fleet; turns process-level mishaps into TaskEvents."""

    def __init__(self, fn, workers: int,
                 start_method: Optional[str] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 task_timeout: Optional[float] = None,
                 checkpoint_dir=None) -> None:
        self._ctx = get_context(start_method or default_start_method())
        self._fn = fn
        self._fault_plan = fault_plan
        self._checkpoint_dir = checkpoint_dir
        self.task_timeout = task_timeout
        self.outbox = self._ctx.Queue()
        self.respawns = 0
        self._next_ticket = 0
        self._live_tickets: Dict[int, _WorkerHandle] = {}
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(self._ctx, i, fn, self.outbox, fault_plan,
                          checkpoint_dir)
            for i in range(max(1, workers))
        ]

    # -- submission ------------------------------------------------------

    def idle_count(self) -> int:
        return sum(1 for h in self._handles if h.assignment is None)

    def submit(self, index: int, key: str, attempt: int,
               params: Dict[str, Any]) -> int:
        """Lease one task to an idle worker; returns the worker id."""
        handle = next(h for h in self._handles if h.assignment is None)
        self._next_ticket += 1
        deadline = (time.monotonic() + self.task_timeout
                    if self.task_timeout else None)
        assignment = Assignment(ticket=self._next_ticket, index=index,
                                key=key, attempt=attempt, params=params,
                                deadline=deadline)
        self._live_tickets[assignment.ticket] = handle
        handle.submit(assignment)
        return handle.worker_id

    # -- event collection ------------------------------------------------

    def poll(self, timeout: float = 0.05) -> List[TaskEvent]:
        """Drain results, then sweep liveness and deadlines."""
        events: List[TaskEvent] = []
        deadline_wait = timeout
        now = time.monotonic()
        for handle in self._handles:
            a = handle.assignment
            if a is not None and a.deadline is not None:
                deadline_wait = min(deadline_wait, max(a.deadline - now, 0.0))
        try:
            first = self.outbox.get(timeout=max(deadline_wait, 0.001))
            events.extend(self._accept(first))
        except queue_module.Empty:
            pass
        while True:
            try:
                events.extend(self._accept(self.outbox.get_nowait()))
            except queue_module.Empty:
                break
        events.extend(self._sweep_processes())
        return events

    def _accept(self, message) -> List[TaskEvent]:
        worker_id, ticket, kind, payload = message
        handle = self._live_tickets.pop(ticket, None)
        if handle is None or handle.assignment is None \
                or handle.assignment.ticket != ticket:
            return []  # stale: the assignment was already written off
        assignment = handle.assignment
        handle.assignment = None
        return [TaskEvent(kind=kind, assignment=assignment, payload=payload)]

    def _sweep_processes(self) -> List[TaskEvent]:
        events: List[TaskEvent] = []
        now = time.monotonic()
        for slot, handle in enumerate(self._handles):
            assignment = handle.assignment
            if assignment is not None and assignment.deadline is not None \
                    and now > assignment.deadline:
                self._live_tickets.pop(assignment.ticket, None)
                handle.assignment = None
                handle.kill()
                events.append(TaskEvent("timeout", assignment))
                self._respawn(slot)
                continue
            if not handle.process.is_alive():
                if assignment is not None:
                    # Died holding a lease and never reported: the crash
                    # sentinel is this missing result.
                    self._live_tickets.pop(assignment.ticket, None)
                    handle.assignment = None
                    events.append(TaskEvent("crash", assignment,
                                            handle.process.exitcode))
                self._respawn(slot)
        return events

    def _respawn(self, slot: int) -> None:
        self.respawns += 1
        self._handles[slot] = _WorkerHandle(
            self._ctx, self._handles[slot].worker_id, self._fn,
            self.outbox, self._fault_plan, self._checkpoint_dir)

    # -- shutdown --------------------------------------------------------

    def shutdown(self, kill: bool = False) -> None:
        for handle in self._handles:
            if kill or handle.assignment is not None:
                handle.kill()
            else:
                handle.stop()
        self._live_tickets.clear()
        try:
            self.outbox.close()
            self.outbox.cancel_join_thread()
        except (OSError, ValueError):
            pass


__all__ = ["Assignment", "Supervisor", "TaskEvent", "default_start_method"]
