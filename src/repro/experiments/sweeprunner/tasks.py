"""Task identity: cache keys over (function, params, environment, code).

A sweep row is a pure function of four inputs — the point function, its
keyword arguments, the ``REPRO_*`` environment axes that retarget every
point wholesale, and the simulator source itself.  :class:`SweepTask`
captures all four at construction and hashes them into one content
address, which names the row in the result store (:mod:`.store`) and the
task in the run ledger (:mod:`.ledger`).  Workers in a fresh interpreter
(``spawn`` start method, resumed drivers) re-derive the same key from the
same inputs — pinned by ``tests/test_sweeprunner.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict

#: Bump when simulator semantics change enough to invalidate cached rows.
#: (Code changes are caught automatically by :func:`code_fingerprint`; this
#: remains as a manual override for semantic changes outside ``src/repro``,
#: e.g. a row-schema change made by an experiment script.)
CACHE_VERSION = 2

#: Environment variable naming the cache directory (empty disables caching).
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"

PointFn = Callable[..., Dict[str, Any]]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of the simulator package source (``src/repro``).

    Any edit to any module invalidates every cached row: a sweep row is a
    function of (point function, parameters, environment, simulator code),
    and the first three alone produced stale-replay bugs when the simulator
    changed between runs.  Hashing ~100 source files costs a few
    milliseconds once per process — noise against a single sweep point.
    """
    package_root = Path(__file__).resolve().parents[2]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def environment_axes() -> Dict[str, str]:
    """The ``REPRO_*`` settings a sweep row depends on.

    ``platform`` and ``backend`` retarget every point wholesale without
    appearing in its parameters, so they must key the cache; the burst
    escape hatch is included because a row computed with the fast path off
    should never masquerade as a default-path row (results are equivalent
    by contract, but a cache hit must not silently hide a divergence the
    equivalence suites would catch).
    """
    return {
        "platform": os.environ.get("REPRO_PLATFORM") or "",
        "backend": os.environ.get("REPRO_BACKEND") or "",
        "disable_burst": os.environ.get("REPRO_DISABLE_BURST") or "",
    }


@dataclass(frozen=True)
class SweepTask:
    """One configuration point: a point function plus its keyword arguments.

    ``environment`` and ``code`` are captured at construction so the cache
    key reflects the state the point will actually run under.
    """

    module: str
    qualname: str
    params: Dict[str, Any]
    environment: Dict[str, str] = field(default_factory=environment_axes)
    code: str = field(default_factory=code_fingerprint)

    def cache_key(self) -> str:
        payload = json.dumps(
            {
                "version": CACHE_VERSION,
                "module": self.module,
                "qualname": self.qualname,
                "params": self.params,
                "environment": self.environment,
                "code": self.code,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def make_task(fn: PointFn, params: Dict[str, Any]) -> SweepTask:
    return SweepTask(module=fn.__module__, qualname=fn.__qualname__,
                     params=dict(params))


def sweep_id(tasks) -> str:
    """Stable identity of one sweep: a digest over its sorted task keys.

    Names the ledger file, so re-running the same sweep (same points, same
    environment, same code) finds and resumes its own journal while any
    other sweep gets a fresh one.
    """
    digest = hashlib.sha256()
    for key in sorted(task.cache_key() for task in tasks):
        digest.update(key.encode("ascii"))
    return digest.hexdigest()[:16]


def describe_key_derivation(params: Dict[str, Any]) -> Dict[str, Any]:
    """Key-derivation probe: the inputs and resulting key for fixed params.

    Module-level so a ``spawn``-context worker can import and run it in a
    fresh interpreter; the test suite compares its output across start
    methods to prove workers re-derive identical cache keys.
    """
    task = SweepTask(module="repro.sweeprunner.probe", qualname="probe",
                     params=dict(params))
    return {
        "code": code_fingerprint(),
        "environment": environment_axes(),
        "key": task.cache_key(),
    }
