"""Deterministic fault injection for the sweep service.

Faults are decided by a pure hash of ``(seed, task key, attempt)``, so the
same plan injects the same faults at the same points in every process that
evaluates it — the driver, a forked worker, a spawned worker, or a resumed
driver after a crash all agree.  Retried attempts hash differently, so a
point that crashed on attempt 1 normally runs clean on attempt 2 (unless
the rate says otherwise), which is exactly the transient-fault model the
recovery paths are built for.

Environment knobs (all optional; no faults when the rate is unset/zero)::

    REPRO_SWEEP_FAULT_RATE    probability per execution, e.g. "0.05"
    REPRO_SWEEP_FAULT_SEED    integer seed (default 0)
    REPRO_SWEEP_FAULT_KINDS   csv subset of "crash,hang,corrupt,die"

Fault kinds:

* ``crash`` — the worker process dies with ``os._exit(137)`` (an OOM-kill
  lookalike); in the serial in-process path it raises
  :class:`InjectedCrash` instead, since killing the driver is the one
  thing fault injection must not do.
* ``hang`` — the worker spins forever (in chunks, so an orphaned worker
  still notices its driver died); the supervisor's wall-clock timeout
  kills and replaces it.  Serially it raises :class:`InjectedHang`.
* ``corrupt`` — the row is replaced with a poisoned payload that row
  validation must catch before it reaches the store.
* ``die`` — the worker dies *mid-point*, right after its first durable
  checkpoint save (see :mod:`.checkpoint`), exercising the
  resume-from-checkpoint path; a point that never checkpoints dies at
  completion instead, degenerating to a plain crash.  Serially it is
  reported as an injected crash, like ``crash``.

Cluster fault kinds (see :mod:`.cluster`) are host-level rather than
worker-level, are **not** part of the default schedule (naming them in
``REPRO_SWEEP_FAULT_KINDS`` or ``FaultPlan(kinds=...)`` opts in), and are
no-ops on single-host sweeps:

* ``netsplit`` — the executing host freezes its heartbeats for the
  duration of the point while it keeps computing; peers declare it dead,
  steal the lease, and the fencing check discards the split host's late
  writes.
* ``steal-race`` — hosts that observe an expired lease skip the usual
  deterministic steal stagger, so every candidate rushes the
  ``O_CREAT|O_EXCL`` claim at once and exactly one wins.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

FAULT_RATE_ENV = "REPRO_SWEEP_FAULT_RATE"
FAULT_SEED_ENV = "REPRO_SWEEP_FAULT_SEED"
FAULT_KINDS_ENV = "REPRO_SWEEP_FAULT_KINDS"

FAULT_KINDS: Tuple[str, ...] = ("crash", "hang", "corrupt", "die")

#: Host-level fault kinds understood by the shard coordinator.  Kept out of
#: :data:`FAULT_KINDS` (the default schedule) so existing single-host fault
#: schedules — and the CI proof runs pinned against them — are unchanged;
#: plans opt in by naming them explicitly.
CLUSTER_FAULT_KINDS: Tuple[str, ...] = ("netsplit", "steal-race")

ALL_FAULT_KINDS: Tuple[str, ...] = FAULT_KINDS + CLUSTER_FAULT_KINDS

#: Marker key planted by corrupt-row faults; row validation rejects any row
#: carrying it, proving the validation path rather than trusting it.
CORRUPT_MARKER = "__repro_sweep_corrupt__"

#: Exit code used by injected crashes (the Linux OOM-killer's SIGKILL code).
CRASH_EXIT_CODE = 137

#: Timeout applied when hangs are being injected but the caller set none —
#: an untimed hang would otherwise stall the sweep forever.
DEFAULT_HANG_TIMEOUT = 30.0


class InjectedCrash(RuntimeError):
    """Serial-path stand-in for a worker process crash."""


class InjectedHang(RuntimeError):
    """Serial-path stand-in for a worker hang (reported as a timeout)."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule over (task key, attempt) pairs."""

    rate: float = 0.0
    seed: int = 0
    kinds: Tuple[str, ...] = FAULT_KINDS

    @property
    def active(self) -> bool:
        return self.rate > 0.0 and bool(self.kinds)

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault kind for this execution, or None for a clean run."""
        if not self.active:
            return None
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("ascii")).digest()
        draw = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        if draw >= self.rate:
            return None
        return self.kinds[int.from_bytes(digest[8:12], "big") % len(self.kinds)]

    def to_env(self) -> Dict[str, str]:
        """The environment variables reproducing this plan in a subprocess."""
        return {
            FAULT_RATE_ENV: repr(self.rate),
            FAULT_SEED_ENV: str(self.seed),
            FAULT_KINDS_ENV: ",".join(self.kinds),
        }

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None
                 ) -> Optional["FaultPlan"]:
        environ = os.environ if environ is None else environ
        raw = environ.get(FAULT_RATE_ENV)
        if not raw:
            return None
        try:
            rate = float(raw)
        except ValueError:
            return None
        if rate <= 0.0:
            return None
        try:
            seed = int(environ.get(FAULT_SEED_ENV) or 0)
        except ValueError:
            seed = 0
        kinds_raw = environ.get(FAULT_KINDS_ENV) or ""
        kinds = tuple(k.strip() for k in kinds_raw.split(",")
                      if k.strip() in ALL_FAULT_KINDS) or FAULT_KINDS
        return cls(rate=min(rate, 1.0), seed=seed, kinds=kinds)


def corrupt_row(row: Any) -> Dict[str, Any]:
    """The poisoned payload a corrupt-row fault substitutes for the row."""
    return {CORRUPT_MARKER: True, "original_type": type(row).__name__}


def hang_forever(parent_pid: int, poll_seconds: float = 0.2) -> None:
    """Spin until killed — but self-exit if the driver itself is gone.

    A hang exists to exercise the supervisor's timeout/kill path; if the
    driver was ``kill -9``'d first there is nobody left to kill us, and
    exiting on re-parent keeps the fault-injection tests leak-free.
    """
    while os.getppid() == parent_pid:
        time.sleep(poll_seconds)
    os._exit(0)


__all__ = [
    "ALL_FAULT_KINDS", "CLUSTER_FAULT_KINDS", "CORRUPT_MARKER",
    "CRASH_EXIT_CODE", "DEFAULT_HANG_TIMEOUT",
    "FAULT_KINDS", "FAULT_KINDS_ENV", "FAULT_RATE_ENV", "FAULT_SEED_ENV",
    "FaultPlan", "InjectedCrash", "InjectedHang", "corrupt_row",
    "hang_forever",
]
