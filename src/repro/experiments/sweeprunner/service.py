"""The sweep service: durable, supervised, resumable sweep execution.

:func:`run_sweep` keeps the facade contract every ``experiments/fig*.py``
entry point has always used (rows in parameter order), on top of a very
different execution core:

* every pending point is journaled to the run ledger (``leased`` fsynced
  before dispatch, ``done``/``failed`` after), so a ``kill -9`` of driver
  or worker resumes exactly where it left off — completed rows replay from
  the content-addressed store, interrupted leases count against the retry
  budget, and no point ever executes more than ``1 + max_retries`` times;
* workers are supervised processes (see :mod:`.supervisor`): crashes and
  OOM-kills surface as retryable failures and the worker is respawned,
  hangs are cut by the per-task wall-clock timeout;
* retries back off exponentially with deterministic jitter;
* a sweep whose points exhaust their retries **degrades gracefully**: the
  completed rows come back plus a structured failure report.  Strict mode
  (``strict=True``, the library default, or ``REPRO_SWEEP_STRICT=1``)
  raises :class:`SweepPointsFailed` instead — the mode CI runs in.

Durability requires a directory: the journal lives next to the result
store (``<cache_dir>/ledger/``) whenever caching is on, or under an
explicit ``SweepOptions.ledger_dir``.  Without either, the sweep runs
memory-only exactly as before (still supervised, still retried).
"""

from __future__ import annotations

import hashlib
import heapq
import os
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.sweeprunner import checkpoint as checkpoint_module
from repro.experiments.sweeprunner import ledger as ledger_module
from repro.experiments.sweeprunner import store as store_module
from repro.experiments.sweeprunner.cluster import (
    BUSY,
    EXHAUSTED,
    ClusterOptions,
    FederatedStore,
    Lease,
    ShardCoordinator,
    resolve_host,
)
from repro.experiments.sweeprunner.faults import (
    CORRUPT_MARKER,
    DEFAULT_HANG_TIMEOUT,
    FaultPlan,
    corrupt_row,
)
from repro.experiments.sweeprunner.progress import (
    ProgressReporter,
    resolve_interval,
)
from repro.experiments.sweeprunner.report import (
    SweepOutcome,
    SweepPointsFailed,
    SweepStats,
    TaskFailure,
)
from repro.experiments.sweeprunner.store import SweepCache, default_cache_dir
from repro.experiments.sweeprunner.supervisor import Supervisor
from repro.experiments.sweeprunner.tasks import (
    PointFn,
    SweepTask,
    make_task,
    sweep_id,
)

#: Strict-mode default for library callers; ``REPRO_SWEEP_STRICT`` flips the
#: default for whole processes (CI sets it to 1 explicitly, figure CLIs may
#: set it to 0 for graceful regeneration).
STRICT_ENV = "REPRO_SWEEP_STRICT"


@dataclass(frozen=True)
class SweepOptions:
    """Service knobs beyond the classic (processes, cache_dir) pair."""

    processes: Optional[int] = None
    cache_dir: Optional[os.PathLike] = None
    #: Journal directory; defaults to ``<cache_dir>/ledger`` when caching is
    #: on.  Set ``journal=False`` to run memory-only even with a cache.
    ledger_dir: Optional[os.PathLike] = None
    journal: bool = True
    #: Executions per point are bounded by ``1 + max_retries``.
    max_retries: int = 2
    #: Wall-clock seconds per task execution (supervised mode only; the
    #: serial in-process path cannot preempt a running point).
    task_timeout: Optional[float] = None
    #: Exponential-backoff base delay between retries, seconds.
    retry_backoff: float = 0.25
    #: Fractional jitter on top of the backoff (deterministic per key).
    retry_jitter: float = 0.25
    #: None resolves via REPRO_SWEEP_STRICT, then True.
    strict: Optional[bool] = None
    #: Progress-line interval in seconds; None resolves REPRO_SWEEP_PROGRESS.
    progress: Optional[float] = None
    start_method: Optional[str] = None
    #: None resolves from the REPRO_SWEEP_FAULT_* environment.
    fault_plan: Optional[FaultPlan] = None
    #: Directory for mid-point checkpoints of preemptible points (see
    #: :mod:`.checkpoint`); defaults to ``<cache_dir>/checkpoints`` when
    #: caching is on.  An explicit empty string disables checkpointing.
    checkpoint_dir: Optional[os.PathLike] = None
    #: Multi-host sharding (see :mod:`.cluster`); requires a cache
    #: directory, which becomes the shared coordination root.
    cluster: Optional[ClusterOptions] = None
    #: Retention window for quarantined ``*.corrupt`` store files; a GC
    #: pass runs after clean sweep completion (see
    #: :func:`.store.collect_garbage`).  None disables the pass.
    gc_retention: Optional[float] = store_module.DEFAULT_CORRUPT_RETENTION


def default_processes(task_count: int) -> int:
    """Worker count: one per CPU, capped by the number of points."""
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, task_count))


def resolve_strict(explicit: Optional[bool]) -> bool:
    if explicit is not None:
        return bool(explicit)
    raw = os.environ.get(STRICT_ENV, "").strip().lower()
    if raw:
        return raw not in ("0", "false", "no", "off")
    return True


def _validate_row(fn_label: str, row: Any) -> Optional[Tuple[str, str]]:
    """(error_type, message) when the row must not enter the store."""
    if not isinstance(row, dict):
        return ("TypeError",
                f"sweep point {fn_label} returned {type(row).__name__}; "
                "point functions must return a dict row")
    if CORRUPT_MARKER in row:
        return ("CorruptRow",
                "row failed integrity validation (corrupt-row marker)")
    return None


def _backoff_delay(options: SweepOptions, key: str, attempt: int) -> float:
    """Exponential backoff with deterministic per-(key, attempt) jitter."""
    base = options.retry_backoff * (2.0 ** max(attempt - 1, 0))
    digest = hashlib.sha256(f"backoff:{key}:{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return min(base * (1.0 + options.retry_jitter * unit), 60.0)


class _PointState:
    """Driver-side state of one unique task key."""

    __slots__ = ("key", "task", "indices", "attempts", "row", "done",
                 "failure", "from_cache", "lease_epoch", "resume_credit")

    def __init__(self, key: str, task: SweepTask) -> None:
        self.key = key
        self.task = task
        self.indices: List[int] = []
        self.attempts = 0       # leases used, including prior incarnations
        self.row: Optional[Dict[str, Any]] = None
        self.done = False
        self.failure: Optional[TaskFailure] = None
        self.from_cache = False
        self.lease_epoch = 0    # cluster fencing token of the live lease
        self.resume_credit = 0.0  # checkpoint fraction of the live lease


class _SweepRun:
    """One run_sweep call: owns cache, ledger, scheduler state."""

    def __init__(self, fn: PointFn, param_sets: Sequence[Dict[str, Any]],
                 options: SweepOptions) -> None:
        self.fn = fn
        self.fn_label = getattr(fn, "__qualname__", repr(fn))
        self.options = options
        self.param_sets = [dict(p) for p in param_sets]
        self.tasks = [make_task(fn, p) for p in self.param_sets]
        self.stats = SweepStats(total_points=len(self.tasks))
        self.fault_plan = (options.fault_plan if options.fault_plan is not None
                           else FaultPlan.from_env())
        self.task_timeout = options.task_timeout
        if (self.task_timeout is None and self.fault_plan is not None
                and self.fault_plan.active and "hang" in self.fault_plan.kinds):
            self.task_timeout = DEFAULT_HANG_TIMEOUT
        self.max_leases = 1 + max(0, options.max_retries)

        # Unique-key states; duplicated parameter sets share one execution.
        self.states: Dict[str, _PointState] = {}
        self.order: List[str] = []  # key per index
        for index, task in enumerate(self.tasks):
            key = task.cache_key()
            state = self.states.get(key)
            if state is None:
                state = self.states[key] = _PointState(key, task)
            state.indices.append(index)
            self.order.append(key)

        self.cluster = options.cluster
        self.host = (resolve_host(self.cluster.host)
                     if self.cluster is not None else None)
        self.cache = self._open_cache()
        self.coordinator: Optional[ShardCoordinator] = None
        if self.cluster is not None:
            self.coordinator = ShardCoordinator(
                self.cache.root, self.host, self.max_leases,
                self.cluster, fault_plan=self.fault_plan)
        self.ledger = self._open_ledger()
        self.checkpoint_dir = self._resolve_checkpoint_dir()
        self._computed_work = 0.0  # fractional units actually simulated
        self._interrupted = threading.Event()

    # -- durability ------------------------------------------------------

    def _open_cache(self) -> Optional[SweepCache]:
        if self.options.cache_dir is not None:
            # An explicit empty string forces caching off even when the
            # REPRO_SWEEP_CACHE environment variable is set.
            directory = (Path(self.options.cache_dir)
                         if str(self.options.cache_dir) else None)
        else:
            directory = default_cache_dir()
        if directory is None and self.options.ledger_dir is not None \
                and self.options.journal:
            # Journaling without a cache still needs durable rows: the
            # ledger's done records point into this store.
            directory = Path(self.options.ledger_dir) / "store"
        if self.cluster is not None:
            # Sharding coordinates entirely through the cache directory;
            # without one there is nothing for the hosts to share.
            if directory is None:
                raise ValueError(
                    "SweepOptions.cluster requires a cache directory "
                    "(cache_dir, REPRO_SWEEP_CACHE, or ledger_dir)")
            return FederatedStore(directory, self.host,
                                  fsync=self.options.journal)
        if directory is None:
            return None
        try:
            return SweepCache(directory, fsync=self.options.journal)
        except OSError as exc:  # caching is best-effort; never fail the sweep
            print(f"sweep cache disabled ({directory}: {exc})",
                  file=sys.stderr)
            return None

    def _open_ledger(self) -> Optional[ledger_module.RunLedger]:
        if not self.options.journal or not self.states:
            return None
        if self.options.ledger_dir is not None:
            directory = Path(self.options.ledger_dir)
        elif self.cache is not None:
            directory = self.cache.root / "ledger"
        else:
            return None
        path = ledger_module.ledger_path(directory, sweep_id(self.tasks),
                                         host=self.host)
        fresh = not path.exists()
        try:
            journal = ledger_module.RunLedger(path)
        except OSError as exc:
            print(f"sweep ledger disabled ({path}: {exc})", file=sys.stderr)
            return None
        if fresh:
            journal.append_queued(
                self.states.keys(),
                {"fn": f"{self.fn.__module__}.{self.fn_label}",
                 "points": len(self.states),
                 "max_retries": self.options.max_retries})
        else:
            self.stats.resumed = journal.resumed
        return journal

    def _resolve_checkpoint_dir(self) -> Optional[Path]:
        if self.options.checkpoint_dir is not None:
            directory = (Path(self.options.checkpoint_dir)
                         if str(self.options.checkpoint_dir) else None)
        elif self.coordinator is not None:
            # Per-host checkpoint shard: steals migrate files between
            # shards, so each host only ever writes its own.
            directory = self.coordinator.checkpoint_dir()
        elif self.cache is not None:
            directory = self.cache.root / "checkpoints"
        else:
            directory = None
        if directory is None:
            return None
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:  # best-effort, like the cache
            print(f"sweep checkpoints disabled ({directory}: {exc})",
                  file=sys.stderr)
            return None
        return directory

    def _checkpoint_path(self, key: str) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        return checkpoint_module.checkpoint_file(self.checkpoint_dir, key)

    # -- scheduling ------------------------------------------------------

    def _prefill(self) -> List[str]:
        """Resolve cache hits and ledger history; return pending keys."""
        pending: List[str] = []
        for key, state in self.states.items():
            if self.cache is not None:
                row = self.cache.load(state.task)
                if row is not None:
                    state.row = row
                    state.done = True
                    state.from_cache = True
                    continue
            if self.ledger is not None and self.coordinator is None:
                record = self.ledger.record(key)
                if record.done:
                    # Journal says done but the store lost the row (eviction,
                    # tampering): recompute with a fresh attempt budget.
                    state.attempts = 0
                else:
                    state.attempts = record.leases
                if state.attempts >= self.max_leases:
                    self._exhaust(state, record)
                    continue
            # Cluster mode replays nothing here: the claim files are the
            # global attempt counter, and a key at its budget may still be
            # completed by the live holder — acquire() decides per poll.
            pending.append(key)
        return pending

    def _exhaust(self, state: _PointState,
                 record: Optional[ledger_module.TaskRecord]) -> None:
        """Mark a point failed-for-good from its (possibly replayed) history."""
        last = record.failures[-1] if record is not None and record.failures \
            else None
        if last is None:
            kind, error_type, message = "crash", "", \
                "lease interrupted by a driver crash"
        else:
            kind = str(last.get("kind", "error"))
            error_type = str(last.get("error_type", ""))
            message = str(last.get("message", ""))
        state.failure = TaskFailure(
            key=state.key, params=dict(state.task.params),
            attempts=state.attempts, kind=kind,
            error_type=error_type, message=message)

    def _record_failure(self, state: _PointState, kind: str,
                        error_type: str, message: str) -> Optional[float]:
        """Journal one failed attempt; return a retry delay or None."""
        state.resume_credit = 0.0
        if self.coordinator is not None \
                and not self.coordinator.still_holds(state.key,
                                                     state.lease_epoch):
            # Fenced: a peer already stole this lease, so the outcome is
            # theirs to decide — record nothing, just poll for their row.
            self.stats.fenced_writes += 1
            return self.cluster.poll_interval
        if kind == "timeout":
            self.stats.timeouts += 1
        elif kind == "crash":
            self.stats.crashes += 1
        elif kind == "corrupt-row":
            self.stats.corrupt_rows += 1
        if self.ledger is not None:
            self.ledger.append_failed(state.key, state.attempts, kind,
                                      error_type, message)
        if self.coordinator is not None:
            # Release the lease: peers may mint the next epoch immediately
            # instead of waiting out the staleness window.
            self.coordinator.mark_failed(state.key, state.attempts, kind,
                                         error_type, message)
        if state.attempts < self.max_leases:
            return _backoff_delay(self.options, state.key, state.attempts)
        state.failure = TaskFailure(
            key=state.key, params=dict(state.task.params),
            attempts=state.attempts, kind=kind,
            error_type=error_type, message=message)
        return None

    def _lease(self, state: _PointState, worker: Any = None,
               lease: Optional[Lease] = None) -> int:
        ckpt = self._checkpoint_path(state.key)
        if lease is not None:
            # Cluster: the minted epoch IS the global attempt number, and
            # the coordinator already decided the provenance (a steal may
            # have migrated a dead host's checkpoint into our shard).
            state.attempts = lease.epoch
            state.lease_epoch = lease.epoch
            provenance = lease.provenance
        else:
            state.attempts += 1
            provenance = ("resume" if ckpt is not None and ckpt.exists()
                          else "fresh")
        state.resume_credit = (
            checkpoint_module.peek_fraction(ckpt)
            if ckpt is not None and provenance in ("resume", "migrated")
            else 0.0)
        self.stats.executed += 1
        if state.attempts > 1:
            self.stats.retries += 1
        if self.ledger is not None:
            self.ledger.append_leased(state.key, state.attempts, worker,
                                      checkpoint=provenance)
        return state.attempts

    def _complete(self, state: _PointState, row: Dict[str, Any]) -> bool:
        """Land a completed row; False when the lease was fenced off."""
        if self.coordinator is not None \
                and not self.coordinator.still_holds(state.key,
                                                     state.lease_epoch):
            # A peer declared us dead (e.g. a netsplit froze our
            # heartbeats) and stole the lease: our row must not land over
            # the newer epoch's outcome.
            self.stats.fenced_writes += 1
            state.resume_credit = 0.0
            return False
        state.row = row
        state.done = True
        self._computed_work += max(1.0 - state.resume_credit, 0.0)
        state.resume_credit = 0.0
        if self.cache is not None:
            self.cache.store(state.task, row)
        if self.ledger is not None:
            self.ledger.append_done(state.key, state.attempts)
        ckpt = self._checkpoint_path(state.key)
        if ckpt is not None:
            # The row is durable; its resume file is dead weight now.
            try:
                ckpt.unlink()
            except OSError:
                pass
        return True

    def _peer_done(self, state: _PointState) -> bool:
        """Whether another host's row for this key landed in the store."""
        if self.cache is None:
            return False
        row = self.cache.load(state.task)
        if row is None:
            return False
        state.row = row
        state.done = True
        state.resume_credit = 0.0
        self.stats.peer_rows += 1
        return True

    def _exhaust_cluster(self, state: _PointState) -> None:
        """The cross-host lease budget is spent and the final holder is
        gone (dead, or released after failing): the point is dead sweep-wide.
        The failed-lease marker, when one exists, carries the real error."""
        if self._peer_done(state):  # raced a late completion: not dead
            return
        epoch = self.coordinator.current_epoch(state.key)
        state.attempts = epoch
        info = self.coordinator.failure_info(state.key, epoch) or {}
        state.failure = TaskFailure(
            key=state.key, params=dict(state.task.params), attempts=epoch,
            kind=str(info.get("kind") or "crash"),
            error_type=str(info.get("error_type") or ""),
            message=str(info.get("message") or
                        "lease budget exhausted across hosts"))

    # -- execution paths -------------------------------------------------

    def _run_serial(self, pending: List[str]) -> None:
        """In-process execution: journaled and retried, but not preemptible.

        Faults are simulated as failures (an injected crash must not kill
        the driver it is supposed to be protecting); timeouts cannot be
        enforced without a worker process and are documented as such.
        Retries are immediate — backoff exists to ride out transient
        resource pressure, which in-process execution cannot create.

        Cluster mode turns the queue into a deferred heap: a key someone
        else holds comes back after ``poll_interval``, a failed own attempt
        after its backoff delay (peers can pick it up meanwhile), and the
        loop only ends when every key is done or dead sweep-wide.
        """
        heap: List[Tuple[float, int, str]] = []
        seq = 0

        def defer(key: str, delay: float) -> None:
            nonlocal seq
            seq += 1
            heapq.heappush(heap, (time.monotonic() + delay, seq, key))

        for key in pending:
            defer(key, 0.0)
        poll = self.cluster.poll_interval if self.cluster is not None else 0.0
        while heap:
            due = heap[0][0]
            now = time.monotonic()
            if due > now:
                # Only cluster polling and backoff defer into the future;
                # an Event wait keeps Ctrl-C prompt.
                if self._interrupted.wait(min(due - now, 0.5)):
                    raise KeyboardInterrupt
                continue
            key = heapq.heappop(heap)[2]
            state = self.states[key]
            lease = None
            if self.coordinator is not None:
                if self._peer_done(state):
                    self._tick_progress()
                    continue
                claim = self.coordinator.acquire(key)
                if claim is BUSY:
                    defer(key, poll)
                    continue
                if claim is EXHAUSTED:
                    self._exhaust_cluster(state)
                    self._tick_progress()
                    continue
                lease = claim
            attempt = self._lease(state, lease=lease)
            fault = (self.fault_plan.decide(key, attempt)
                     if self.fault_plan is not None else None)
            netsplit = fault == "netsplit" and self.coordinator is not None
            if netsplit:
                # The host keeps computing but goes silent to its peers —
                # the lease becomes stealable mid-execution, and the late
                # completion must die on the fencing check.
                self.coordinator.suppress_heartbeats()
            kind = error_type = message = ""
            try:
                if fault in ("crash", "die"):
                    # A die cannot kill the in-process driver; both report
                    # as the crash they would have been.
                    kind, message = "crash", f"injected {fault} (serial path)"
                elif fault == "hang":
                    kind, message = "timeout", "injected hang (serial path)"
                else:
                    slot = None
                    if self.checkpoint_dir is not None:
                        slot = checkpoint_module.CheckpointSlot(
                            self.checkpoint_dir, key, attempt)
                        checkpoint_module.activate(slot)
                    try:
                        row = self.fn(**state.task.params)
                        if fault == "corrupt":
                            row = corrupt_row(row)
                        invalid = _validate_row(self.fn_label, row)
                        if invalid is None:
                            if self._complete(state, row):
                                self._tick_progress()
                            else:
                                defer(key, poll)  # fenced: thief owns it now
                            continue
                        kind, (error_type, message) = "corrupt-row", invalid
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        kind = "error"
                        error_type, message = type(exc).__name__, str(exc)
                    finally:
                        if slot is not None:
                            checkpoint_module.deactivate()
            finally:
                if netsplit:
                    self.coordinator.resume_heartbeats()
            delay = self._record_failure(state, kind, error_type, message)
            if delay is not None:
                # Classic serial retries stay immediate; cluster retries
                # honor the delay so peers get a fair shot at the steal.
                defer(key, delay if self.coordinator is not None else 0.0)
            self._tick_progress()

    def _run_supervised(self, pending: List[str], workers: int) -> None:
        supervisor = Supervisor(
            self.fn, workers=workers,
            start_method=self.options.start_method,
            fault_plan=self.fault_plan,
            task_timeout=self.task_timeout,
            checkpoint_dir=self.checkpoint_dir)
        try:
            ready = deque(pending)
            retry_heap: List[Tuple[float, int, str]] = []
            retry_seq = 0
            in_flight = 0
            netsplit_keys: set = set()
            poll_delay = (self.cluster.poll_interval
                          if self.cluster is not None else 0.0)

            def requeue(key: str, delay: float) -> None:
                nonlocal retry_seq
                retry_seq += 1
                heapq.heappush(retry_heap,
                               (time.monotonic() + delay, retry_seq, key))

            while ready or retry_heap or in_flight:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    ready.append(heapq.heappop(retry_heap)[2])
                while ready and supervisor.idle_count() > 0:
                    key = ready.popleft()
                    state = self.states[key]
                    if self.coordinator is not None:
                        if self._peer_done(state):
                            continue
                        claim = self.coordinator.acquire(key)
                        if claim is BUSY:
                            requeue(key, poll_delay)
                            continue
                        if claim is EXHAUSTED:
                            self._exhaust_cluster(state)
                            continue
                        attempt = self._lease(state, lease=claim)
                    else:
                        attempt = self._lease(state)
                    if self.coordinator is not None \
                            and self.fault_plan is not None \
                            and self.fault_plan.decide(key, attempt) \
                            == "netsplit":
                        # The worker runs the point normally (unknown kinds
                        # are clean runs); the *driver* goes silent so the
                        # lease is stealable while the work is in flight.
                        self.coordinator.suppress_heartbeats()
                        netsplit_keys.add(key)
                    supervisor.submit(state.indices[0], key, attempt,
                                      state.task.params)
                    in_flight += 1
                if not (ready or retry_heap or in_flight):
                    break
                if not ready and retry_heap and not in_flight:
                    # Pure backoff: nothing is running, we are only waiting
                    # out a retry delay.  An Event wait (not a sleep) makes
                    # Ctrl-C cut it short instead of riding it out.
                    delay = max(retry_heap[0][0] - time.monotonic(), 0.0)
                    if delay > 0 and self._interrupted.wait(min(delay, 0.5)):
                        raise KeyboardInterrupt
                    continue
                for event in supervisor.poll(timeout=0.05):
                    in_flight -= 1
                    key = event.assignment.key
                    if key in netsplit_keys:
                        netsplit_keys.discard(key)
                        self.coordinator.resume_heartbeats()
                    state = self.states[key]
                    delay = self._handle_event(state, event)
                    if delay is not None:
                        requeue(state.key, delay)
                self._tick_progress(leased=in_flight)
            self.stats.worker_respawns = supervisor.respawns
        except BaseException:
            self.stats.worker_respawns = supervisor.respawns
            supervisor.shutdown(kill=True)
            raise
        supervisor.shutdown()

    def _handle_event(self, state: _PointState, event) -> Optional[float]:
        """Returns a retry delay when the attempt failed but may run again."""
        if event.kind == "row":
            invalid = _validate_row(self.fn_label, event.payload)
            if invalid is None:
                if self._complete(state, event.payload):
                    return None
                # Fenced completion: the thief owns the outcome; poll for
                # its row (or our next shot at the lease).
                return (self.cluster.poll_interval
                        if self.cluster is not None else 0.0)
            return self._record_failure(state, "corrupt-row", *invalid)
        if event.kind == "error":
            info = event.payload or {}
            return self._record_failure(state, "error",
                                        str(info.get("error_type", "")),
                                        str(info.get("message", "")))
        if event.kind == "crash":
            return self._record_failure(
                state, "crash", "",
                f"worker died without reporting (exit code {event.payload})")
        if event.kind == "timeout":
            return self._record_failure(
                state, "timeout", "",
                f"exceeded {self.task_timeout:.1f}s wall clock")
        raise AssertionError(f"unknown supervision event {event.kind!r}")

    # -- progress --------------------------------------------------------

    def _tick_progress(self, leased: int = 0) -> None:
        if self.progress is None:
            return
        done = sum(len(s.indices) for s in self.states.values() if s.done)
        failed = sum(len(s.indices) for s in self.states.values()
                     if s.failure is not None)
        hits = self.cache.hits if self.cache is not None else 0
        credit = sum(s.resume_credit for s in self.states.values()
                     if not s.done and s.failure is None)
        self.progress.maybe_report(done, leased, failed, hits,
                                   computed_work=self._computed_work,
                                   in_flight_credit=credit)

    # -- top level -------------------------------------------------------

    def run(self) -> SweepOutcome:
        started = time.monotonic()
        interval = resolve_interval(self.options.progress)
        self.progress = (ProgressReporter(len(self.param_sets), interval)
                         if interval is not None else None)
        previous_sigint = self._install_sigint()
        if self.coordinator is not None:
            self.coordinator.start()
        try:
            pending = self._prefill()
            if pending:
                workers = (default_processes(len(pending))
                           if self.options.processes is None
                           else max(1, self.options.processes))
                if workers <= 1 or len(pending) <= 1:
                    self._run_serial(pending)
                else:
                    self._run_supervised(pending, min(workers, len(pending)))
            if self.ledger is not None and self.coordinator is None \
                    and all(s.done for s in self.states.values()):
                # Clean completion: collapse the journal to one snapshot
                # record (replay state preserved; history dropped).  Cluster
                # ledgers are left verbatim: the shard audit merges every
                # host's event history, including keys peers completed.
                self.ledger.compact()
            if self.cache is not None \
                    and self.options.gc_retention is not None \
                    and all(s.done for s in self.states.values()):
                # Retention pass: expire old quarantined *.corrupt files
                # and checkpoints whose rows already landed (any shard).
                store_module.collect_garbage(
                    self.cache.root,
                    corrupt_retention=self.options.gc_retention)
        except KeyboardInterrupt:
            self._on_interrupt()
            raise
        finally:
            if self.coordinator is not None:
                self.coordinator.stop()
            if previous_sigint is not None:
                signal.signal(signal.SIGINT, previous_sigint)
            if self.ledger is not None:
                self.ledger.close()
        return self._finalize(started)

    def _install_sigint(self) -> Optional[Any]:
        """Route SIGINT through the interrupt event (main thread only).

        The event is what lets a pure-backoff wait end early; the handler
        still raises KeyboardInterrupt so every other blocking point keeps
        its prompt Ctrl-C behavior.
        """
        if threading.current_thread() is not threading.main_thread():
            return None

        def _handler(signum, frame):
            self._interrupted.set()
            raise KeyboardInterrupt

        try:
            return signal.signal(signal.SIGINT, _handler)
        except (ValueError, OSError):
            return None

    def _on_interrupt(self) -> None:
        """Clean Ctrl-C: completed rows are already durable; say how to resume."""
        done = sum(len(s.indices) for s in self.states.values() if s.done)
        total = len(self.param_sets)
        if self.ledger is not None:
            hint = (f"sweep interrupted — {done}/{total} rows journaled; "
                    f"re-run the same command to resume from "
                    f"{self.ledger.path}")
        else:
            hint = (f"sweep interrupted — {done}/{total} rows completed but "
                    "not journaled (set REPRO_SWEEP_CACHE or pass cache_dir "
                    "to make sweeps resumable)")
        print(hint, file=sys.stderr, flush=True)

    def _finalize(self, started: float) -> SweepOutcome:
        stats = self.stats
        stats.duration_seconds = time.monotonic() - started
        if self.cache is not None:
            stats.cache_hits = self.cache.hits
            stats.cache_misses = self.cache.misses
        failures: List[TaskFailure] = []
        rows: List[Dict[str, Any]] = []
        for key in self.order:
            state = self.states[key]
            if state.done and state.row is not None:
                rows.append(state.row)
        for state in self.states.values():
            if state.failure is not None:
                failures.append(state.failure)
                stats.failed_points += len(state.indices)
        stats.completed = len(rows)
        if self.coordinator is not None:
            stats.steals = self.coordinator.steals
            stats.migrated_resumes = self.coordinator.migrations
        if self.progress is not None:
            self.progress.final(stats.completed, stats.failed_points,
                                stats.cache_hits,
                                computed_work=self._computed_work)
        return SweepOutcome(
            rows=rows, failures=failures, stats=stats,
            ledger_path=self.ledger.path if self.ledger is not None else None)


def _merged_options(processes: Optional[int],
                    cache_dir: Optional[os.PathLike],
                    options: Optional[SweepOptions]) -> SweepOptions:
    merged = options if options is not None else SweepOptions()
    if processes is not None:
        merged = replace(merged, processes=processes)
    if cache_dir is not None:
        merged = replace(merged, cache_dir=cache_dir)
    return merged


def run_sweep_outcome(fn: PointFn, param_sets: Sequence[Dict[str, Any]],
                      processes: Optional[int] = None,
                      cache_dir: Optional[os.PathLike] = None,
                      options: Optional[SweepOptions] = None) -> SweepOutcome:
    """Run the sweep; never raises on point failure (graceful degradation)."""
    if not param_sets:
        return SweepOutcome()
    merged = _merged_options(processes, cache_dir, options)
    return _SweepRun(fn, param_sets, merged).run()


def run_sweep(fn: PointFn, param_sets: Sequence[Dict[str, Any]],
              processes: Optional[int] = None,
              cache_dir: Optional[os.PathLike] = None,
              options: Optional[SweepOptions] = None) -> List[Dict[str, Any]]:
    """Run ``fn(**params)`` for every parameter set; returns rows in order.

    ``processes`` defaults to one worker per CPU (serial in-process when the
    machine has a single CPU or only one point, avoiding process overhead).
    ``cache_dir`` overrides the ``REPRO_SWEEP_CACHE`` environment variable.
    ``options`` exposes the full sweep-service surface (retries, timeouts,
    journaling, fault injection, progress).

    In strict mode (the default) a point that exhausts its retries raises
    :class:`SweepPointsFailed` carrying the full outcome; with
    ``strict=False`` (or ``REPRO_SWEEP_STRICT=0``) the completed rows are
    returned and the failure report is printed to stderr.
    """
    merged = _merged_options(processes, cache_dir, options)
    outcome = run_sweep_outcome(fn, param_sets, options=merged)
    if outcome.failures:
        if resolve_strict(merged.strict):
            raise SweepPointsFailed(outcome)
        print(outcome.failure_report(), file=sys.stderr, flush=True)
    return outcome.rows


__all__ = ["STRICT_ENV", "SweepOptions", "default_processes",
           "resolve_strict", "run_sweep", "run_sweep_outcome"]
