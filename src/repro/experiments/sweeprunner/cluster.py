"""Multi-host sharded sweep execution: fenced leases, liveness, stealing.

N driver processes — each with its own **host identity** — cooperate on
one sweep over a shared cache directory.  The directory is the entire
coordination medium; there is no server, no lock manager, and no RPC,
only four primitives with crash-safe semantics:

* **Fenced leases** (``claims/<key>.epoch-<N>``).  Claiming attempt N of
  a key means winning the ``O_CREAT|O_EXCL`` creation of its epoch-N
  file — exactly one host can, every loser gets ``FileExistsError`` and
  walks away clean.  The epoch is the fencing token *and* the global
  attempt counter: epochs only grow, so "no key executes more than
  ``1 + max_retries`` times across all hosts" is enforced by refusing to
  mint epochs past the budget, and "a stale host cannot clobber a newer
  attempt" is the O(1) check "does ``epoch-<mine+1>`` exist?" performed
  before any done/failed record or store write lands.
* **Heartbeat liveness** (``hosts/<host>.hb``).  Each driver rewrites its
  heartbeat file (atomic temp + rename) from a daemon thread every
  ``heartbeat_interval`` seconds; a peer whose file mtime is older than
  ``staleness`` is declared dead and its leases become stealable.  The
  ``netsplit`` fault freezes the thread while the host keeps computing —
  the split host's late writes then die on the fencing check.
* **Lease stealing with checkpoint migration**.  Stealing mints the next
  epoch (after a deterministic per-(host, key) stagger that the
  ``steal-race`` fault removes, forcing contenders through the ``O_EXCL``
  race on purpose).  The thief ships the dead host's last durable
  ``.ckpt`` into its own checkpoint shard first, so the resumed execution
  is bit-identical to a same-host resume; the lease journals
  ``checkpoint="migrated"``.  The interrupted attempt is already counted
  — its epoch file exists — exactly as an interrupted one-box lease is.
* **Store federation** (``shards/<host>/``).  Every host writes rows only
  to its own shard; reads merge all shards (plus the flat one-box layout)
  last-writer-wins over *validated* rows, with corrupt entries
  quarantined per shard by the store's standard discipline.

Failed (as opposed to crashed) attempts are *released*, not stolen: the
failing host drops a ``claims/<key>.failed-<N>`` marker, after which any
live host may mint epoch N+1 immediately — cross-host retry without
waiting out a staleness window.  A key whose final epoch carries a failed
marker (or a dead holder) is exhausted everywhere.

One driver per host identity: a host never races itself, so a claim held
by one's own host name is treated as a dead predecessor (the previous
incarnation crashed) and re-claimed through the normal steal path.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.experiments.sweeprunner import checkpoint as checkpoint_module
from repro.experiments.sweeprunner.faults import FaultPlan
from repro.experiments.sweeprunner.store import SweepCache
from repro.experiments.sweeprunner.tasks import SweepTask

#: Host identity override; defaults to ``<hostname>`` (one driver per box).
HOST_ENV = "REPRO_SWEEP_HOST"

#: `acquire` outcomes that are not leases.
BUSY = "busy"
EXHAUSTED = "exhausted"


def resolve_host(explicit: Optional[str] = None) -> str:
    """The driver's host identity: explicit > environment > hostname."""
    host = explicit or os.environ.get(HOST_ENV) or socket.gethostname()
    return str(host)


@dataclass(frozen=True)
class ClusterOptions:
    """Sharding knobs; attach to :class:`..service.SweepOptions.cluster`."""

    #: Host identity; None resolves via REPRO_SWEEP_HOST, then hostname.
    host: Optional[str] = None
    #: Seconds between heartbeat-file rewrites.
    heartbeat_interval: float = 0.5
    #: A host whose heartbeat is older than this is dead (stealable).
    staleness: float = 5.0
    #: Upper bound on the deterministic per-(host, key) steal stagger.
    steal_stagger: float = 0.5
    #: How often a host re-polls keys other hosts are working on.
    poll_interval: float = 0.2


@dataclass(frozen=True)
class Lease:
    """A won claim: the fencing token plus the execution's provenance."""

    key: str
    epoch: int
    provenance: str  # fresh | resume | migrated


class FederatedStore(SweepCache):
    """Per-host store shard under a shared root, merged on read.

    Writes land only in ``<root>/shards/<host>/`` (single writer per
    shard, same atomic temp-rename discipline as ever); loads probe every
    shard plus the flat one-box layout, newest file first, and return the
    first entry that survives validation — last-writer-wins restricted to
    validated rows, with corrupt candidates quarantined in place.
    """

    def __init__(self, root: Path, host: str, fsync: bool = False) -> None:
        root = Path(root)
        super().__init__(root / "shards" / host, fsync=fsync)
        self.root = root

    def _candidates(self, name: str):
        paths = [self.directory / name, self.root / name]
        shards = self.root / "shards"
        try:
            for shard in shards.iterdir():
                if shard != self.directory:
                    paths.append(shard / name)
        except OSError:
            pass
        stamped = []
        for path in paths:
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue
        stamped.sort(key=lambda item: item[0], reverse=True)
        return [path for _, path in stamped]

    def load(self, task: SweepTask) -> Optional[Dict[str, Any]]:
        for path in self._candidates(f"{task.cache_key()}.json"):
            row = self._read_validated(path)
            if row is not None:
                self.hits += 1
                return row
        self.misses += 1
        return None


class ShardCoordinator:
    """One host's handle on the shared claim/heartbeat/checkpoint state."""

    def __init__(self, root: Path, host: str, max_leases: int,
                 options: ClusterOptions,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.root = Path(root)
        self.host = host
        self.max_leases = max(1, max_leases)
        self.options = options
        self.fault_plan = fault_plan
        self.claims_dir = self.root / "claims"
        self.hosts_dir = self.root / "hosts"
        self.claims_dir.mkdir(parents=True, exist_ok=True)
        self.hosts_dir.mkdir(parents=True, exist_ok=True)
        self.steals = 0
        self.migrations = 0
        self._epoch_cache: Dict[str, int] = {}
        self._dead_since: Dict[Tuple[str, int], float] = {}
        self._suppressed = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- checkpoint shards ------------------------------------------------

    def checkpoint_dir(self, host: Optional[str] = None) -> Path:
        return self.root / "checkpoints" / (host or self.host)

    # -- heartbeats -------------------------------------------------------

    def start(self) -> None:
        """First heartbeat (synchronous — liveness precedes any claim),
        then the beat thread."""
        self._beat()
        self._thread = threading.Thread(
            target=self._beat_loop, name=f"sweep-heartbeat-{self.host}",
            daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _beat_loop(self) -> None:
        interval = max(self.options.heartbeat_interval, 0.05)
        while not self._stop.wait(interval):
            self._beat()

    def _beat(self) -> None:
        with self._lock:
            if self._suppressed:
                return  # netsplit: computing, but silent to peers
        path = self.hosts_dir / f"{self.host}.hb"
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        body = json.dumps({"host": self.host, "pid": os.getpid(),
                           "t": time.time()}).encode("utf-8")
        # os-level I/O end to end: the beat thread must never hold a
        # Python-buffer lock across the worker fork.
        try:
            fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC)
            try:
                os.write(fd, body)
            finally:
                os.close(fd)
            os.replace(tmp, path)
        except OSError:
            pass  # a missed beat is survivable; a crashed beat thread not

    def suppress_heartbeats(self) -> None:
        """Enter a (possibly nested) netsplit: stop advertising liveness."""
        with self._lock:
            self._suppressed += 1

    def resume_heartbeats(self) -> None:
        with self._lock:
            self._suppressed = max(0, self._suppressed - 1)
            resumed = self._suppressed == 0
        if resumed:
            self._beat()

    def host_alive(self, host: str) -> bool:
        try:
            mtime = (self.hosts_dir / f"{host}.hb").stat().st_mtime
        except OSError:
            return False  # never started, or cleaned up: not alive
        return time.time() - mtime <= self.options.staleness

    # -- claims -----------------------------------------------------------

    def _claim_path(self, key: str, epoch: int) -> Path:
        return self.claims_dir / f"{key}.epoch-{epoch}"

    def _failed_path(self, key: str, epoch: int) -> Path:
        return self.claims_dir / f"{key}.failed-{epoch}"

    def current_epoch(self, key: str) -> int:
        """Highest minted epoch for ``key`` (0 = never claimed).  Epoch
        files are never removed mid-sweep, so probing upward from the
        cached value is exact and O(new epochs)."""
        epoch = self._epoch_cache.get(key, 0)
        while self._claim_path(key, epoch + 1).exists():
            epoch += 1
        self._epoch_cache[key] = epoch
        return epoch

    def still_holds(self, key: str, epoch: int) -> bool:
        """The fencing check: our lease is current iff nobody minted a
        higher epoch.  Called before any done/failed/store write lands."""
        return not self._claim_path(key, epoch + 1).exists()

    def _try_claim(self, key: str, epoch: int) -> bool:
        path = self._claim_path(key, epoch)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            os.write(fd, json.dumps({
                "host": self.host, "pid": os.getpid(), "t": time.time(),
            }).encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        self._epoch_cache[key] = max(self._epoch_cache.get(key, 0), epoch)
        return True

    def claim_holder(self, key: str, epoch: int) -> Optional[Dict[str, Any]]:
        """The claim file's content, or None while the winner is still
        writing it (created-empty is a visible intermediate state)."""
        try:
            body = self._claim_path(key, epoch).read_text(encoding="utf-8")
            holder = json.loads(body)
        except (OSError, ValueError):
            return None
        return holder if isinstance(holder, dict) else None

    def mark_failed(self, key: str, epoch: int, kind: str,
                    error_type: str = "", message: str = "") -> None:
        """Release a failed lease: epoch N is spent, and any live host may
        mint N+1 without waiting out the staleness window."""
        path = self._failed_path(key, epoch)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            return  # already marked, or unwritable — both survivable
        try:
            os.write(fd, json.dumps({
                "host": self.host, "kind": kind, "error_type": error_type,
                "message": message[:500], "t": time.time(),
            }).encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    def failure_info(self, key: str, epoch: int) -> Optional[Dict[str, Any]]:
        try:
            info = json.loads(
                self._failed_path(key, epoch).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return info if isinstance(info, dict) else None

    # -- stealing ---------------------------------------------------------

    def _steal_delay(self, key: str, epoch: int) -> float:
        """Deterministic per-(host, key) stagger before rushing a steal —
        zero when the fault plan injects ``steal-race`` for the epoch being
        minted, which every candidate host agrees on (the schedule is a
        pure hash), so they all rush the O_EXCL claim at once."""
        if self.fault_plan is not None \
                and self.fault_plan.decide(key, epoch + 1) == "steal-race":
            return 0.0
        digest = hashlib.sha256(
            f"steal:{self.host}:{key}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return self.options.steal_stagger * unit

    def _migrate_checkpoint(self, key: str, from_host: str) -> bool:
        """Ship the dead host's last durable ``.ckpt`` into our shard.

        A plain byte copy: the snapshot envelope is digest-checked at
        restore time, so a torn source just means "fresh start" later,
        never a wrong row.  Returns True when a checkpoint was migrated.
        """
        if from_host == self.host:
            return False  # our own shard already holds it: a plain resume
        source = checkpoint_module.checkpoint_file(
            self.checkpoint_dir(from_host), key)
        try:
            body = source.read_bytes()
        except OSError:
            return False
        target_dir = self.checkpoint_dir()
        target = checkpoint_module.checkpoint_file(target_dir, key)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.migrate.tmp")
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(body)
            os.replace(tmp, target)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.migrations += 1
        return True

    def _provenance(self, key: str, migrated: bool) -> str:
        if migrated:
            return "migrated"
        own = checkpoint_module.checkpoint_file(self.checkpoint_dir(), key)
        return "resume" if own.exists() else "fresh"

    # -- the acquire protocol --------------------------------------------

    def acquire(self, key: str):
        """Try to lease ``key``: a :class:`Lease`, ``BUSY`` (someone live
        holds it, or we lost a race — poll again later), or ``EXHAUSTED``
        (the attempt budget is spent across all hosts)."""
        epoch = self.current_epoch(key)
        if epoch == 0:
            if self._try_claim(key, 1):
                return Lease(key, 1, self._provenance(key, migrated=False))
            return BUSY
        released = self._failed_path(key, epoch).exists()
        holder_host: Optional[str] = None
        if not released:
            holder = self.claim_holder(key, epoch)
            if holder is not None:
                holder_host = str(holder.get("host", ""))
            else:
                # Torn claim: the winner is still writing its identity — or
                # died between create and write.  Fresh → wait; older than
                # the staleness window → an anonymous dead holder.
                try:
                    age = time.time() - \
                        self._claim_path(key, epoch).stat().st_mtime
                except OSError:
                    age = 0.0
                if age <= self.options.staleness:
                    return BUSY
            if holder_host is not None and holder_host != self.host \
                    and self.host_alive(holder_host):
                self._dead_since.pop((key, epoch), None)
                return BUSY
        if epoch >= self.max_leases:
            return EXHAUSTED
        if not released and holder_host != self.host:
            # Dead peer: stagger the rush unless steal-race removes it.
            # (Our own host's prior incarnation is re-claimed without one —
            # a host never races itself.)
            first = self._dead_since.setdefault(
                (key, epoch), time.monotonic())
            if time.monotonic() - first < self._steal_delay(key, epoch):
                return BUSY
        if not self._try_claim(key, epoch + 1):
            return BUSY  # the clean loser of a contended steal
        self._dead_since.pop((key, epoch), None)
        if released:
            # A released (failed) lease is re-claimed, not stolen; any
            # checkpoint in our own shard still counts as a resume.
            return Lease(key, epoch + 1,
                         self._provenance(key, migrated=False))
        if holder_host and holder_host != self.host:
            self.steals += 1
        migrated = bool(holder_host) and self._migrate_checkpoint(
            key, holder_host)
        return Lease(key, epoch + 1, self._provenance(key, migrated))


__all__ = [
    "BUSY", "EXHAUSTED", "ClusterOptions", "FederatedStore", "HOST_ENV",
    "Lease", "ShardCoordinator", "resolve_host",
]
