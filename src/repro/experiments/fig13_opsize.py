"""Figure 13: impact of NDA operation type and operand size.

Every Table I operation is run as the NDA workload against the most
memory-intensive mix (mix1) with next-rank prediction, for three operand
sizes — small (8 KiB/rank), medium (128 KiB/rank), large (8 MiB/rank) — plus
small with asynchronous launches.  The paper's takeaways: performance is
inversely related to write intensity; short operations suffer launch overhead
and load imbalance; asynchronous launch recovers most of that loss.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_WARMUP,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.nda.isa import NdaOpcode, OPCODE_TRAITS

#: Operand sizes in bytes per rank, as named in the paper.
SIZE_CLASSES: Dict[str, int] = {
    "small": 8 * 1024,
    "medium": 128 * 1024,
    "large": 8 * 1024 * 1024,
}

ALL_OPERATIONS: Tuple[NdaOpcode, ...] = (
    NdaOpcode.AXPBY, NdaOpcode.AXPBYPCZ, NdaOpcode.AXPY, NdaOpcode.COPY,
    NdaOpcode.DOT, NdaOpcode.GEMV, NdaOpcode.NRM2, NdaOpcode.SCAL,
)

QUICK_OPERATIONS: Tuple[NdaOpcode, ...] = (
    NdaOpcode.COPY, NdaOpcode.DOT, NdaOpcode.AXPY, NdaOpcode.GEMV,
)

QUICK_SIZES: Tuple[str, ...] = ("small", "medium")


def _point(operation: str, size_name: str, async_launch: bool, mix: str,
           cycles: int, warmup: int, gemv_rows: int,
           large_cap_bytes: int) -> Dict[str, object]:
    element_bytes = 4
    opcode = NdaOpcode(operation)
    size_bytes = min(SIZE_CLASSES[size_name], large_cap_bytes) \
        if size_name == "large" else SIZE_CLASSES[size_name]
    if opcode is NdaOpcode.GEMV:
        # GEMV: the number of columns equals the vector size and the
        # number of rows is fixed at 128 (Section VII).
        matrix_columns = max(1, size_bytes // element_bytes)
        elements_per_rank = gemv_rows
    else:
        matrix_columns = 0
        elements_per_rank = max(1, size_bytes // element_bytes)
    system = build_system(AccessMode.BANK_PARTITIONED, mix,
                          throttle="next_rank")
    system.set_nda_workload(
        opcode,
        elements_per_rank=elements_per_rank,
        async_launch=async_launch,
        matrix_columns=matrix_columns,
    )
    result = system.run(cycles=cycles, warmup=warmup)
    label = f"{size_name}+async" if async_launch else size_name
    return {
        "operation": opcode.value,
        "size": label,
        "write_intensity": OPCODE_TRAITS[opcode].write_intensity,
        "host_ipc": result.host_ipc,
        "nda_bw_utilization": result.nda_bw_utilization,
        "idealized_bw_utilization": result.idealized_bw_utilization,
        "nda_instructions": result.nda_instructions_completed,
    }


def run_operation_size_sweep(operations: Sequence[NdaOpcode] = QUICK_OPERATIONS,
                             sizes: Sequence[str] = QUICK_SIZES,
                             include_async_small: bool = True,
                             mix: str = "mix1",
                             cycles: int = DEFAULT_CYCLES,
                             warmup: int = DEFAULT_WARMUP,
                             gemv_rows: int = 128,
                             large_cap_bytes: int = 1 << 20,
                             processes: Optional[int] = None,
                             cache_dir: Optional[str] = None,
                             options: Optional[SweepOptions] = None,
                             ) -> List[Dict[str, object]]:
    """One row per (operation, size class [, async]).

    ``large_cap_bytes`` caps the "large" class so a full sweep finishes in
    reasonable wall-clock time; pass ``8 * 1024 * 1024`` to match the paper's
    size exactly.
    """
    cases: List[Tuple[str, bool]] = [(size, False) for size in sizes]
    if include_async_small:
        cases.append(("small", True))
    params = [
        {"operation": opcode.value, "size_name": size_name,
         "async_launch": async_launch, "mix": mix, "cycles": cycles,
         "warmup": warmup, "gemv_rows": gemv_rows,
         "large_cap_bytes": large_cap_bytes}
        for opcode in operations
        for size_name, async_launch in cases
    ]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def write_intensity_correlation(rows: Sequence[Dict[str, object]],
                                size: str = "medium") -> float:
    """Spearman-style sign check: does NDA utilization fall as write intensity rises?

    Returns the fraction of operation pairs ordered consistently with the
    paper's takeaway ("performance is inversely related to write intensity").
    """
    points = [(float(r["write_intensity"]), float(r["nda_bw_utilization"]))
              for r in rows if r["size"] == size]
    if len(points) < 2:
        return 1.0
    consistent = 0
    total = 0
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            wi, ui = points[i]
            wj, uj = points[j]
            if wi == wj:
                continue
            total += 1
            if (wi < wj and ui >= uj) or (wi > wj and ui <= uj):
                consistent += 1
    return consistent / total if total else 1.0


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_operation_size_sweep()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
