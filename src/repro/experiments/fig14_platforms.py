"""Cross-platform scalability: the Figure 14 sweep × memory platform.

The paper evaluates Chopim on one platform (DDR4-2400).  This experiment
re-runs the fig14-style comparison — Chopim (shared ranks, bank
partitioning, next-rank prediction) vs. rank partitioning, DOT and COPY
extremes, baseline and doubled rank counts — on every registered platform
preset, so the concurrency argument can be read as a function of memory
technology: platforms with more internal bandwidth per rank (HBM-class)
amplify the NDA side, platforms with slower analog cores (LPDDR-class)
stretch the idle windows Chopim exploits.

Bandwidth columns are reported both absolutely (GB/s) and normalized to the
platform's peak rank-internal bandwidth, which is the cross-platform
comparable number.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_ELEMENTS_PER_RANK,
    DEFAULT_WARMUP,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.fig14_scaling import SCHEMES
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.nda.isa import NdaOpcode
from repro.platform import platform_names

#: Rank configurations swept per platform (fig14's baseline and doubled
#: points).  Platforms whose preset has a different native shape are still
#: swept at these counts — the comparison is per (channels, ranks) point.
RANK_CONFIGS: Tuple[Tuple[int, int], ...] = ((2, 2), (2, 4))

#: The microbenchmark extremes (read-dominated and write-dominated).
WORKLOADS: Tuple[str, ...] = ("dot", "copy")


def _point(platform: str, channels: int, ranks: int, scheme: str, mode: str,
           workload: str, mix: str, cycles: int, warmup: int,
           elements_per_rank: int, engine: str = "event") -> Dict[str, object]:
    system = build_system(AccessMode(mode), mix, channels=channels,
                          ranks_per_channel=ranks, throttle="next_rank",
                          engine=engine, platform=platform)
    system.set_nda_workload(NdaOpcode(workload),
                            elements_per_rank=elements_per_rank)
    result = system.run(cycles=cycles, warmup=warmup)
    peak_rank = system.config.org.peak_rank_internal_bandwidth_gbs
    total_ranks = system.config.org.total_ranks
    return {
        "platform": platform,
        "channels": channels,
        "ranks_per_channel": ranks,
        "scheme": scheme,
        "workload": workload,
        "host_ipc": result.host_ipc,
        "nda_bandwidth_gbs": result.nda_bandwidth_gbs,
        "nda_bw_utilization": result.nda_bw_utilization,
        "nda_bw_of_peak": (result.nda_bandwidth_gbs
                           / max(peak_rank * total_ranks, 1e-9)),
    }


def sweep_params(platforms: Optional[Sequence[str]] = None,
                 rank_configs: Sequence[Tuple[int, int]] = RANK_CONFIGS,
                 workloads: Sequence[str] = WORKLOADS,
                 mix: str = "mix1",
                 cycles: int = DEFAULT_CYCLES,
                 warmup: int = DEFAULT_WARMUP,
                 elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                 engine: str = "event") -> List[Dict[str, object]]:
    """Parameter sets of the cross-platform sweep (shared with benchmarks)."""
    names = list(platforms) if platforms is not None else platform_names()
    return [
        {"platform": name, "channels": channels, "ranks": ranks,
         "scheme": scheme_name, "mode": mode.value, "workload": workload,
         "mix": mix, "cycles": cycles, "warmup": warmup,
         "elements_per_rank": elements_per_rank, "engine": engine}
        for name in names
        for channels, ranks in rank_configs
        for scheme_name, mode in SCHEMES
        for workload in workloads
        if _supports(name, mode, ranks)
    ]


def _supports(platform: str, mode: AccessMode, ranks: int) -> bool:
    """Whether the (platform, scheme, rank) point is constructible.

    Rank partitioning needs at least two ranks per channel to split; the
    sweep rescales every platform to the requested rank count, so only the
    single-rank request is excluded.
    """
    if mode is AccessMode.RANK_PARTITIONED and ranks < 2:
        return False
    return True


def run_platform_comparison(platforms: Optional[Sequence[str]] = None,
                            rank_configs: Sequence[Tuple[int, int]] = RANK_CONFIGS,
                            workloads: Sequence[str] = WORKLOADS,
                            mix: str = "mix1",
                            cycles: int = DEFAULT_CYCLES,
                            warmup: int = DEFAULT_WARMUP,
                            elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                            processes: Optional[int] = None,
                            cache_dir: Optional[str] = None,
                            options: Optional[SweepOptions] = None,
                            ) -> List[Dict[str, object]]:
    """One row per (platform, rank config, scheme, workload)."""
    params = sweep_params(platforms, rank_configs, workloads, mix, cycles,
                          warmup, elements_per_rank)
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def chopim_advantage_by_platform(rows: Sequence[Dict[str, object]],
                                 ) -> Dict[str, float]:
    """Chopim's NDA bandwidth over rank partitioning, per platform/workload."""
    table: Dict[Tuple[str, str, str], Dict[str, float]] = {}
    for row in rows:
        key = (str(row["platform"]),
               f"{row['channels']}x{row['ranks_per_channel']}",
               str(row["workload"]))
        table.setdefault(key, {})[str(row["scheme"])] = float(
            row["nda_bandwidth_gbs"])
    return {
        f"{platform}:{cfg}:{wl}": (values["chopim"]
                                   / max(1e-9, values["rank_partitioning"]))
        for (platform, cfg, wl), values in table.items()
        if "chopim" in values and "rank_partitioning" in values
    }


def platform_scaling_factors(rows: Sequence[Dict[str, object]],
                             scheme: str = "chopim",
                             workload: str = "dot") -> Dict[str, float]:
    """Doubled-rank over baseline-rank NDA bandwidth, per platform."""
    by_platform: Dict[str, Dict[str, float]] = {}
    for row in rows:
        if row["scheme"] != scheme or row["workload"] != workload:
            continue
        cfg = f"{row['channels']}x{row['ranks_per_channel']}"
        by_platform.setdefault(str(row["platform"]), {})[cfg] = float(
            row["nda_bandwidth_gbs"])
    return {
        platform: values["2x4"] / values["2x2"]
        for platform, values in by_platform.items()
        if values.get("2x2") and "2x4" in values
    }


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_platform_comparison()
    print(format_table(rows))
    print()
    for key, ratio in sorted(chopim_advantage_by_platform(rows).items()):
        print(f"{key}: Chopim / rank-partitioning NDA bandwidth = {ratio:.2f}x")
    print()
    for platform, factor in platform_scaling_factors(rows).items():
        print(f"{platform}: 2x4 over 2x2 NDA bandwidth = {factor:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
