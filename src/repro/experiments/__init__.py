"""Experiment harnesses: one module per paper figure/table.

Every module exposes a ``run_*`` function that returns plain data structures
(lists of row dicts) mirroring the series plotted in the paper, plus a
``format_table`` helper that renders them for the terminal.  The benchmark
suite under ``benchmarks/`` regenerates every figure/table through these
entry points; ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from repro.experiments import common
from repro.experiments.fig02_idle import run_idle_histogram
from repro.experiments.fig10_coarse import run_coarse_grain_sweep
from repro.experiments.fig11_bankpart import run_bank_partitioning
from repro.experiments.fig12_throttle import run_write_throttling
from repro.experiments.fig13_opsize import run_operation_size_sweep
from repro.experiments.fig14_platforms import run_platform_comparison
from repro.experiments.fig14_scaling import run_scalability_comparison
from repro.experiments.fig15_svrg import run_svrg_convergence, run_svrg_scaling
from repro.experiments.power_table import run_power_analysis

__all__ = [
    "common",
    "run_idle_histogram",
    "run_coarse_grain_sweep",
    "run_bank_partitioning",
    "run_write_throttling",
    "run_operation_size_sweep",
    "run_scalability_comparison",
    "run_platform_comparison",
    "run_svrg_convergence",
    "run_svrg_scaling",
    "run_power_analysis",
]
