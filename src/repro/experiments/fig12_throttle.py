"""Figure 12: stochastic issue and next-rank prediction impact.

Host IPC and NDA bandwidth utilization while the NDAs run the most
write-intensive operation (COPY) under four write-throttling policies:
issue-if-idle (no throttling), stochastic issue with probabilities 1/4 and
1/16, and next-rank prediction.  The paper's takeaways: throttling NDA writes
protects the host from read/write-turnaround interference; next-rank
prediction is robust without tuning, stochastic issue extends the trade-off
range without extra signaling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_ELEMENTS_PER_RANK,
    DEFAULT_WARMUP,
    QUICK_MIXES,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.nda.isa import NdaOpcode

#: (label, throttle policy name, stochastic probability)
POLICIES: Tuple[Tuple[str, str, float], ...] = (
    ("stochastic_1_16", "stochastic", 1.0 / 16.0),
    ("stochastic_1_4", "stochastic", 1.0 / 4.0),
    ("predict_next_rank", "next_rank", 0.0),
    ("issue_if_idle", "issue_if_idle", 0.0),
)


def _point(mix: str, label: str, policy: str, probability: float,
           operation: str, cycles: int, warmup: int,
           elements_per_rank: int) -> Dict[str, object]:
    cores = 8 if mix == "mix0" else None
    system = build_system(AccessMode.BANK_PARTITIONED, mix,
                          throttle=policy,
                          stochastic_probability=probability or 0.25,
                          cores=cores)
    system.set_nda_workload(NdaOpcode(operation),
                            elements_per_rank=elements_per_rank)
    result = system.run(cycles=cycles, warmup=warmup)
    return {
        "mix": mix,
        "policy": label,
        "host_ipc": result.host_ipc,
        "nda_bw_utilization": result.nda_bw_utilization,
        "idealized_bw_utilization": result.idealized_bw_utilization,
    }


def run_write_throttling(mixes: Optional[Sequence[str]] = None,
                         cycles: int = DEFAULT_CYCLES,
                         warmup: int = DEFAULT_WARMUP,
                         elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                         opcode: NdaOpcode = NdaOpcode.COPY,
                         processes: Optional[int] = None,
                         cache_dir: Optional[str] = None,
                         options: Optional[SweepOptions] = None,
                         ) -> List[Dict[str, object]]:
    """One row per (mix, throttling policy)."""
    mixes = list(mixes) if mixes is not None else QUICK_MIXES
    params = [
        {"mix": mix, "label": label, "policy": policy,
         "probability": probability, "operation": opcode.value,
         "cycles": cycles, "warmup": warmup,
         "elements_per_rank": elements_per_rank}
        for mix in mixes
        for label, policy, probability in POLICIES
    ]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def tradeoff_summary(rows: Sequence[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Average host IPC and NDA utilization per policy over all mixes."""
    grouped: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        grouped.setdefault(str(row["policy"]), []).append(row)
    summary: Dict[str, Dict[str, float]] = {}
    for policy, policy_rows in grouped.items():
        n = len(policy_rows)
        summary[policy] = {
            "host_ipc": sum(float(r["host_ipc"]) for r in policy_rows) / n,
            "nda_bw_utilization": sum(float(r["nda_bw_utilization"])
                                      for r in policy_rows) / n,
        }
    return summary


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_write_throttling()
    print(format_table(rows))
    print()
    for policy, values in tradeoff_summary(rows).items():
        print(f"{policy:20s} host_ipc={values['host_ipc']:.2f} "
              f"nda_util={values['nda_bw_utilization']:.3f}")


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
