"""Figure 14: scalability of Chopim vs. rank partitioning.

For the baseline 2-channel x 2-rank system and a doubled 2 x 4 system, the
host IPC and NDA bandwidth achieved by Chopim (shared ranks, bank
partitioning, next-rank prediction) and by rank partitioning (half the ranks
dedicated to NDAs), for the DOT and COPY extremes and the three application
workloads (SVRG average gradient, CG, streamcluster).  The paper's takeaways:
Chopim outperforms rank partitioning at equal rank count and scales better,
because brief idle periods grow with rank count and Chopim can exploit them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.workloads import application_kernel_sequence
from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_ELEMENTS_PER_RANK,
    DEFAULT_WARMUP,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.nda.isa import NdaOpcode

FULL_RANK_CONFIGS: Tuple[Tuple[int, int], ...] = ((2, 2), (2, 4))
FULL_WORKLOADS: Tuple[str, ...] = ("dot", "copy", "svrg", "cg", "sc")
QUICK_WORKLOADS: Tuple[str, ...] = ("dot", "copy", "svrg")

SCHEMES: Tuple[Tuple[str, AccessMode], ...] = (
    ("chopim", AccessMode.BANK_PARTITIONED),
    ("rank_partitioning", AccessMode.RANK_PARTITIONED),
)


def _configure_workload(system, workload: str, elements_per_rank: int) -> None:
    if workload in ("dot", "copy"):
        system.set_nda_workload(NdaOpcode(workload),
                                elements_per_rank=elements_per_rank)
    else:
        system.set_nda_workload_sequence(
            application_kernel_sequence(workload, elements_per_rank)
        )


def _point(channels: int, ranks: int, scheme: str, mode: str, workload: str,
           mix: str, cycles: int, warmup: int, elements_per_rank: int,
           engine: str = "event") -> Dict[str, object]:
    system = build_system(AccessMode(mode), mix, channels=channels,
                          ranks_per_channel=ranks, throttle="next_rank",
                          engine=engine)
    _configure_workload(system, workload, elements_per_rank)
    result = system.run(cycles=cycles, warmup=warmup)
    return {
        "channels": channels,
        "ranks_per_channel": ranks,
        "scheme": scheme,
        "workload": workload,
        "host_ipc": result.host_ipc,
        "nda_bandwidth_gbs": result.nda_bandwidth_gbs,
        "nda_bw_utilization": result.nda_bw_utilization,
    }


def sweep_params(rank_configs: Sequence[Tuple[int, int]] = FULL_RANK_CONFIGS,
                 workloads: Sequence[str] = QUICK_WORKLOADS,
                 mix: str = "mix1",
                 cycles: int = DEFAULT_CYCLES,
                 warmup: int = DEFAULT_WARMUP,
                 elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                 engine: str = "event") -> List[Dict[str, object]]:
    """The parameter sets of the figure sweep (shared with the benchmark)."""
    return [
        {"channels": channels, "ranks": ranks, "scheme": scheme_name,
         "mode": mode.value, "workload": workload, "mix": mix,
         "cycles": cycles, "warmup": warmup,
         "elements_per_rank": elements_per_rank, "engine": engine}
        for channels, ranks in rank_configs
        for scheme_name, mode in SCHEMES
        for workload in workloads
    ]


def run_scalability_comparison(rank_configs: Sequence[Tuple[int, int]] = FULL_RANK_CONFIGS,
                               workloads: Sequence[str] = QUICK_WORKLOADS,
                               mix: str = "mix1",
                               cycles: int = DEFAULT_CYCLES,
                               warmup: int = DEFAULT_WARMUP,
                               elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                               processes: Optional[int] = None,
                               cache_dir: Optional[str] = None,
                               options: Optional[SweepOptions] = None,
                               ) -> List[Dict[str, object]]:
    """One row per (rank config, scheme, workload)."""
    params = sweep_params(rank_configs, workloads, mix, cycles, warmup,
                          elements_per_rank)
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def chopim_advantage(rows: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """NDA bandwidth of Chopim relative to rank partitioning, per (config, workload)."""
    table: Dict[Tuple[str, str], Dict[str, float]] = {}
    for row in rows:
        key = (f"{row['channels']}x{row['ranks_per_channel']}", str(row["workload"]))
        table.setdefault(key, {})[str(row["scheme"])] = float(row["nda_bandwidth_gbs"])
    return {
        f"{cfg}:{wl}": values["chopim"] / max(1e-9, values["rank_partitioning"])
        for (cfg, wl), values in table.items()
        if "chopim" in values and "rank_partitioning" in values
    }


def scaling_factor(rows: Sequence[Dict[str, object]], scheme: str,
                   workload: str = "dot") -> Optional[float]:
    """NDA bandwidth ratio of the doubled-rank config over the baseline config."""
    by_config: Dict[str, float] = {}
    for row in rows:
        if row["scheme"] != scheme or row["workload"] != workload:
            continue
        key = f"{row['channels']}x{row['ranks_per_channel']}"
        by_config[key] = float(row["nda_bandwidth_gbs"])
    if "2x2" in by_config and "2x4" in by_config and by_config["2x2"] > 0:
        return by_config["2x4"] / by_config["2x2"]
    return None


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_scalability_comparison()
    print(format_table(rows))
    print()
    for key, ratio in chopim_advantage(rows).items():
        print(f"{key}: Chopim / rank-partitioning NDA bandwidth = {ratio:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
