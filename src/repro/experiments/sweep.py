"""Parallel sweep runner with result caching — facade over the sweep service.

Every ``experiments/fig*.py`` entry point is a sweep over configuration
points (mode x mix x rank count x workload x ...), and each point is an
independent simulation.  This module keeps the historical import surface
(``run_sweep``, ``SweepCache``, ``SweepTask``, ...) while the
implementation lives in :mod:`repro.experiments.sweeprunner`:

* **Parallelism** — points run on supervised worker processes (one per CPU
  by default).  Unlike the old ``pool.map``, a worker crash, OOM-kill or
  hang no longer aborts the sweep: the worker is respawned and the point
  retried (bounded, with exponential backoff), with wall-clock timeouts
  cutting hung points.
* **Caching** — each point's result row is keyed by the point function,
  its parameters, the simulation environment (``REPRO_PLATFORM`` /
  ``REPRO_BACKEND`` / ``REPRO_DISABLE_BURST``) and a content fingerprint
  of the simulator source, then stored as JSON in a content-addressed
  store; re-running a figure with unchanged parameters replays instantly.
  Set ``REPRO_SWEEP_CACHE`` (or pass ``cache_dir``) to enable it.
* **Durability** — with a cache directory configured, every sweep journals
  to an append-only run ledger (fsynced at lease and completion), so a
  ``kill -9`` of driver or worker resumes exactly where it left off and no
  point ever executes more than ``1 + max_retries`` times.
* **Graceful degradation** — points that exhaust their retries surface in
  a structured failure report; strict mode (the default, or
  ``REPRO_SWEEP_STRICT=1`` in CI) raises :class:`SweepPointsFailed`
  instead of returning partial rows silently.

Point functions must be module-level callables taking keyword arguments
and returning a JSON-serializable dict; the fig modules define one
``_point`` function each and build their rows with :func:`run_sweep`.
Pass a :class:`SweepOptions` for the full service surface (retries,
timeouts, journaling, deterministic fault injection, progress/ETA lines).
"""

from __future__ import annotations

from repro.experiments.sweeprunner import (
    CACHE_ENV_VAR,
    CACHE_VERSION,
    FAULT_KINDS_ENV,
    FAULT_RATE_ENV,
    FAULT_SEED_ENV,
    PROGRESS_ENV,
    STRICT_ENV,
    FaultPlan,
    RunLedger,
    SweepCache,
    SweepOptions,
    SweepOutcome,
    SweepPointsFailed,
    SweepStats,
    SweepTask,
    TaskFailure,
    code_fingerprint,
    default_cache_dir,
    default_processes,
    environment_axes,
    run_sweep,
    run_sweep_outcome,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "FAULT_KINDS_ENV",
    "FAULT_RATE_ENV",
    "FAULT_SEED_ENV",
    "PROGRESS_ENV",
    "STRICT_ENV",
    "FaultPlan",
    "RunLedger",
    "SweepCache",
    "SweepOptions",
    "SweepOutcome",
    "SweepPointsFailed",
    "SweepStats",
    "SweepTask",
    "TaskFailure",
    "code_fingerprint",
    "default_cache_dir",
    "default_processes",
    "environment_axes",
    "run_sweep",
    "run_sweep_outcome",
]
