"""Parallel sweep runner with result caching for figure regeneration.

Every ``experiments/fig*.py`` entry point is a sweep over configuration
points (mode x mix x rank count x workload x ...), and each point is an
independent simulation.  This module runs such sweeps through one shared
pipeline:

* **Parallelism** — points are distributed over a ``multiprocessing`` pool
  (one worker per CPU by default), so full-figure regeneration scales with
  the machine instead of running one point at a time.
* **Caching** — each point's result row is keyed by the point function, its
  parameters, the simulation environment (platform preset, execution
  backend, burst escape hatch — the ``REPRO_*`` variables that change
  results or how they are produced) and a content fingerprint of the
  simulator source, then stored as JSON on disk; re-running a figure with
  unchanged parameters replays instantly, while changing ``REPRO_PLATFORM``,
  ``REPRO_BACKEND`` or the simulator code transparently recomputes instead
  of replaying stale rows.  Set the ``REPRO_SWEEP_CACHE`` environment
  variable (or pass ``cache_dir``) to enable it, or set it to an empty
  string to force it off.

Point functions must be module-level callables (picklable by reference)
taking keyword arguments and returning a JSON-serializable dict; the fig
modules define one ``_point`` function each and build their rows with
:func:`run_sweep`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from functools import lru_cache
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Bump when simulator semantics change enough to invalidate cached rows.
#: (Code changes are caught automatically by :func:`code_fingerprint`; this
#: remains as a manual override for semantic changes outside ``src/repro``,
#: e.g. a row-schema change made by an experiment script.)
CACHE_VERSION = 2

#: Environment variable naming the cache directory (empty disables caching).
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"

PointFn = Callable[..., Dict[str, Any]]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash of the simulator package source (``src/repro``).

    Any edit to any module invalidates every cached row: a sweep row is a
    function of (point function, parameters, environment, simulator code),
    and the first three alone produced stale-replay bugs when the simulator
    changed between runs.  Hashing ~100 source files costs a few
    milliseconds once per process — noise against a single sweep point.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def environment_axes() -> Dict[str, str]:
    """The ``REPRO_*`` settings a sweep row depends on.

    ``platform`` and ``backend`` retarget every point wholesale without
    appearing in its parameters, so they must key the cache; the burst
    escape hatch is included because a row computed with the fast path off
    should never masquerade as a default-path row (results are equivalent
    by contract, but a cache hit must not silently hide a divergence the
    equivalence suites would catch).
    """
    return {
        "platform": os.environ.get("REPRO_PLATFORM") or "",
        "backend": os.environ.get("REPRO_BACKEND") or "",
        "disable_burst": os.environ.get("REPRO_DISABLE_BURST") or "",
    }


@dataclass(frozen=True)
class SweepTask:
    """One configuration point: a point function plus its keyword arguments.

    ``environment`` and ``code`` are captured at construction so the cache
    key reflects the state the point will actually run under.
    """

    module: str
    qualname: str
    params: Dict[str, Any]
    environment: Dict[str, str] = field(default_factory=environment_axes)
    code: str = field(default_factory=code_fingerprint)

    def cache_key(self) -> str:
        payload = json.dumps(
            {
                "version": CACHE_VERSION,
                "module": self.module,
                "qualname": self.qualname,
                "params": self.params,
                "environment": self.environment,
                "code": self.code,
            },
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _make_task(fn: PointFn, params: Dict[str, Any]) -> SweepTask:
    return SweepTask(module=fn.__module__, qualname=fn.__qualname__,
                     params=dict(params))


def _invoke(fn: PointFn, params: Dict[str, Any]) -> Dict[str, Any]:
    row = fn(**params)
    if not isinstance(row, dict):
        raise TypeError(
            f"sweep point {fn.__qualname__} returned {type(row).__name__}; "
            "point functions must return a dict row"
        )
    return row


def _worker(payload):  # pragma: no cover - exercised via the pool
    fn, params = payload
    return _invoke(fn, params)


class SweepCache:
    """JSON-file cache of sweep rows, keyed by task fingerprint."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, task: SweepTask) -> Path:
        return self.directory / f"{task.cache_key()}.json"

    def load(self, task: SweepTask) -> Optional[Dict[str, Any]]:
        path = self._path(task)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("row")

    def store(self, task: SweepTask, row: Dict[str, Any]) -> None:
        path = self._path(task)
        tmp = path.with_suffix(".tmp")
        entry = {
            "module": task.module,
            "qualname": task.qualname,
            "params": task.params,
            "environment": task.environment,
            "code": task.code,
            "row": row,
        }
        try:
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(entry, handle, default=str)
            tmp.replace(path)
        except OSError:  # caching is best-effort; never fail the sweep
            tmp.unlink(missing_ok=True)


def default_cache_dir() -> Optional[Path]:
    """The cache directory from the environment, or None when disabled."""
    value = os.environ.get(CACHE_ENV_VAR)
    if not value:
        return None
    return Path(value)


def default_processes(task_count: int) -> int:
    """Worker count: one per CPU, capped by the number of points."""
    cpus = os.cpu_count() or 1
    return max(1, min(cpus, task_count))


def run_sweep(fn: PointFn, param_sets: Sequence[Dict[str, Any]],
              processes: Optional[int] = None,
              cache_dir: Optional[os.PathLike] = None,
              ) -> List[Dict[str, Any]]:
    """Run ``fn(**params)`` for every parameter set; returns rows in order.

    ``processes`` defaults to one worker per CPU (serial in-process when the
    machine has a single CPU or only one point, avoiding pool overhead).
    ``cache_dir`` overrides the ``REPRO_SWEEP_CACHE`` environment variable.
    """
    param_sets = [dict(p) for p in param_sets]
    if not param_sets:
        return []

    cache: Optional[SweepCache] = None
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    if directory is not None:
        try:
            cache = SweepCache(directory)
        except OSError as exc:  # caching is best-effort; never fail the sweep
            print(f"sweep cache disabled ({directory}: {exc})", file=sys.stderr)

    tasks = [_make_task(fn, params) for params in param_sets]
    rows: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    pending: List[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            row = cache.load(task)
            if row is not None:
                rows[index] = row
                continue
        pending.append(index)

    if pending:
        workers = (default_processes(len(pending))
                   if processes is None else max(1, processes))
        if workers <= 1 or len(pending) <= 1:
            for index in pending:
                rows[index] = _invoke(fn, tasks[index].params)
        else:
            # fork shares the already-imported simulator with the workers;
            # fall back to spawn on platforms without it.
            method = "fork" if sys.platform != "win32" else "spawn"
            with get_context(method).Pool(processes=workers) as pool:
                payloads = [(fn, tasks[index].params) for index in pending]
                for index, row in zip(pending, pool.map(_worker, payloads)):
                    rows[index] = row
        if cache is not None:
            for index in pending:
                cache.store(tasks[index], rows[index])

    return [row for row in rows if row is not None]


__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_VERSION",
    "SweepCache",
    "SweepTask",
    "code_fingerprint",
    "default_cache_dir",
    "default_processes",
    "environment_axes",
    "run_sweep",
]
