"""Figure 2: rank idle-time breakdown vs. idleness granularity.

For each application mix running host-only, the fraction of each rank's time
spent busy serving the host versus idle, with idle periods bucketed by
duration (1-10, 10-100, 100-250, 250-500, 500-1000, 1000+ cycles).  The
paper's takeaway — most idle periods are shorter than 250 cycles, so
fine-grain access interleaving is required — is what the reproduction checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_WARMUP,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.host.mixes import mix_names
from repro.utils.histogram import IDLE_BUCKET_LABELS


def _point(mix: str, cycles: int, warmup: int) -> Dict[str, object]:
    """One sweep point: a host-only run of one mix, reduced to its figure row."""
    cores = 8 if mix == "mix0" else None
    system = build_system(AccessMode.HOST_ONLY, mix, cores=cores)
    result = system.run(cycles=cycles, warmup=warmup)
    # Average the per-rank breakdowns (the paper plots one bar per mix).
    buckets = {"Busy": 0.0, **{label: 0.0 for label in IDLE_BUCKET_LABELS}}
    per_rank = result.rank_idle_breakdown
    for breakdown in per_rank.values():
        for key in buckets:
            buckets[key] += breakdown.get(key, 0.0)
    count = max(1, len(per_rank))
    row: Dict[str, object] = {"mix": mix}
    row.update({key: value / count for key, value in buckets.items()})
    row["short_idle_fraction"] = short_idle_fraction(row)
    return row


def run_idle_histogram(mixes: Optional[Sequence[str]] = None,
                       cycles: int = DEFAULT_CYCLES,
                       warmup: int = DEFAULT_WARMUP,
                       processes: Optional[int] = None,
                       cache_dir: Optional[str] = None,
                       options: Optional[SweepOptions] = None,
                       ) -> List[Dict[str, object]]:
    """One row per mix: busy fraction plus per-bucket idle fractions."""
    mixes = list(mixes) if mixes is not None else mix_names()
    params = [{"mix": mix, "cycles": cycles, "warmup": warmup} for mix in mixes]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def short_idle_fraction(row: Dict[str, object], threshold_label: str = "100-250") -> float:
    """Fraction of *idle* time in periods shorter than 250 cycles.

    This is the quantity behind the paper's claim that "the majority of idle
    periods are shorter than 100 cycles with the vast majority under 250".
    """
    idle_labels = list(IDLE_BUCKET_LABELS)
    idle_total = sum(float(row[label]) for label in idle_labels)
    if idle_total <= 0:
        return 0.0
    cutoff = idle_labels.index(threshold_label) + 1
    short = sum(float(row[label]) for label in idle_labels[:cutoff])
    return short / idle_total


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_idle_histogram()
    print(format_table(rows))


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
