"""Figure 11: concurrent access to different memory regions (bank partitioning).

Host IPC and NDA bandwidth utilization for every mix under four
configurations: shared banks vs. bank-partitioned, each accelerating the
read-intensive DOT or the write-intensive COPY, plus the idealized NDA
bandwidth bound (all idle rank bandwidth).  The paper's takeaways: bank
partitioning substantially improves NDA performance (1.5-2x) by restoring
row-buffer locality, and write-intensive NDA work degrades host performance
via read/write turnarounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_ELEMENTS_PER_RANK,
    DEFAULT_WARMUP,
    QUICK_MIXES,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.nda.isa import NdaOpcode

CONFIGURATIONS = (
    ("shared", AccessMode.SHARED),
    ("partitioned", AccessMode.BANK_PARTITIONED),
)
OPERATIONS = (NdaOpcode.DOT, NdaOpcode.COPY)


def _point(mix: str, configuration: str, mode: str, operation: str,
           throttle: str, cycles: int, warmup: int,
           elements_per_rank: int) -> Dict[str, object]:
    cores = 8 if mix == "mix0" else None
    system = build_system(AccessMode(mode), mix, throttle=throttle, cores=cores)
    system.set_nda_workload(NdaOpcode(operation),
                            elements_per_rank=elements_per_rank)
    result = system.run(cycles=cycles, warmup=warmup)
    return {
        "mix": mix,
        "configuration": configuration,
        "operation": operation,
        "host_ipc": result.host_ipc,
        "nda_bw_utilization": result.nda_bw_utilization,
        "idealized_bw_utilization": result.idealized_bw_utilization,
        "nda_row_hit_rate": result.row_hit_rate_nda,
        "host_row_hit_rate": result.row_hit_rate_host,
    }


def run_bank_partitioning(mixes: Optional[Sequence[str]] = None,
                          cycles: int = DEFAULT_CYCLES,
                          warmup: int = DEFAULT_WARMUP,
                          throttle: str = "issue_if_idle",
                          elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                          processes: Optional[int] = None,
                          cache_dir: Optional[str] = None,
                          options: Optional[SweepOptions] = None,
                          ) -> List[Dict[str, object]]:
    """One row per (mix, configuration, operation).

    ``throttle`` defaults to the aggressive issue-if-idle policy so the
    figure isolates the bank-partitioning effect (write throttling is the
    subject of Figure 12).
    """
    mixes = list(mixes) if mixes is not None else QUICK_MIXES
    params = [
        {"mix": mix, "configuration": config_name, "mode": mode.value,
         "operation": opcode.value, "throttle": throttle, "cycles": cycles,
         "warmup": warmup, "elements_per_rank": elements_per_rank}
        for mix in mixes
        for config_name, mode in CONFIGURATIONS
        for opcode in OPERATIONS
    ]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def partitioning_speedup(rows: Sequence[Dict[str, object]],
                         operation: str = "dot") -> Dict[str, float]:
    """Per-mix NDA-utilization gain of partitioned over shared for one op."""
    shared: Dict[str, float] = {}
    partitioned: Dict[str, float] = {}
    for row in rows:
        if row["operation"] != operation:
            continue
        target = shared if row["configuration"] == "shared" else partitioned
        target[str(row["mix"])] = float(row["nda_bw_utilization"])
    return {
        mix: partitioned[mix] / max(1e-9, shared[mix])
        for mix in shared if mix in partitioned
    }


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_bank_partitioning()
    print(format_table(rows))
    print()
    for mix, gain in partitioning_speedup(rows).items():
        print(f"{mix}: bank partitioning NDA gain {gain:.2f}x (DOT)")


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
