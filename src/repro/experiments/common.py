"""Shared experiment plumbing: default cycle budgets and table rendering."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.nda.isa import NdaOpcode

#: Default measured window per configuration point, in DRAM cycles.  Long
#: enough for the memory system to reach steady state; short enough that a
#: full figure regenerates in minutes on a laptop.  Every ``run_*`` function
#: accepts an override.
DEFAULT_CYCLES = 6000

#: Default warm-up cycles excluded from measurement.
DEFAULT_WARMUP = 500

#: The mix subset used by "quick" figure regenerations (spans the highest,
#: a middle and the lowest memory intensity).
QUICK_MIXES = ["mix1", "mix5", "mix8"]

#: Per-rank NDA operand size (elements) used by the microbenchmark figures.
DEFAULT_ELEMENTS_PER_RANK = 1 << 14


def build_system(mode: AccessMode, mix: Optional[str],
                 channels: int = 2, ranks_per_channel: int = 2,
                 throttle: str = "next_rank",
                 stochastic_probability: float = 0.25,
                 config: Optional[SystemConfig] = None,
                 cores: Optional[int] = None,
                 engine: str = "event") -> ChopimSystem:
    """Construct a system for one experiment point.

    ``engine`` selects the simulation driver: the event-driven engine
    (default) fast-forwards over idle cycles; ``"cycle"`` is the
    cycle-by-cycle regression baseline with identical results.
    """
    cfg = config or scaled_config(channels, ranks_per_channel, cores=cores)
    return ChopimSystem(config=cfg, mode=mode, mix=mix, throttle=throttle,
                        stochastic_probability=stochastic_probability,
                        engine=engine)


def run_point(system: ChopimSystem, cycles: int = DEFAULT_CYCLES,
              warmup: int = DEFAULT_WARMUP):
    """Run one configuration point and return its :class:`SimulationResult`."""
    return system.run(cycles=cycles, warmup=warmup)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return "(no data)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        cells = {c: fmt(row.get(c, "")) for c in columns}
        rendered.append(cells)
        for c in columns:
            widths[c] = max(widths[c], len(cells[c]))
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for cells in rendered:
        lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def opcode_by_name(name: str) -> NdaOpcode:
    """Look an NDA opcode up by its lowercase name (``dot``, ``copy``, ...)."""
    try:
        return NdaOpcode(name.lower())
    except ValueError as exc:
        valid = ", ".join(op.value for op in NdaOpcode)
        raise KeyError(f"unknown NDA operation {name!r}; valid: {valid}") from exc
