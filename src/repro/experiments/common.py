"""Shared experiment plumbing: default cycle budgets and table rendering.

Every experiment point is built through :func:`build_system`, which carries
the **platform axis**: pass ``platform="lpddr4-3200"`` (or any name from
:func:`repro.platform.platform_names`), or set the ``REPRO_PLATFORM``
environment variable to retarget every figure sweep wholesale.  Unset, the
paper's DDR4-2400 baseline is used, bit-exactly as before.  The **backend
axis** works the same way: pass ``backend="kernel"`` or set
``REPRO_BACKEND`` to run every point through the vectorized kernel backend
(results are bit-identical by the equivalence contract; only speed
differs).
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.config import SystemConfig, scaled_config
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.experiments.sweeprunner import SweepPointsFailed
from repro.nda.isa import NdaOpcode
from repro.platform import DEFAULT_PLATFORM, platform_config, platform_names

#: Default measured window per configuration point, in DRAM cycles.  Long
#: enough for the memory system to reach steady state; short enough that a
#: full figure regenerates in minutes on a laptop.  Every ``run_*`` function
#: accepts an override.
DEFAULT_CYCLES = 6000

#: Default warm-up cycles excluded from measurement.
DEFAULT_WARMUP = 500

#: The mix subset used by "quick" figure regenerations (spans the highest,
#: a middle and the lowest memory intensity).
QUICK_MIXES = ["mix1", "mix5", "mix8"]

#: Per-rank NDA operand size (elements) used by the microbenchmark figures.
DEFAULT_ELEMENTS_PER_RANK = 1 << 14


def resolve_config(platform: Optional[str] = None,
                   channels: Optional[int] = None,
                   ranks_per_channel: Optional[int] = None,
                   cores: Optional[int] = None) -> SystemConfig:
    """The :class:`SystemConfig` for one experiment point.

    Platform resolution order: the explicit ``platform`` argument, then the
    ``REPRO_PLATFORM`` environment variable (an empty value counts as
    unset), then the paper's DDR4-2400 baseline (which goes through the
    legacy :func:`scaled_config` path and is bit-exact with it — pinned by
    ``tests/test_platform.py``).  ``channels``/``ranks_per_channel`` left
    at ``None`` keep the preset's *native* geometry (HBM2's 8x1, the
    paper's 2x2, ...); pass values only to deliberately rescale a sweep
    point.
    """
    name = resolve_platform(platform)
    if name == DEFAULT_PLATFORM:
        return scaled_config(2 if channels is None else channels,
                             2 if ranks_per_channel is None
                             else ranks_per_channel, cores=cores)
    return platform_config(name, channels=channels,
                           ranks_per_channel=ranks_per_channel, cores=cores)


def resolve_platform(platform: Optional[str] = None) -> str:
    """The validated platform preset name for one experiment point.

    Resolution order: the explicit ``platform`` argument, then the
    ``REPRO_PLATFORM`` environment variable (an empty value counts as
    unset), then the paper's DDR4-2400 baseline.  An unknown name — a typo
    in a sweep script or a stale environment variable — fails here, at
    resolution time, with the list of registered presets, instead of as a
    ``KeyError`` from deep inside config construction on the first point.
    """
    name = platform or os.environ.get("REPRO_PLATFORM") or DEFAULT_PLATFORM
    names = platform_names()
    if name not in names:
        source = ("platform argument" if platform
                  else "REPRO_PLATFORM environment variable")
        raise ValueError(
            f"unknown platform {name!r} (from the {source}); "
            f"valid choices: {', '.join(sorted(names))}")
    return name


#: Hot-path implementations :func:`resolve_backend` accepts.
VALID_BACKENDS = ("python", "kernel")


def resolve_backend(backend: Optional[str] = None) -> str:
    """The validated execution backend for one experiment point.

    Resolution order mirrors :func:`resolve_platform`: the explicit
    ``backend`` argument, then the ``REPRO_BACKEND`` environment variable
    (empty counts as unset), then the pure-python backend.  Unknown values
    are rejected here with the valid choices, so ``REPRO_BACKEND=kernle``
    aborts the sweep up front instead of silently running one point per
    worker into a constructor error.
    """
    name = backend or os.environ.get("REPRO_BACKEND") or "python"
    if name not in VALID_BACKENDS:
        source = ("backend argument" if backend
                  else "REPRO_BACKEND environment variable")
        raise ValueError(
            f"unknown backend {name!r} (from the {source}); "
            f"valid choices: {', '.join(VALID_BACKENDS)}")
    return name


def build_system(mode: AccessMode, mix: Optional[str],
                 channels: Optional[int] = None,
                 ranks_per_channel: Optional[int] = None,
                 throttle: str = "next_rank",
                 stochastic_probability: float = 0.25,
                 config: Optional[SystemConfig] = None,
                 cores: Optional[int] = None,
                 engine: str = "event",
                 platform: Optional[str] = None,
                 backend: Optional[str] = None) -> ChopimSystem:
    """Construct a system for one experiment point.

    ``engine`` selects the simulation driver: the event-driven engine
    (default) fast-forwards over idle cycles; ``"cycle"`` is the
    cycle-by-cycle regression baseline with identical results.  ``platform``
    names a memory-platform preset (see :mod:`repro.platform`); it is
    ignored when an explicit ``config`` is supplied.  ``channels`` and
    ``ranks_per_channel`` default to the platform's native organization
    (the paper's 2x2 on the baseline).  ``backend`` selects the hot-path
    implementation (``"python"`` or the numpy ``"kernel"``), defaulting to
    the ``REPRO_BACKEND`` environment variable.
    """
    cfg = config or resolve_config(platform, channels, ranks_per_channel,
                                   cores=cores)
    return ChopimSystem(config=cfg, mode=mode, mix=mix, throttle=throttle,
                        stochastic_probability=stochastic_probability,
                        engine=engine, backend=resolve_backend(backend))


def run_point(system: ChopimSystem, cycles: int = DEFAULT_CYCLES,
              warmup: int = DEFAULT_WARMUP):
    """Run one configuration point and return its :class:`SimulationResult`."""
    return system.run(cycles=cycles, warmup=warmup)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return "(no data)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    widths = {c: len(c) for c in columns}
    rendered = []
    for row in rows:
        cells = {c: fmt(row.get(c, "")) for c in columns}
        rendered.append(cells)
        for c in columns:
            widths[c] = max(widths[c], len(cells[c]))
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    separator = "  ".join("-" * widths[c] for c in columns)
    lines = [header, separator]
    for cells in rendered:
        lines.append("  ".join(cells[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def run_experiment_cli(main: Callable[[], None]) -> None:
    """Figure-CLI harness around the sweep service's failure modes.

    * ``Ctrl-C`` exits 130 with the resume hint the sweep driver already
      printed (workers terminated, completed rows journaled) instead of a
      raw traceback.
    * A strict-mode sweep failure (:class:`SweepPointsFailed`) exits 2
      with the structured failure report — the completed rows were
      journaled, so fixing the failing points and re-running resumes
      rather than recomputes.
    """
    try:
        main()
    except KeyboardInterrupt:
        raise SystemExit(130) from None
    except SweepPointsFailed as exc:
        print(exc.outcome.failure_report(), file=sys.stderr)
        raise SystemExit(2) from None


def opcode_by_name(name: str) -> NdaOpcode:
    """Look an NDA opcode up by its lowercase name (``dot``, ``copy``, ...)."""
    try:
        return NdaOpcode(name.lower())
    except ValueError as exc:
        valid = ", ".join(op.value for op in NdaOpcode)
        raise KeyError(f"unknown NDA operation {name!r}; valid: {valid}") from exc
