"""Section VII "Memory Power": power dissipation under concurrent access.

The paper reports: a theoretical maximum of 8 W for host-only access, an
average of 3.6 W for the most memory-intensive mixes, a maximum NDA power of
3.7 W (average-gradient computation with heavy scratchpad use), and a total
of up to 7.3 W under concurrent access — i.e. concurrent operation stays
below the host-only theoretical maximum.  This experiment reproduces those
four numbers from the energy model and simulator event counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.workloads import svrg_kernel_sequence
from repro.core.energy import EnergyModel
from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_WARMUP,
    build_system,
    format_table,
    resolve_config,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep


def _point(scenario: str, mix: str, cycles: int,
           warmup: int, platform: Optional[str] = None) -> Dict[str, object]:
    if scenario == "theoretical_max":
        # Closed-form bound: no simulator needed, just the configuration.
        cfg = resolve_config(platform)
        energy_model = EnergyModel(cfg.org, cfg.energy, timing=cfg.timing)
        maximum = energy_model.theoretical_max_host_power_w()
        return {
            "scenario": "theoretical_max_host_only",
            "host_power_w": maximum,
            "nda_power_w": 0.0,
            "total_power_w": maximum,
        }
    if scenario == "host_only":
        system = build_system(AccessMode.HOST_ONLY, mix, platform=platform)
        result = system.run(cycles=cycles, warmup=warmup)
        label = f"host_only_{mix}"
    else:
        system = build_system(AccessMode.BANK_PARTITIONED, mix,
                              platform=platform)
        system.set_nda_workload_sequence(svrg_kernel_sequence())
        result = system.run(cycles=cycles, warmup=warmup)
        label = f"concurrent_{mix}_avg_gradient"
    return {
        "scenario": label,
        "host_power_w": result.energy.get("host_power_w", 0.0),
        "nda_power_w": result.energy.get("nda_power_w", 0.0),
        "total_power_w": result.energy.get("total_power_w", 0.0),
    }


def run_power_analysis(mix: str = "mix1",
                       cycles: int = DEFAULT_CYCLES,
                       warmup: int = DEFAULT_WARMUP,
                       processes: Optional[int] = None,
                       cache_dir: Optional[str] = None,
                       platform: Optional[str] = None,
                       options: Optional[SweepOptions] = None
                       ) -> List[Dict[str, object]]:
    """Rows: theoretical max, host-only measured, concurrent measured."""
    params = [
        {"scenario": scenario, "mix": mix, "cycles": cycles, "warmup": warmup,
         "platform": platform}
        for scenario in ("theoretical_max", "host_only", "concurrent")
    ]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir,
                     options=options)


def concurrent_below_host_max(rows: List[Dict[str, object]]) -> bool:
    """The paper's takeaway: concurrent power stays below the host-only max."""
    maximum = next(r for r in rows if r["scenario"] == "theoretical_max_host_only")
    concurrent = [r for r in rows if str(r["scenario"]).startswith("concurrent")]
    return all(float(r["total_power_w"]) <= float(maximum["total_power_w"]) * 1.05
               for r in concurrent)


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_power_analysis()
    print(format_table(rows))
    print()
    print("concurrent below host-only theoretical max:",
          concurrent_below_host_max(rows))


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
