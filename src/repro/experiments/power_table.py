"""Section VII "Memory Power": power dissipation under concurrent access.

The paper reports: a theoretical maximum of 8 W for host-only access, an
average of 3.6 W for the most memory-intensive mixes, a maximum NDA power of
3.7 W (average-gradient computation with heavy scratchpad use), and a total
of up to 7.3 W under concurrent access — i.e. concurrent operation stays
below the host-only theoretical maximum.  This experiment reproduces those
four numbers from the energy model and simulator event counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.workloads import svrg_kernel_sequence
from repro.core.energy import EnergyModel
from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_WARMUP,
    build_system,
    format_table,
)


def run_power_analysis(mix: str = "mix1",
                       cycles: int = DEFAULT_CYCLES,
                       warmup: int = DEFAULT_WARMUP) -> List[Dict[str, object]]:
    """Rows: theoretical max, host-only measured, concurrent measured."""
    rows: List[Dict[str, object]] = []

    host_only = build_system(AccessMode.HOST_ONLY, mix)
    host_result = host_only.run(cycles=cycles, warmup=warmup)
    energy_model = EnergyModel(host_only.config.org, host_only.config.energy)
    rows.append({
        "scenario": "theoretical_max_host_only",
        "host_power_w": energy_model.theoretical_max_host_power_w(),
        "nda_power_w": 0.0,
        "total_power_w": energy_model.theoretical_max_host_power_w(),
    })
    rows.append({
        "scenario": f"host_only_{mix}",
        "host_power_w": host_result.energy.get("host_power_w", 0.0),
        "nda_power_w": host_result.energy.get("nda_power_w", 0.0),
        "total_power_w": host_result.energy.get("total_power_w", 0.0),
    })

    concurrent = build_system(AccessMode.BANK_PARTITIONED, mix)
    concurrent.set_nda_workload_sequence(svrg_kernel_sequence())
    concurrent_result = concurrent.run(cycles=cycles, warmup=warmup)
    rows.append({
        "scenario": f"concurrent_{mix}_avg_gradient",
        "host_power_w": concurrent_result.energy.get("host_power_w", 0.0),
        "nda_power_w": concurrent_result.energy.get("nda_power_w", 0.0),
        "total_power_w": concurrent_result.energy.get("total_power_w", 0.0),
    })
    return rows


def concurrent_below_host_max(rows: List[Dict[str, object]]) -> bool:
    """The paper's takeaway: concurrent power stays below the host-only max."""
    maximum = next(r for r in rows if r["scenario"] == "theoretical_max_host_only")
    concurrent = [r for r in rows if str(r["scenario"]).startswith("concurrent")]
    return all(float(r["total_power_w"]) <= float(maximum["total_power_w"]) * 1.05
               for r in concurrent)


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_power_analysis()
    print(format_table(rows))
    print()
    print("concurrent below host-only theoretical max:",
          concurrent_below_host_max(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
