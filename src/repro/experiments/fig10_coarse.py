"""Figure 10: impact of coarse-grain NDA operations.

Host IPC and NDA bandwidth utilization as the number of cache blocks
processed per NDA instruction grows from 1 (fine-grain, one launch packet per
cache line) to 4096, for increasing rank counts.  The paper's takeaway:
coarse-grain operations are crucial because launch-packet traffic on the host
channel throttles both sides, and the effect worsens with more ranks.

Methodology notes (Section VII): bank partitioning is enabled, the operation
is NRM2 (granularity is precisely controllable), launches are asynchronous
and the host runs the most memory-intensive mix (mix1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.modes import AccessMode
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_ELEMENTS_PER_RANK,
    DEFAULT_WARMUP,
    build_system,
    format_table,
    run_experiment_cli,
)
from repro.experiments.sweep import SweepOptions, run_sweep
from repro.nda.isa import NdaOpcode

#: The paper sweeps powers of four from 1 to 4096 cache blocks.
FULL_GRANULARITIES = (1, 4, 16, 64, 256, 1024, 4096)
#: Subset used by the quick benchmark regeneration.
QUICK_GRANULARITIES = (1, 16, 256, 4096)

FULL_RANK_CONFIGS = ((2, 2), (2, 4), (2, 8))
QUICK_RANK_CONFIGS = ((2, 2),)


def _point(channels: int, ranks: int, cache_blocks: int, mix: str,
           cycles: int, warmup: int,
           elements_per_rank: int) -> Dict[str, object]:
    system = build_system(AccessMode.BANK_PARTITIONED, mix,
                          channels=channels, ranks_per_channel=ranks)
    system.set_nda_workload(
        NdaOpcode.NRM2,
        elements_per_rank=elements_per_rank,
        cache_blocks=cache_blocks,
        async_launch=True,
    )
    result = system.run(cycles=cycles, warmup=warmup)
    return {
        "channels": channels,
        "ranks_per_channel": ranks,
        "cache_blocks": cache_blocks,
        "host_ipc": result.host_ipc,
        "nda_bw_utilization": result.nda_bw_utilization,
        "idealized_bw_utilization": result.idealized_bw_utilization,
        "launch_packets": result.extra.get("packets", 0.0),
    }


def run_coarse_grain_sweep(granularities: Sequence[int] = QUICK_GRANULARITIES,
                           rank_configs: Sequence[Tuple[int, int]] = QUICK_RANK_CONFIGS,
                           mix: str = "mix1",
                           cycles: int = DEFAULT_CYCLES,
                           warmup: int = DEFAULT_WARMUP,
                           elements_per_rank: int = DEFAULT_ELEMENTS_PER_RANK,
                           processes: Optional[int] = None,
                           cache_dir: Optional[str] = None,
                           options: Optional[SweepOptions] = None,
                           ) -> List[Dict[str, object]]:
    """One row per (rank config, cache blocks per instruction)."""
    params = [
        {"channels": channels, "ranks": ranks, "cache_blocks": cache_blocks,
         "mix": mix, "cycles": cycles, "warmup": warmup,
         "elements_per_rank": elements_per_rank}
        for channels, ranks in rank_configs
        for cache_blocks in granularities
    ]
    return run_sweep(_point, params, processes=processes, cache_dir=cache_dir, options=options)


def coarse_vs_fine_summary(rows: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Summarize the coarse-grain benefit: coarse/fine ratios per metric."""
    if not rows:
        return {}
    by_cfg: Dict[Tuple[int, int], List[Dict[str, object]]] = {}
    for row in rows:
        by_cfg.setdefault((row["channels"], row["ranks_per_channel"]), []).append(row)
    summary: Dict[str, float] = {}
    for cfg, cfg_rows in by_cfg.items():
        cfg_rows = sorted(cfg_rows, key=lambda r: r["cache_blocks"])
        fine, coarse = cfg_rows[0], cfg_rows[-1]
        key = f"{cfg[0]}x{cfg[1]}"
        summary[f"{key}_nda_util_gain"] = (
            float(coarse["nda_bw_utilization"]) / max(1e-9, float(fine["nda_bw_utilization"]))
        )
        summary[f"{key}_host_ipc_gain"] = (
            float(coarse["host_ipc"]) / max(1e-9, float(fine["host_ipc"]))
        )
    return summary


def main() -> None:  # pragma: no cover - CLI convenience
    rows = run_coarse_grain_sweep()
    print(format_table(rows))
    print()
    for key, value in coarse_vs_fine_summary(rows).items():
        print(f"{key}: {value:.2f}x")


if __name__ == "__main__":  # pragma: no cover
    run_experiment_cli(main)
