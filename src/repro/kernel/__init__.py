"""Vectorized kernel backend: array-resident timing/scan core.

``ChopimSystem(backend="kernel")`` swaps the flat-list hot-path state of the
Python backend for preallocated numpy arrays (see ARCHITECTURE.md, "Kernel
backend"):

* :class:`repro.kernel.timing_kernel.KernelTimingEngine` keeps every bank's
  timing horizons (and the open-row mirror) in dense int64 arrays, with issue
  effects applied as masked scatter updates;
* :class:`repro.kernel.scan.KernelFrFcfsScheduler` probes every bank bucket
  of a channel queue in one vector pass;
* :class:`repro.kernel.settle.KernelBurstSettler` evaluates closed-form burst
  settlement as array arithmetic over all of a channel's live plans.

numpy is an **optional** dependency (``pip install repro[kernel]``): this
module imports without it, :func:`kernel_available` reports availability, and
:func:`require_kernel` raises an actionable error when the kernel backend is
requested without it.  The Python cycle/event engines never import numpy and
are unaffected.  Setting ``REPRO_FORCE_NO_NUMPY=1`` makes the kernel report
unavailable even when numpy is importable (used by the CI no-numpy job and
the fallback tests).
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via kernel_available() in both branches
    import numpy  # noqa: F401

    _NUMPY_IMPORTABLE = True
    _NUMPY_ERROR = ""
except ImportError as exc:  # pragma: no cover - depends on environment
    _NUMPY_IMPORTABLE = False
    _NUMPY_ERROR = str(exc)


def kernel_available() -> bool:
    """Whether the kernel backend can run in this environment."""
    if os.environ.get("REPRO_FORCE_NO_NUMPY", "") in ("1", "true", "yes"):
        return False
    return _NUMPY_IMPORTABLE


def kernel_unavailable_reason() -> str:
    """Human-readable reason :func:`kernel_available` is False."""
    if os.environ.get("REPRO_FORCE_NO_NUMPY", "") in ("1", "true", "yes"):
        return "REPRO_FORCE_NO_NUMPY is set"
    if not _NUMPY_IMPORTABLE:
        return f"numpy is not installed ({_NUMPY_ERROR})"
    return ""


def require_kernel() -> None:
    """Raise a clean, actionable error when the kernel backend cannot run."""
    if kernel_available():
        return
    raise RuntimeError(
        "backend='kernel' requires numpy, which is unavailable: "
        f"{kernel_unavailable_reason()}. Install it with `pip install numpy` "
        "(or `pip install .[kernel]`), or use backend='python' — the Python "
        "cycle/event engines produce bit-identical results without numpy."
    )
