"""Vectorized kernel backend: array-resident timing/scan core.

``ChopimSystem(backend="kernel")`` swaps the flat-list hot-path state of the
Python backend for preallocated numpy arrays (see ARCHITECTURE.md, "Kernel
backend"):

* :class:`repro.kernel.timing_kernel.KernelTimingEngine` keeps every bank's
  timing horizons (and the open-row mirror) in dense int64 arrays, with issue
  effects applied as masked scatter updates;
* :class:`repro.kernel.scan.KernelFrFcfsScheduler` probes every bank bucket
  of a channel queue in one vector pass;
* :class:`repro.kernel.settle.KernelBurstSettler` evaluates closed-form burst
  settlement as array arithmetic over all of a channel's live plans.

numpy is an **optional** dependency (``pip install repro[kernel]``): this
module imports without it, :func:`kernel_available` reports availability, and
:func:`require_kernel` raises an actionable error when the kernel backend is
requested without it.  The Python cycle/event engines never import numpy and
are unaffected.  Setting ``REPRO_FORCE_NO_NUMPY=1`` makes the kernel report
unavailable even when numpy is importable (used by the CI no-numpy job and
the fallback tests).

The **compiled core** (the resident multi-cycle stepper in
:mod:`repro.kernel.core`, built on demand with the system C compiler) is a
second optional layer with the same gating pattern:
:func:`compiled_available` reports whether the shared library can be built
and loaded, and ``REPRO_FORCE_NO_COMPILED=1`` forces it unavailable (used
by the CI no-toolchain job), in which case the stepper runs its bit-exact
pure-Python twin (:mod:`repro.kernel.core.pycore`).
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via kernel_available() in both branches
    import numpy  # noqa: F401

    _NUMPY_IMPORTABLE = True
    _NUMPY_ERROR = ""
except ImportError as exc:  # pragma: no cover - depends on environment
    _NUMPY_IMPORTABLE = False
    _NUMPY_ERROR = str(exc)


def kernel_available() -> bool:
    """Whether the kernel backend can run in this environment."""
    if os.environ.get("REPRO_FORCE_NO_NUMPY", "") in ("1", "true", "yes"):
        return False
    return _NUMPY_IMPORTABLE


def kernel_unavailable_reason() -> str:
    """Human-readable reason :func:`kernel_available` is False."""
    if os.environ.get("REPRO_FORCE_NO_NUMPY", "") in ("1", "true", "yes"):
        return "REPRO_FORCE_NO_NUMPY is set"
    if not _NUMPY_IMPORTABLE:
        return f"numpy is not installed ({_NUMPY_ERROR})"
    return ""


def compiled_available() -> bool:
    """Whether the compiled stepper core can run in this environment.

    Triggers the lazy on-demand build on first call; the result (library
    or failure reason) is memoized per process.
    """
    if os.environ.get("REPRO_FORCE_NO_COMPILED", "") in ("1", "true", "yes"):
        return False
    from repro.kernel.core import load_core

    return load_core() is not None


def compiled_unavailable_reason() -> str:
    """Human-readable reason :func:`compiled_available` is False."""
    if os.environ.get("REPRO_FORCE_NO_COMPILED", "") in ("1", "true", "yes"):
        return "REPRO_FORCE_NO_COMPILED is set"
    from repro.kernel.core import load_core, load_error

    if load_core() is None:
        return load_error() or "compiled core failed to load"
    return ""


def require_kernel() -> None:
    """Raise a clean, actionable error when the kernel backend cannot run."""
    if kernel_available():
        return
    raise RuntimeError(
        "backend='kernel' requires numpy, which is unavailable: "
        f"{kernel_unavailable_reason()}. Install it with `pip install numpy` "
        "(or `pip install .[kernel]`), or use backend='python' — the Python "
        "cycle/event engines produce bit-identical results without numpy."
    )
