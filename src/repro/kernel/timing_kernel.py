"""Array-resident DDR4 timing state: the kernel's ``TimingKernel``.

:class:`KernelTimingEngine` subclasses the scalar
:class:`~repro.dram.timing.TimingEngine` and moves every per-bank timing
horizon (``act_allowed`` / ``pre_allowed`` / ``rd_allowed`` / ``wr_allowed``)
out of the flat ``_BankTiming`` object list into four preallocated int64
arrays (one per field, dense ``bank_index`` order — the packing contract in
:mod:`repro.platform.packing`).  It also maintains an **open-row mirror**
(``open_row[bank_index]``, ``-1`` = closed), updated at ACT/PRE issue, so the
batched FR-FCFS scan classifies every queued request's required command with
two gathers instead of per-bucket ``Bank`` object reads.

The scalar constraint law is *inherited, not duplicated*: each ``_banks``
entry becomes an :class:`_ArrayBankView` whose attributes read and write the
arrays in place, so ``earliest_issue_at`` / ``issue`` / ``host_column_base``
run the exact oracle code against array-resident state.  Only the refresh
issue path is overridden, replacing the per-bank Python loop with a masked
scatter (:func:`scatter_max`) over the rank's array slice.

Rank and channel timing state is array-resident too (:class:`_ArrayRankView`
/ :class:`_ArrayChannelView` over the :func:`~repro.platform.packing.
pack_rank_state` / ``pack_channel_state`` arrays): not for vectorization —
both are O(ranks) small — but so the compiled stepper core
(:mod:`repro.kernel.core`) can read and write *all* timing state through raw
int64 pointers without any per-cycle Python marshalling.  The tFAW sliding
window becomes a fixed 4-slot ring (:class:`_FawWindow`) and the
per-bank-group ACT table a row view (:class:`_BgList`), each presenting the
exact deque/list interface the inherited scalar law and the snapshot codec
use.

Vector primitives (:func:`horizon_max`, :func:`scatter_max`) are module
level so the micro-oracle property tests (tests/test_kernel_micro.py) can
diff them against their scalar counterparts in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.commands import Command, CommandType
from repro.dram.timing import TimingEngine
from repro.kernel.profile import PROFILE, clock
from repro.platform.packing import (
    CHANNEL_SCALAR_FIELDS,
    FAW_CAPACITY,
    NO_OPEN_ROW,
    RANK_SCALAR_FIELDS,
    pack_bank_state,
    pack_channel_state,
    pack_rank_state,
)


def horizon_max(*constraints: "np.ndarray") -> "np.ndarray":
    """Elementwise max over constraint arrays: the earliest-issue reduction.

    The vector twin of the comparison chains in
    ``TimingEngine.earliest_issue_at`` — an earliest-issue horizon is the
    maximum of every applicable absolute constraint cycle.  A pairwise fold
    rather than ``np.maximum.reduce`` so inputs of broadcastable-but-unequal
    shapes (e.g. per-(rank, bank-group) tables against per-rank columns)
    compose directly.
    """
    result = constraints[0]
    for constraint in constraints[1:]:
        result = np.maximum(result, constraint)
    return result


def scatter_max(target: "np.ndarray", index, value) -> None:
    """Masked scatter ``target[index] = max(target[index], value)`` in place.

    ``index`` may be a slice (contiguous bank ranges, e.g. all banks of a
    refreshing rank) or an integer index array (e.g. the planned banks of a
    burst settlement batch); duplicate indices accumulate correctly.  All
    updates the kernel applies this way are monotone (constraints only move
    later), matching the guarded assignments of the scalar engine.
    """
    if isinstance(index, slice):
        region = target[index]
        np.maximum(region, value, out=region)
    else:
        np.maximum.at(target, index, value)


class _ArrayBankView:
    """One bank's window into the kernel's per-bank horizon arrays.

    Stands in for the scalar ``_BankTiming`` slots object so every inherited
    ``TimingEngine`` method (the oracle constraint law) transparently reads
    and writes the array-resident state.  Values are converted to built-in
    ``int`` on read so cached horizons and calendar entries stay plain
    Python ints everywhere outside the arrays.
    """

    __slots__ = ("_act", "_pre", "_rd", "_wr", "_i")

    def __init__(self, act: "memoryview", pre: "memoryview",
                 rd: "memoryview", wr: "memoryview", index: int) -> None:
        self._act = act
        self._pre = pre
        self._rd = rd
        self._wr = wr
        self._i = index

    @property
    def act_allowed(self) -> int:
        return self._act[self._i]

    @act_allowed.setter
    def act_allowed(self, value: int) -> None:
        self._act[self._i] = value

    @property
    def pre_allowed(self) -> int:
        return self._pre[self._i]

    @pre_allowed.setter
    def pre_allowed(self, value: int) -> None:
        self._pre[self._i] = value

    @property
    def rd_allowed(self) -> int:
        return self._rd[self._i]

    @rd_allowed.setter
    def rd_allowed(self, value: int) -> None:
        self._rd[self._i] = value

    @property
    def wr_allowed(self) -> int:
        return self._wr[self._i]

    @wr_allowed.setter
    def wr_allowed(self, value: int) -> None:
        self._wr[self._i] = value


class _BgList:
    """List view of one rank's per-bank-group ACT-horizon array row.

    Presents exactly the ``list`` operations the scalar law and the snapshot
    path use on ``_RankTiming.act_allowed_bg`` (len / index / assign /
    iterate), backed by one row of the ``(total_ranks, bank_groups)`` table.
    """

    __slots__ = ("_row", "_mv")

    def __init__(self, row: "np.ndarray") -> None:
        self._row = row
        self._mv = memoryview(row)

    def __len__(self) -> int:
        return len(self._row)

    def __getitem__(self, index: int) -> int:
        return self._mv[index]

    def __setitem__(self, index: int, value: int) -> None:
        self._mv[index] = value

    def __iter__(self):
        return (int(v) for v in self._row)


class _FawWindow:
    """tFAW sliding window as a fixed 4-slot ring over array rows.

    Stands in for ``_RankTiming.faw_window`` (a ``deque(maxlen=4)`` of the
    last four ACT cycles): ``[0]`` is the oldest entry, ``append`` evicts it
    when full, iteration runs oldest-first.  Storage is one row of the
    ``(total_ranks, 4)`` ring array plus per-rank ``faw_len``/``faw_head``
    cursor cells, so the compiled core can apply the same ring arithmetic
    in C.
    """

    __slots__ = ("_ring", "_lens", "_heads", "_i")

    #: Deque-interface capacity (the snapshot path copies it).
    maxlen = FAW_CAPACITY

    def __init__(self, ring_row: "np.ndarray", lens: "np.ndarray",
                 heads: "np.ndarray", index: int) -> None:
        self._ring = memoryview(ring_row)
        self._lens = memoryview(lens)
        self._heads = memoryview(heads)
        self._i = index

    def __len__(self) -> int:
        return self._lens[self._i]

    def __getitem__(self, index: int) -> int:
        length = self._lens[self._i]
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(index)
        return self._ring[(self._heads[self._i] + index) % FAW_CAPACITY]

    def __iter__(self):
        head = self._heads[self._i]
        return (self._ring[(head + k) % FAW_CAPACITY]
                for k in range(self._lens[self._i]))

    def append(self, value: int) -> None:
        i = self._i
        length = self._lens[i]
        head = self._heads[i]
        if length < FAW_CAPACITY:
            self._ring[(head + length) % FAW_CAPACITY] = value
            self._lens[i] = length + 1
        else:
            # Full: overwrite the oldest slot in place and advance the head —
            # exactly deque(maxlen=4).append's evict-then-append.
            self._ring[head] = value
            self._heads[i] = (head + 1) % FAW_CAPACITY

    def replace(self, values) -> None:
        """Reset the window to ``values`` (oldest-first), e.g. on restore."""
        items = [int(v) for v in values][-FAW_CAPACITY:]
        for k in range(FAW_CAPACITY):
            self._ring[k] = items[k] if k < len(items) else 0
        self._heads[self._i] = 0
        self._lens[self._i] = len(items)


def _cell_property(column_attr: str) -> property:
    """int-typed write-through property over one packed array cell.

    Reads through a per-view *column* reference (bound once in the view's
    ``__init__``) rather than the field-name dict.  The column is held as a
    ``memoryview`` over the packed array: scalar indexing on a memoryview
    returns a plain Python int at roughly half the cost of
    ``ndarray.item``, and writes land in the same buffer the compiled
    stepper core reads, so write-through semantics are unchanged.  The
    accessors are generated with the column attribute inlined (plain
    ``LOAD_ATTR`` instead of a ``getattr`` call): these run a few million
    times per simulated window and the builtin-call overhead alone is
    measurable at that rate.
    """

    namespace: dict = {}
    exec(
        f"def fget(self):\n"
        f"    return self.{column_attr}[self._i]\n"
        f"def fset(self, value):\n"
        f"    self.{column_attr}[self._i] = value\n",
        namespace,
    )
    return property(namespace["fget"], namespace["fset"])


class _ArrayRankView:
    """One rank's window into the packed per-rank timing arrays.

    Stands in for the scalar ``_RankTiming`` slots object: every scalar slot
    is a write-through int property over the :func:`pack_rank_state` arrays,
    ``act_allowed_bg`` is a :class:`_BgList` row view and ``faw_window`` a
    :class:`_FawWindow` ring view.  Both container properties accept
    list/deque assignment (the snapshot restore path) by copying into the
    arrays.
    """

    __slots__ = ("_arrays", "_i", "_bg", "_faw") + tuple(
        "_c_" + _field for _field, _ in RANK_SCALAR_FIELDS)

    def __init__(self, arrays, index: int) -> None:
        self._arrays = arrays
        self._i = index
        self._bg = _BgList(arrays["act_allowed_bg"][index])
        self._faw = _FawWindow(arrays["faw"][index], arrays["faw_len"],
                               arrays["faw_head"], index)
        for field, _ in RANK_SCALAR_FIELDS:
            setattr(self, "_c_" + field, memoryview(arrays[field]))

    @property
    def act_allowed_bg(self) -> _BgList:
        return self._bg

    @act_allowed_bg.setter
    def act_allowed_bg(self, values) -> None:
        self._arrays["act_allowed_bg"][self._i][:] = [int(v) for v in values]

    @property
    def faw_window(self) -> _FawWindow:
        return self._faw

    @faw_window.setter
    def faw_window(self, values) -> None:
        self._faw.replace(values)


for _field, _ in RANK_SCALAR_FIELDS:
    setattr(_ArrayRankView, _field, _cell_property("_c_" + _field))
del _field


class _ArrayChannelView:
    """One channel's window into the packed per-channel timing arrays.

    ``last_col_was_write`` converts to ``bool`` on read (packed as 0/1) so
    snapshots and comparisons see the exact scalar ``_ChannelTiming`` types.
    """

    __slots__ = ("_arrays", "_i") + tuple(
        "_c_" + _field for _field, _ in CHANNEL_SCALAR_FIELDS
        if _field != "last_col_was_write")

    def __init__(self, arrays, index: int) -> None:
        self._arrays = arrays
        self._i = index
        for field, _ in CHANNEL_SCALAR_FIELDS:
            if field != "last_col_was_write":
                setattr(self, "_c_" + field, memoryview(arrays[field]))

    @property
    def last_col_was_write(self) -> bool:
        return bool(self._arrays["last_col_was_write"][self._i])

    @last_col_was_write.setter
    def last_col_was_write(self, value: bool) -> None:
        self._arrays["last_col_was_write"][self._i] = 1 if value else 0


for _field, _ in CHANNEL_SCALAR_FIELDS:
    if _field != "last_col_was_write":
        setattr(_ArrayChannelView, _field, _cell_property("_c_" + _field))
del _field


class KernelTimingEngine(TimingEngine):
    """The scalar timing oracle over array-resident per-bank state."""

    def __init__(self, org: DramOrgConfig, timing: DramTimingConfig) -> None:
        if PROFILE.enabled:
            t0 = clock()
        super().__init__(org, timing)
        arrays = pack_bank_state(org)
        #: Per-bank earliest-issue horizons, dense ``bank_index`` order.
        self.bank_act: np.ndarray = arrays["act_allowed"]
        self.bank_pre: np.ndarray = arrays["pre_allowed"]
        self.bank_rd: np.ndarray = arrays["rd_allowed"]
        self.bank_wr: np.ndarray = arrays["wr_allowed"]
        #: Open-row mirror: ``open_row[bank_index]`` is the latched row, or
        #: :data:`~repro.platform.packing.NO_OPEN_ROW` when closed.
        self.open_row: np.ndarray = arrays["open_row"]
        # Re-seat the flat bank list on the arrays: the state's single home
        # is the arrays; the views keep every inherited scalar probe exact.
        # Views index through shared memoryviews (cheaper scalar access than
        # ndarray indexing; same buffer, so write-through is preserved).
        act_mv = memoryview(self.bank_act)
        pre_mv = memoryview(self.bank_pre)
        rd_mv = memoryview(self.bank_rd)
        wr_mv = memoryview(self.bank_wr)
        self._banks = [
            _ArrayBankView(act_mv, pre_mv, rd_mv, wr_mv, index)
            for index in range(len(self._banks))
        ]
        #: Packed per-rank / per-channel timing state (the compiled stepper
        #: core's view of the world); the scalar engine reads and writes it
        #: through the views re-seated below.  Must happen here, before the
        #: NDA scheduler captures ``timing._ranks`` by reference.
        self.rank_arrays = pack_rank_state(org, timing)
        self.channel_arrays = pack_channel_state(org)
        self._ranks = [
            _ArrayRankView(self.rank_arrays, index)
            for index in range(len(self._ranks))
        ]
        self._channels = [
            _ArrayChannelView(self.channel_arrays, index)
            for index in range(len(self._channels))
        ]
        if PROFILE.enabled:
            PROFILE.add("pack", clock() - t0)

    def issue(self, cmd: Command, now: int) -> None:
        kind = cmd.kind
        if kind is CommandType.REF:
            self._issue_refresh(cmd, now)
            return
        if kind is CommandType.ACT:
            _, bank_index = self._indices(cmd.addr)
            self.open_row[bank_index] = cmd.addr.row
        elif kind is CommandType.PRE:
            _, bank_index = self._indices(cmd.addr)
            self.open_row[bank_index] = NO_OPEN_ROW
        super().issue(cmd, now)

    def _issue_refresh(self, cmd: Command, now: int) -> None:
        """REF issue with the per-bank loop replaced by a masked scatter.

        State-identical to the scalar REF branch of ``TimingEngine.issue``
        (a refresh closes no rows — protocol requires all banks already
        closed — so the open-row mirror is untouched).
        """
        t = self.timing
        addr = cmd.addr
        rank_index, _ = self._indices(addr)
        self._issue_versions[rank_index] += 1
        self._row_versions[rank_index] += 1
        if self.busy_observer is not None:
            self.busy_observer(addr.channel, addr.rank, now)
        rank = self._ranks[rank_index]
        rank.refreshing_until = max(rank.refreshing_until, now + t.tRFC)
        rank.refresh_due += t.tREFI
        start = rank_index * self._banks_per_rank
        if PROFILE.enabled:
            t0 = clock()
        scatter_max(self.bank_act,
                    slice(start, start + self._banks_per_rank), now + t.tRFC)
        if PROFILE.enabled:
            PROFILE.add("scatter", clock() - t0)
        rank.busy_until = max(rank.busy_until, now + t.tRFC)
        ch = addr.channel
        first = ch * self._ranks_per_channel
        self._channel_refresh_due[ch] = min(
            r.refresh_due
            for r in self._ranks[first:first + self._ranks_per_channel]
        )
