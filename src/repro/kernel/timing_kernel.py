"""Array-resident DDR4 timing state: the kernel's ``TimingKernel``.

:class:`KernelTimingEngine` subclasses the scalar
:class:`~repro.dram.timing.TimingEngine` and moves every per-bank timing
horizon (``act_allowed`` / ``pre_allowed`` / ``rd_allowed`` / ``wr_allowed``)
out of the flat ``_BankTiming`` object list into four preallocated int64
arrays (one per field, dense ``bank_index`` order — the packing contract in
:mod:`repro.platform.packing`).  It also maintains an **open-row mirror**
(``open_row[bank_index]``, ``-1`` = closed), updated at ACT/PRE issue, so the
batched FR-FCFS scan classifies every queued request's required command with
two gathers instead of per-bucket ``Bank`` object reads.

The scalar constraint law is *inherited, not duplicated*: each ``_banks``
entry becomes an :class:`_ArrayBankView` whose attributes read and write the
arrays in place, so ``earliest_issue_at`` / ``issue`` / ``host_column_base``
run the exact oracle code against array-resident state.  Only the refresh
issue path is overridden, replacing the per-bank Python loop with a masked
scatter (:func:`scatter_max`) over the rank's array slice.  Rank and channel
state stay scalar: both are O(ranks) small and are read by NDA hot paths
that gain nothing from vectorization.

Vector primitives (:func:`horizon_max`, :func:`scatter_max`) are module
level so the micro-oracle property tests (tests/test_kernel_micro.py) can
diff them against their scalar counterparts in isolation.
"""

from __future__ import annotations

import numpy as np

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.commands import Command, CommandType
from repro.dram.timing import TimingEngine
from repro.kernel.profile import PROFILE, clock
from repro.platform.packing import NO_OPEN_ROW, pack_bank_state


def horizon_max(*constraints: "np.ndarray") -> "np.ndarray":
    """Elementwise max over constraint arrays: the earliest-issue reduction.

    The vector twin of the comparison chains in
    ``TimingEngine.earliest_issue_at`` — an earliest-issue horizon is the
    maximum of every applicable absolute constraint cycle.  A pairwise fold
    rather than ``np.maximum.reduce`` so inputs of broadcastable-but-unequal
    shapes (e.g. per-(rank, bank-group) tables against per-rank columns)
    compose directly.
    """
    result = constraints[0]
    for constraint in constraints[1:]:
        result = np.maximum(result, constraint)
    return result


def scatter_max(target: "np.ndarray", index, value) -> None:
    """Masked scatter ``target[index] = max(target[index], value)`` in place.

    ``index`` may be a slice (contiguous bank ranges, e.g. all banks of a
    refreshing rank) or an integer index array (e.g. the planned banks of a
    burst settlement batch); duplicate indices accumulate correctly.  All
    updates the kernel applies this way are monotone (constraints only move
    later), matching the guarded assignments of the scalar engine.
    """
    if isinstance(index, slice):
        region = target[index]
        np.maximum(region, value, out=region)
    else:
        np.maximum.at(target, index, value)


class _ArrayBankView:
    """One bank's window into the kernel's per-bank horizon arrays.

    Stands in for the scalar ``_BankTiming`` slots object so every inherited
    ``TimingEngine`` method (the oracle constraint law) transparently reads
    and writes the array-resident state.  Values are converted to built-in
    ``int`` on read so cached horizons and calendar entries stay plain
    Python ints everywhere outside the arrays.
    """

    __slots__ = ("_act", "_pre", "_rd", "_wr", "_i")

    def __init__(self, act: "np.ndarray", pre: "np.ndarray", rd: "np.ndarray",
                 wr: "np.ndarray", index: int) -> None:
        self._act = act
        self._pre = pre
        self._rd = rd
        self._wr = wr
        self._i = index

    @property
    def act_allowed(self) -> int:
        return int(self._act[self._i])

    @act_allowed.setter
    def act_allowed(self, value: int) -> None:
        self._act[self._i] = value

    @property
    def pre_allowed(self) -> int:
        return int(self._pre[self._i])

    @pre_allowed.setter
    def pre_allowed(self, value: int) -> None:
        self._pre[self._i] = value

    @property
    def rd_allowed(self) -> int:
        return int(self._rd[self._i])

    @rd_allowed.setter
    def rd_allowed(self, value: int) -> None:
        self._rd[self._i] = value

    @property
    def wr_allowed(self) -> int:
        return int(self._wr[self._i])

    @wr_allowed.setter
    def wr_allowed(self, value: int) -> None:
        self._wr[self._i] = value


class KernelTimingEngine(TimingEngine):
    """The scalar timing oracle over array-resident per-bank state."""

    def __init__(self, org: DramOrgConfig, timing: DramTimingConfig) -> None:
        if PROFILE.enabled:
            t0 = clock()
        super().__init__(org, timing)
        arrays = pack_bank_state(org)
        #: Per-bank earliest-issue horizons, dense ``bank_index`` order.
        self.bank_act: np.ndarray = arrays["act_allowed"]
        self.bank_pre: np.ndarray = arrays["pre_allowed"]
        self.bank_rd: np.ndarray = arrays["rd_allowed"]
        self.bank_wr: np.ndarray = arrays["wr_allowed"]
        #: Open-row mirror: ``open_row[bank_index]`` is the latched row, or
        #: :data:`~repro.platform.packing.NO_OPEN_ROW` when closed.
        self.open_row: np.ndarray = arrays["open_row"]
        # Re-seat the flat bank list on the arrays: the state's single home
        # is the arrays; the views keep every inherited scalar probe exact.
        self._banks = [
            _ArrayBankView(self.bank_act, self.bank_pre, self.bank_rd,
                           self.bank_wr, index)
            for index in range(len(self._banks))
        ]
        if PROFILE.enabled:
            PROFILE.add("pack", clock() - t0)

    def issue(self, cmd: Command, now: int) -> None:
        kind = cmd.kind
        if kind is CommandType.REF:
            self._issue_refresh(cmd, now)
            return
        if kind is CommandType.ACT:
            _, bank_index = self._indices(cmd.addr)
            self.open_row[bank_index] = cmd.addr.row
        elif kind is CommandType.PRE:
            _, bank_index = self._indices(cmd.addr)
            self.open_row[bank_index] = NO_OPEN_ROW
        super().issue(cmd, now)

    def _issue_refresh(self, cmd: Command, now: int) -> None:
        """REF issue with the per-bank loop replaced by a masked scatter.

        State-identical to the scalar REF branch of ``TimingEngine.issue``
        (a refresh closes no rows — protocol requires all banks already
        closed — so the open-row mirror is untouched).
        """
        t = self.timing
        addr = cmd.addr
        rank_index, _ = self._indices(addr)
        self._issue_versions[rank_index] += 1
        self._row_versions[rank_index] += 1
        if self.busy_observer is not None:
            self.busy_observer(addr.channel, addr.rank, now)
        rank = self._ranks[rank_index]
        rank.refreshing_until = max(rank.refreshing_until, now + t.tRFC)
        rank.refresh_due += t.tREFI
        start = rank_index * self._banks_per_rank
        if PROFILE.enabled:
            t0 = clock()
        scatter_max(self.bank_act,
                    slice(start, start + self._banks_per_rank), now + t.tRFC)
        if PROFILE.enabled:
            PROFILE.add("scatter", clock() - t0)
        rank.busy_until = max(rank.busy_until, now + t.tRFC)
        ch = addr.channel
        first = ch * self._ranks_per_channel
        self._channel_refresh_due[ch] = min(
            r.refresh_due
            for r in self._ranks[first:first + self._ranks_per_channel]
        )
