"""Closed-form burst settlement as array arithmetic over whole plans.

A burst plan (see :class:`repro.nda.controller._BurstPlan`) schedules ``K``
NDA column commands at a fixed cadence; settlement applies the timing
effects of the elapsed prefix in closed form.  The kernel evaluates the
settlement **across all live plans of a channel at once**:

* :func:`elapsed_commands` — the per-plan count of commands strictly before
  the settlement boundary, as pure array arithmetic;
* :func:`settlement_horizons` — the terminal bus-occupancy and
  precharge-horizon values a settled prefix produces, vectorized over plans;
* :class:`KernelBurstSettler` — the channel's ``burst_settler`` hook:
  eligibility is decided per plan and each eligible plan's state is applied
  through the *scalar* single-writer
  (``NdaRankController._apply_settlement``), so the mutation code path is
  shared with the Python backend and cannot diverge from it.

The pure functions are the micro-oracle surface: tests diff them against a
brute-force per-command replay and against the scalar settlement's state
delta on randomized plans.  The settler's per-call path is deliberately
*scalar*: it runs before every FR-FCFS scan and issue on the channel, a
channel has only a handful of ranks, and most boundaries fall between two
planned commands — profiling showed the array fill alone costing an order
of magnitude more than the plain-Python eligibility walk it guarded.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.kernel.profile import PROFILE, clock

def elapsed_commands(start, step, idx, count, upto):
    """Per-plan settled command count at boundary ``upto`` (array form).

    A plan's command ``i`` issues at ``start + i * step``; the settled count
    is how many of its ``count`` commands issue strictly before ``upto``,
    never less than the already-settled ``idx``.  Mirrors the scalar
    computation in ``NdaRankController.settle_burst``.
    """
    j = (upto - 1 - start) // step + 1
    return np.maximum(np.minimum(j, count), idx)


def settlement_horizons(start, step, j, is_write, *, tCL, tCWL, tBL, tRTP,
                        write_to_precharge):
    """Terminal timing horizons of settled plan prefixes (array form).

    Returns ``(c_last, bus_free, pre_allowed)`` per plan: the last settled
    command's cycle, the rank-internal bus-free horizon it leaves behind and
    the bank's precharge horizon (tRTP after a read, write recovery after a
    write).  Only meaningful where ``j > 0``.
    """
    c_last = start + (j - 1) * step
    bus = c_last + np.where(is_write, tCWL, tCL) + tBL
    pre = c_last + np.where(is_write, write_to_precharge, tRTP)
    return c_last, bus, pre


class KernelBurstSettler:
    """Channel ``burst_settler``: scalar eligibility, shared scalar writer."""

    __slots__ = ("controllers",)

    def __init__(self, controllers: List) -> None:
        self.controllers = list(controllers)

    def __call__(self, upto: int) -> None:
        profile = PROFILE.enabled
        if profile:
            t0 = clock()
        for controller in self.controllers:
            plan = controller._plan
            if plan is None:
                continue
            start = plan.start
            step = plan.step
            idx = plan.idx
            # Same eligibility as elapsed_commands(): the boundary passed
            # the first unsettled command and at least one more elapsed.
            if upto <= start + idx * step:
                continue
            j = (upto - 1 - start) // step + 1
            if j > plan.count:
                j = plan.count
            if j > idx:
                controller._apply_settlement(plan, j)
        if profile:
            PROFILE.add("settle", clock() - t0)
