"""Closed-form burst settlement as array arithmetic over whole plans.

A burst plan (see :class:`repro.nda.controller._BurstPlan`) schedules ``K``
NDA column commands at a fixed cadence; settlement applies the timing
effects of the elapsed prefix in closed form.  The kernel evaluates the
settlement **across all live plans of a channel at once**:

* :func:`elapsed_commands` — the per-plan count of commands strictly before
  the settlement boundary, as pure array arithmetic;
* :func:`settlement_horizons` — the terminal bus-occupancy and
  precharge-horizon values a settled prefix produces, vectorized over plans;
* :class:`KernelBurstSettler` — the channel's ``burst_settler`` hook: one
  vector pass decides which plans have elapsed commands, then each selected
  plan's state is applied through the *scalar* single-writer
  (``NdaRankController._apply_settlement``), so the mutation code path is
  shared with the Python backend and cannot diverge from it.

The pure functions are the micro-oracle surface: tests diff them against a
brute-force per-command replay and against the scalar settlement's state
delta on randomized plans.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.kernel.profile import PROFILE, clock

#: Gather sentinel for ranks with no live plan: makes every eligibility
#: comparison false without a separate mask.
_NO_PLAN_START = 1 << 62


def elapsed_commands(start, step, idx, count, upto):
    """Per-plan settled command count at boundary ``upto`` (array form).

    A plan's command ``i`` issues at ``start + i * step``; the settled count
    is how many of its ``count`` commands issue strictly before ``upto``,
    never less than the already-settled ``idx``.  Mirrors the scalar
    computation in ``NdaRankController.settle_burst``.
    """
    j = (upto - 1 - start) // step + 1
    return np.maximum(np.minimum(j, count), idx)


def settlement_horizons(start, step, j, is_write, *, tCL, tCWL, tBL, tRTP,
                        write_to_precharge):
    """Terminal timing horizons of settled plan prefixes (array form).

    Returns ``(c_last, bus_free, pre_allowed)`` per plan: the last settled
    command's cycle, the rank-internal bus-free horizon it leaves behind and
    the bank's precharge horizon (tRTP after a read, write recovery after a
    write).  Only meaningful where ``j > 0``.
    """
    c_last = start + (j - 1) * step
    bus = c_last + np.where(is_write, tCWL, tCL) + tBL
    pre = c_last + np.where(is_write, write_to_precharge, tRTP)
    return c_last, bus, pre


class KernelBurstSettler:
    """Vectorized ``burst_settler`` for one channel's NDA rank controllers."""

    __slots__ = ("controllers", "_start", "_step", "_idx", "_count")

    def __init__(self, controllers: List) -> None:
        self.controllers = list(controllers)
        n = len(self.controllers)
        self._start = np.zeros(n, dtype=np.int64)
        self._step = np.ones(n, dtype=np.int64)
        self._idx = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)

    def __call__(self, upto: int) -> None:
        if PROFILE.enabled:
            t0 = clock()
        start = self._start
        step = self._step
        idx = self._idx
        count = self._count
        for k, controller in enumerate(self.controllers):
            plan = controller._plan
            if plan is None:
                start[k] = _NO_PLAN_START
                step[k] = 1
                idx[k] = 0
                count[k] = 0
            else:
                start[k] = plan.start
                step[k] = plan.step
                idx[k] = plan.idx
                count[k] = plan.count
        # Eligibility in one pass: a plan needs settlement iff the boundary
        # passed its first unsettled command and at least one more command
        # elapsed.  (No-plan ranks fail both via the sentinel start.)
        need = upto > start + idx * step
        if not need.any():
            if PROFILE.enabled:
                PROFILE.add("settle", clock() - t0)
            return
        j = elapsed_commands(start, step, idx, count, upto)
        need &= j > idx
        selected = np.nonzero(need)[0]
        if PROFILE.enabled:
            PROFILE.add("settle", clock() - t0)
        for k in selected:
            controller = self.controllers[k]
            controller._apply_settlement(controller._plan, int(j[k]))
