"""Per-primitive wall-time attribution for the kernel backend.

``bench_engine.py --profile`` (kernel backend) enables this collector and
reports where kernel time goes, split by vector primitive:

* ``pack``    — spec→array packing and per-scan constraint-table rebuilds;
* ``scan``    — the batched FR-FCFS vector pass (class masks, horizon max,
  winner reductions);
* ``settle``  — closed-form burst settlement arithmetic over whole plans;
* ``scatter`` — masked scatter application of issue/refresh effects;
* ``cscan``   — FR-FCFS scans dispatched to the compiled core's
  ``repro_scan`` (one C call instead of the numpy pass);
* ``step_setup`` — stepper window entry: the steppable-phase predicate,
  cursor seeding and burst-plan mirror sync;
* ``step_run``  — the resident multi-cycle loop itself (``repro_step`` or
  its pure-Python twin);
* ``step_exit`` — window exit: retry-cursor writeback into the issue hints
  and channel re-poll marking.

The collector is off by default and the hot paths guard every measurement
with a single attribute check (``if _PROFILE.enabled:``), so the kernel pays
one branch per primitive call when profiling is disabled.
"""

from __future__ import annotations

import time
from typing import Dict

PRIMITIVES = ("pack", "scan", "settle", "scatter",
              "cscan", "step_setup", "step_run", "step_exit")


class KernelProfile:
    """Accumulates (calls, seconds) per kernel primitive."""

    __slots__ = ("enabled", "seconds", "calls")

    def __init__(self) -> None:
        self.enabled = False
        self.seconds: Dict[str, float] = {name: 0.0 for name in PRIMITIVES}
        self.calls: Dict[str, int] = {name: 0 for name in PRIMITIVES}

    def reset(self) -> None:
        for name in PRIMITIVES:
            self.seconds[name] = 0.0
            self.calls[name] = 0

    def add(self, primitive: str, seconds: float) -> None:
        self.seconds[primitive] += seconds
        self.calls[primitive] += 1

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"calls": self.calls[name], "seconds": self.seconds[name]}
            for name in PRIMITIVES
        }


#: Process-wide collector: every kernel instance reports here.  Benchmarks
#: enable it around a measured run and read :meth:`KernelProfile.snapshot`.
PROFILE = KernelProfile()

#: Monotonic clock used for the measurements (alias so the hot paths bind it
#: locally).
clock = time.perf_counter
