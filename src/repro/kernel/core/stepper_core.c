/* Resident multi-cycle stepper core for the kernel backend.
 *
 * Compiled to a small shared library (see build.py) and driven through
 * ctypes over a flat int64 context table whose layout is generated from
 * layout.py (repro_core_layout.h is written next to this file at build
 * time).  Three entry points:
 *
 *   repro_core_abi()   -- the layout checksum baked in at compile time;
 *                         the loader refuses a library whose ABI differs
 *                         from the current layout.py.
 *   repro_scan()       -- one FR-FCFS scan of one (channel, queue) at one
 *                         cycle: a line-by-line transliteration of the
 *                         numpy scan (KernelFrFcfsScheduler._build_tables
 *                         + _select_bucketed), which is itself the lock-
 *                         step twin of the scalar law.  Returns the winner
 *                         slot/kind, the horizon, and the at-horizon
 *                         future winner, exactly as the numpy scan does.
 *   repro_step()       -- the resident loop: advance cycle by cycle from
 *                         t_start toward t_end, settling each channel's
 *                         burst-plan prefixes (the _apply_settlement state
 *                         law, minus the Python-side version bumps, which
 *                         the caller replays) and scanning both queues of
 *                         every due channel, returning at the first cycle
 *                         any channel has an issuable request.  Between
 *                         scans it fast-forwards straight to the earliest
 *                         per-channel retry cursor (next_try), so a whole
 *                         window of no-op cycles costs one C call.
 *
 * Everything is plain int64 arithmetic on caller-owned arrays: no Python.h,
 * no allocation, no libc calls beyond what the compiler inlines.
 */

#include <stdint.h>

#include "repro_core_layout.h"

typedef int64_t i64;
typedef uint8_t u8;

#define PTR(ctx, cell) ((i64 *)(uintptr_t)(ctx)[cell])
#define PTRU8(ctx, cell) ((u8 *)(uintptr_t)(ctx)[cell])

/* Neutral element for absent constraints (mirror of scan.py's _NEUTRAL). */
#define NEUTRAL (-(((i64)1) << 50))

i64 repro_core_abi(void) { return (i64)REPRO_CORE_ABI; }

static i64 imax(i64 a, i64 b) { return a > b ? a : b; }

/* ------------------------------------------------------------------ */
/* FR-FCFS scan of one (channel, queue) at cycle `now`.                */
/* out[0] choice slot (-1 none)   out[1] choice kind                   */
/* out[2] horizon                 out[3] future slot (-1 none)         */
/* out[4] future kind                                                  */
/* ------------------------------------------------------------------ */
void repro_scan(const i64 *ctx, i64 channel, i64 qsel, i64 now, i64 *out)
{
    const i64 no_event = ctx[CTX_NO_EVENT];
    out[0] = -1; out[1] = -1; out[2] = no_event; out[3] = -1; out[4] = -1;

    const i64 *q = ctx + CTX_QUEUE_BASE + (2 * channel + qsel) * CTX_QUEUE_STRIDE;
    const i64 capacity = q[Q_CAPACITY];
    const u8 *alive = (const u8 *)(uintptr_t)q[Q_ALIVE];

    const i64 R = ctx[CTX_RANKS_PER_CHANNEL];
    const i64 BG = ctx[CTX_BANK_GROUPS];
    const i64 first = channel * R;

    const i64 tCL = ctx[CTX_TCL], tCWL = ctx[CTX_TCWL];
    const i64 tCCDS = ctx[CTX_TCCDS], tCCDL = ctx[CTX_TCCDL];
    const i64 tWTRS = ctx[CTX_TWTRS], tWTRL = ctx[CTX_TWTRL];
    const i64 tRTRS = ctx[CTX_TRTRS], tFAW = ctx[CTX_TFAW];
    const i64 wr_to_rd = ctx[CTX_WR_TO_RD];
    const i64 read_to_write = ctx[CTX_READ_TO_WRITE];

    const i64 *r_act = PTR(ctx, CTX_RANK_ACT_ALLOWED);
    const i64 *r_refreshing = PTR(ctx, CTX_RANK_REFRESHING_UNTIL);
    const i64 *r_last_read = PTR(ctx, CTX_RANK_LAST_READ);
    const i64 *r_last_read_bg = PTR(ctx, CTX_RANK_LAST_READ_BG);
    const i64 *r_last_write = PTR(ctx, CTX_RANK_LAST_WRITE);
    const i64 *r_last_write_bg = PTR(ctx, CTX_RANK_LAST_WRITE_BG);
    const i64 *r_host_read = PTR(ctx, CTX_RANK_LAST_HOST_READ);
    const i64 *r_nda_read = PTR(ctx, CTX_RANK_LAST_NDA_READ);
    const i64 *r_actbg = PTR(ctx, CTX_RANK_ACTBG);
    const i64 *r_faw = PTR(ctx, CTX_RANK_FAW);
    const i64 *r_faw_len = PTR(ctx, CTX_RANK_FAW_LEN);
    const i64 *r_faw_head = PTR(ctx, CTX_RANK_FAW_HEAD);

    const i64 data_bus_free = PTR(ctx, CTX_CHAN_DATA_BUS_FREE)[channel];
    const i64 last_col_rank = PTR(ctx, CTX_CHAN_LAST_COL_RANK)[channel];
    const i64 last_data_end = PTR(ctx, CTX_CHAN_LAST_DATA_END)[channel];

    /* Constraint tables, bit-for-bit the numpy _build_tables law. */
    i64 act_tbl[R * BG], col_rd[R * BG], col_wr[R * BG], refresh_tbl[R];
    for (i64 r = 0; r < R; r++) {
        const i64 gr = first + r;
        const i64 refreshing = r_refreshing[gr];
        refresh_tbl[r] = refreshing;
        i64 act_base = refreshing;
        if (r_act[gr] > act_base) act_base = r_act[gr];
        if (r_faw_len[gr] == 4) {
            const i64 faw = r_faw[gr * 4 + r_faw_head[gr]] + tFAW;
            if (faw > act_base) act_base = faw;
        }
        const i64 lr = r_last_read[gr], lrbg = r_last_read_bg[gr];
        const i64 lw = r_last_write[gr], lwbg = r_last_write_bg[gr];
        const i64 host_rd = r_host_read[gr] + read_to_write;
        const i64 nda_rd = r_nda_read[gr] + tCCDS;
        const i64 bus_rd = data_bus_free - tCL;
        const i64 bus_wr = data_bus_free - tCWL;
        i64 switch_rd = NEUTRAL, switch_wr = NEUTRAL;
        if (last_col_rank != -1 && last_col_rank != r) {
            switch_rd = last_data_end + tRTRS - tCL;
            switch_wr = last_data_end + tRTRS - tCWL;
        }
        for (i64 g = 0; g < BG; g++) {
            act_tbl[r * BG + g] = imax(r_actbg[gr * BG + g], act_base);
            i64 rd = lr + (g == lrbg ? tCCDL : tCCDS);
            const i64 wtr = lw + wr_to_rd + (g == lwbg ? tWTRL : tWTRS);
            if (wtr > rd) rd = wtr;
            if (refreshing > rd) rd = refreshing;
            if (bus_rd > rd) rd = bus_rd;
            if (switch_rd > rd) rd = switch_rd;
            col_rd[r * BG + g] = rd;
            i64 wr = lw + (g == lwbg ? tCCDL : tCCDS);
            if (host_rd > wr) wr = host_rd;
            if (nda_rd > wr) wr = nda_rd;
            if (refreshing > wr) wr = refreshing;
            if (bus_wr > wr) wr = bus_wr;
            if (switch_wr > wr) wr = switch_wr;
            col_wr[r * BG + g] = wr;
        }
    }

    const i64 *q_bank = (const i64 *)(uintptr_t)q[Q_BANK_IDX];
    const i64 *q_rankbg = (const i64 *)(uintptr_t)q[Q_RANKBG_IDX];
    const i64 *q_rank_local = (const i64 *)(uintptr_t)q[Q_RANK_LOCAL];
    const i64 *q_row = (const i64 *)(uintptr_t)q[Q_ROW];
    const i64 *q_seq = (const i64 *)(uintptr_t)q[Q_SEQ];
    const u8 *q_is_write = (const u8 *)(uintptr_t)q[Q_IS_WRITE];

    const i64 *bank_act = PTR(ctx, CTX_BANK_ACT);
    const i64 *bank_pre = PTR(ctx, CTX_BANK_PRE);
    const i64 *bank_rd = PTR(ctx, CTX_BANK_RD);
    const i64 *bank_wr = PTR(ctx, CTX_BANK_WR);
    const i64 *open_row = PTR(ctx, CTX_OPEN_ROW);

    /* Per-slot class (0 dead, 1 hit, 2 closed, 3 conflict) and earliest
     * issue cycle, plus the issuable winners and the pending horizon, in
     * one pass. */
    u8 cls[capacity];
    i64 earliest[capacity];
    i64 best_hit_seq = no_event, best_hit_slot = -1;
    i64 best_fb_seq = no_event, best_fb_slot = -1, best_fb_closed = 0;
    i64 horizon = no_event;
    for (i64 s = 0; s < capacity; s++) {
        if (!alive[s]) { cls[s] = 0; continue; }
        const i64 bank = q_bank[s];
        const i64 rbg = q_rankbg[s];
        const i64 row_open = open_row[bank];
        i64 e;
        u8 c;
        if (row_open == q_row[s]) {
            c = 1;
            e = imax(q_is_write[s] ? col_wr[rbg] : col_rd[rbg],
                     q_is_write[s] ? bank_wr[bank] : bank_rd[bank]);
        } else if (row_open == -1) {
            c = 2;
            e = imax(bank_act[bank], act_tbl[rbg]);
        } else {
            c = 3;
            e = imax(bank_pre[bank], refresh_tbl[q_rank_local[s]]);
        }
        if (e < now) e = now;
        cls[s] = c;
        earliest[s] = e;
        if (e <= now) {
            const i64 seq = q_seq[s];
            if (c == 1) {
                if (seq < best_hit_seq) { best_hit_seq = seq; best_hit_slot = s; }
            } else if (seq < best_fb_seq) {
                best_fb_seq = seq; best_fb_slot = s; best_fb_closed = (c == 2);
            }
        } else if (e < horizon) {
            horizon = e;
        }
    }

    if (best_hit_slot >= 0) {
        out[0] = best_hit_slot;
        out[1] = q_is_write[best_hit_slot] ? K_WR : K_RD;
        return;                                   /* horizon = no_event */
    }
    out[2] = horizon;
    if (best_fb_slot >= 0) {
        out[0] = best_fb_slot;
        out[1] = best_fb_closed ? K_ACT : K_PRE;
        return;
    }
    if (horizon >= no_event) return;              /* nothing pending */

    /* At-horizon future winner: oldest pending at the horizon, row hits
     * preferred (the pool switches to hits-only once one is seen). */
    i64 best_seq = no_event, best_slot = -1, have_hit = 0;
    u8 best_cls = 0;
    for (i64 s = 0; s < capacity; s++) {
        if (cls[s] == 0 || earliest[s] != horizon) continue;
        const i64 is_hit = (cls[s] == 1);
        if (have_hit && !is_hit) continue;
        if (is_hit && !have_hit) { have_hit = 1; best_seq = no_event; }
        if (q_seq[s] < best_seq) {
            best_seq = q_seq[s];
            best_slot = s;
            best_cls = cls[s];
        }
    }
    out[3] = best_slot;
    out[4] = best_cls == 1 ? (q_is_write[best_slot] ? K_WR : K_RD)
           : best_cls == 2 ? K_ACT : K_PRE;
}

/* ------------------------------------------------------------------ */
/* Burst-plan settlement for one channel's ranks up to (exclusive)     */
/* `upto`: the _apply_settlement state law.  Python-side version bumps */
/* are deliberately absent; the caller replays settlement through the  */
/* scalar single-writer before any Python-side read (idempotent maxes, */
/* so the replay lands on identical state and adds the bumps).         */
/* ------------------------------------------------------------------ */
static void settle_channel(const i64 *ctx, i64 channel, i64 upto)
{
    const i64 R = ctx[CTX_RANKS_PER_CHANNEL];
    const i64 first = channel * R;
    const i64 *active = PTR(ctx, CTX_PLAN_ACTIVE);
    i64 *p_idx = PTR(ctx, CTX_PLAN_IDX);
    const i64 *p_start = PTR(ctx, CTX_PLAN_START);
    const i64 *p_step = PTR(ctx, CTX_PLAN_STEP);
    const i64 *p_count = PTR(ctx, CTX_PLAN_COUNT);
    const i64 *p_is_write = PTR(ctx, CTX_PLAN_IS_WRITE);
    const i64 *p_bank_index = PTR(ctx, CTX_PLAN_BANK_INDEX);
    const i64 *p_bank_group = PTR(ctx, CTX_PLAN_BANK_GROUP);
    i64 *r_last_read = PTR(ctx, CTX_RANK_LAST_READ);
    i64 *r_last_read_bg = PTR(ctx, CTX_RANK_LAST_READ_BG);
    i64 *r_last_write = PTR(ctx, CTX_RANK_LAST_WRITE);
    i64 *r_last_write_bg = PTR(ctx, CTX_RANK_LAST_WRITE_BG);
    i64 *r_last_nda_read = PTR(ctx, CTX_RANK_LAST_NDA_READ);
    i64 *r_nda_bus_free = PTR(ctx, CTX_RANK_NDA_BUS_FREE);
    i64 *bank_pre = PTR(ctx, CTX_BANK_PRE);
    const i64 tCL = ctx[CTX_TCL], tCWL = ctx[CTX_TCWL], tBL = ctx[CTX_TBL];
    const i64 tRTP = ctx[CTX_TRTP];
    const i64 write_to_precharge = ctx[CTX_WRITE_TO_PRECHARGE];

    for (i64 r = first; r < first + R; r++) {
        if (!active[r]) continue;
        const i64 start = p_start[r], step = p_step[r];
        const i64 idx = p_idx[r], count = p_count[r];
        if (upto <= start + idx * step) continue;
        i64 j = (upto - 1 - start) / step + 1;
        if (j > count) j = count;
        if (j <= idx) continue;
        const i64 c_last = start + (j - 1) * step;
        const i64 bank = p_bank_index[r];
        if (p_is_write[r]) {
            if (c_last > r_last_write[r]) {
                r_last_write[r] = c_last;
                r_last_write_bg[r] = p_bank_group[r];
            }
            const i64 bus = c_last + tCWL + tBL;
            if (bus > r_nda_bus_free[r]) r_nda_bus_free[r] = bus;
            const i64 pre = c_last + write_to_precharge;
            if (pre > bank_pre[bank]) bank_pre[bank] = pre;
        } else {
            if (c_last > r_last_read[r]) {
                r_last_read[r] = c_last;
                r_last_read_bg[r] = p_bank_group[r];
            }
            if (c_last > r_last_nda_read[r]) r_last_nda_read[r] = c_last;
            const i64 bus = c_last + tCL + tBL;
            if (bus > r_nda_bus_free[r]) r_nda_bus_free[r] = bus;
            const i64 pre = c_last + tRTP;
            if (pre > bank_pre[bank]) bank_pre[bank] = pre;
        }
        p_idx[r] = j;
    }
}

/* ------------------------------------------------------------------ */
/* The resident loop.  Returns 0 when [t_start, t_end) is issue-free   */
/* (t_end reached), 1 at the first cycle any channel has an issuable   */
/* host request, with the full detection evidence so the caller can    */
/* prime the channel's Python-side scan memo instead of re-scanning:   */
/*                                                                     */
/*   out[0] cycle      out[1] channel   out[2] qsel of the winner      */
/*   out[3..7] the winning queue's scan result (slot, kind, horizon,   */
/*             future slot, future kind — the repro_scan contract)     */
/*   out[8..10] when qsel==1: the read queue's same-cycle scan         */
/*              (horizon, future slot, future kind; no winner by       */
/*              construction), so both memos can be primed             */
/*                                                                     */
/* next_try[] carries the per-channel retry cursors across the window  */
/* (and back to the caller: every value is a sound "no issue before"   */
/* bound).                                                             */
/* ------------------------------------------------------------------ */
i64 repro_step(const i64 *ctx, i64 t_start, i64 t_end, i64 *out)
{
    const i64 C = ctx[CTX_CHANNELS];
    i64 *next_try = PTR(ctx, CTX_NEXT_TRY);
    i64 scan_out[5];
    i64 t = t_start;
    while (t < t_end) {
        i64 min_next = t_end;
        for (i64 ch = 0; ch < C; ch++) {
            if (next_try[ch] > t) {
                if (next_try[ch] < min_next) min_next = next_try[ch];
                continue;
            }
            settle_channel(ctx, ch, t);
            repro_scan(ctx, ch, 0, t, scan_out);
            if (scan_out[0] >= 0) {
                out[0] = t; out[1] = ch; out[2] = 0;
                out[3] = scan_out[0]; out[4] = scan_out[1];
                out[5] = scan_out[2]; out[6] = scan_out[3];
                out[7] = scan_out[4];
                return 1;
            }
            i64 horizon = scan_out[2];
            const i64 rd_h = scan_out[2];
            const i64 rd_fs = scan_out[3], rd_fk = scan_out[4];
            repro_scan(ctx, ch, 1, t, scan_out);
            if (scan_out[0] >= 0) {
                out[0] = t; out[1] = ch; out[2] = 1;
                out[3] = scan_out[0]; out[4] = scan_out[1];
                out[5] = scan_out[2]; out[6] = scan_out[3];
                out[7] = scan_out[4];
                out[8] = rd_h; out[9] = rd_fs; out[10] = rd_fk;
                return 1;
            }
            if (scan_out[2] < horizon) horizon = scan_out[2];
            if (horizon < t + 1) horizon = t + 1;
            next_try[ch] = horizon;
            if (horizon < min_next) min_next = horizon;
        }
        t = min_next;
    }
    return 0;
}
