"""Pure-Python twin of the compiled stepper core.

Same state, same laws, no C: these functions run the scan/settle/step logic
of ``stepper_core.c`` line for line over the *same* numpy arrays, reading
and writing them elementwise.  They are the always-available fallback rung
of the ladder (compiled → pure-Python stepper → scalar engine) and the
differential oracle the tests drive against the compiled library: both
implementations consume a :class:`CoreState`, so any divergence is a bug in
the transliteration, not in the harness.

Being a fused multi-cycle loop, the Python stepper still amortizes the
per-cycle engine machinery (calendar reads, component dispatch) even though
each scan is a Python-level slot loop; its throughput is benchmarked
honestly as the ``kernel+pystepper`` variant in BENCH_engine.json.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernel.core.layout import KIND_ACT, KIND_PRE, KIND_RD, KIND_WR

#: Neutral element for absent constraints (mirror of scan.py's _NEUTRAL).
_NEUTRAL = -(1 << 50)


class QueueBlock:
    """One (channel, queue) slot-column view driven by the core."""

    __slots__ = ("bank_idx", "rankbg_idx", "rank_local", "row", "seq",
                 "is_write", "alive", "capacity", "requests")

    def __init__(self, arrays) -> None:
        self.bank_idx = arrays.bank_idx
        self.rankbg_idx = arrays.rankbg_idx
        self.rank_local = arrays.rank_local
        self.row = arrays.row
        self.seq = arrays.seq
        self.is_write = arrays.is_write
        self.alive = arrays.alive
        self.capacity = len(arrays.alive)
        self.requests = arrays.requests


class CoreState:
    """Everything the stepper core reads/writes, as named array references.

    The compiled library sees the same state through the flat pointer table
    (:mod:`repro.kernel.core.layout`); this object is the Python-side handle
    both for building that table and for running the pure-Python twin.
    """

    __slots__ = (
        "channels", "ranks_per_channel", "bank_groups", "no_event",
        "tCL", "tCWL", "tBL", "tCCDS", "tCCDL", "tWTRS", "tWTRL", "tRTRS",
        "wr_to_rd", "read_to_write", "tFAW", "tRTP", "write_to_precharge",
        "bank_act", "bank_pre", "bank_rd", "bank_wr", "open_row",
        "rank_act_allowed", "rank_refreshing_until",
        "rank_last_read", "rank_last_read_bg",
        "rank_last_write", "rank_last_write_bg",
        "rank_last_host_read", "rank_last_nda_read", "rank_nda_bus_free",
        "rank_actbg", "rank_faw", "rank_faw_len", "rank_faw_head",
        "chan_data_bus_free", "chan_last_col_rank", "chan_last_data_end",
        "next_try",
        "plan_active", "plan_start", "plan_step", "plan_idx", "plan_count",
        "plan_is_write", "plan_bank_index", "plan_bank_group",
        "queues",
    )

    queues: List[List[QueueBlock]]


def py_scan(state: CoreState, channel: int, qsel: int, now: int,
            ) -> Tuple[int, int, int, Optional[int], int]:
    """One FR-FCFS scan: (choice_slot, choice_kind, horizon, future_slot,
    future_kind), slots -1 when absent — the repro_scan contract."""
    no_event = state.no_event
    queue = state.queues[channel][qsel]
    alive = queue.alive
    capacity = queue.capacity

    R = state.ranks_per_channel
    BG = state.bank_groups
    first = channel * R
    tCL = state.tCL
    tCWL = state.tCWL
    tCCDS = state.tCCDS
    tCCDL = state.tCCDL

    data_bus_free = int(state.chan_data_bus_free[channel])
    last_col_rank = int(state.chan_last_col_rank[channel])
    last_data_end = int(state.chan_last_data_end[channel])

    act_tbl = [0] * (R * BG)
    col_rd = [0] * (R * BG)
    col_wr = [0] * (R * BG)
    refresh_tbl = [0] * R
    for r in range(R):
        gr = first + r
        refreshing = int(state.rank_refreshing_until[gr])
        refresh_tbl[r] = refreshing
        act_base = refreshing
        act_allowed = int(state.rank_act_allowed[gr])
        if act_allowed > act_base:
            act_base = act_allowed
        if state.rank_faw_len[gr] == 4:
            head = int(state.rank_faw_head[gr])
            faw = int(state.rank_faw[gr, head]) + state.tFAW
            if faw > act_base:
                act_base = faw
        lr = int(state.rank_last_read[gr])
        lrbg = int(state.rank_last_read_bg[gr])
        lw = int(state.rank_last_write[gr])
        lwbg = int(state.rank_last_write_bg[gr])
        host_rd = int(state.rank_last_host_read[gr]) + state.read_to_write
        nda_rd = int(state.rank_last_nda_read[gr]) + tCCDS
        bus_rd = data_bus_free - tCL
        bus_wr = data_bus_free - tCWL
        switch_rd = switch_wr = _NEUTRAL
        if last_col_rank != -1 and last_col_rank != r:
            switch_rd = last_data_end + state.tRTRS - tCL
            switch_wr = last_data_end + state.tRTRS - tCWL
        actbg_row = state.rank_actbg[gr]
        for g in range(BG):
            entry = int(actbg_row[g])
            act_tbl[r * BG + g] = entry if entry > act_base else act_base
            rd = lr + (tCCDL if g == lrbg else tCCDS)
            wtr = lw + state.wr_to_rd + (state.tWTRL if g == lwbg
                                         else state.tWTRS)
            if wtr > rd:
                rd = wtr
            if refreshing > rd:
                rd = refreshing
            if bus_rd > rd:
                rd = bus_rd
            if switch_rd > rd:
                rd = switch_rd
            col_rd[r * BG + g] = rd
            wr = lw + (tCCDL if g == lwbg else tCCDS)
            if host_rd > wr:
                wr = host_rd
            if nda_rd > wr:
                wr = nda_rd
            if refreshing > wr:
                wr = refreshing
            if bus_wr > wr:
                wr = bus_wr
            if switch_wr > wr:
                wr = switch_wr
            col_wr[r * BG + g] = wr

    bank_act = state.bank_act
    bank_pre = state.bank_pre
    bank_rd = state.bank_rd
    bank_wr = state.bank_wr
    open_row = state.open_row
    q_bank = queue.bank_idx
    q_rankbg = queue.rankbg_idx
    q_rank_local = queue.rank_local
    q_row = queue.row
    q_seq = queue.seq
    q_is_write = queue.is_write

    cls = [0] * capacity
    earliest = [0] * capacity
    best_hit_seq = no_event
    best_hit_slot = -1
    best_fb_seq = no_event
    best_fb_slot = -1
    best_fb_closed = False
    horizon = no_event
    for s in range(capacity):
        if not alive[s]:
            continue
        bank = int(q_bank[s])
        rbg = int(q_rankbg[s])
        row_open = int(open_row[bank])
        if row_open == q_row[s]:
            c = 1
            if q_is_write[s]:
                e = max(col_wr[rbg], int(bank_wr[bank]))
            else:
                e = max(col_rd[rbg], int(bank_rd[bank]))
        elif row_open == -1:
            c = 2
            e = max(int(bank_act[bank]), act_tbl[rbg])
        else:
            c = 3
            e = max(int(bank_pre[bank]), refresh_tbl[int(q_rank_local[s])])
        if e < now:
            e = now
        cls[s] = c
        earliest[s] = e
        if e <= now:
            seq = int(q_seq[s])
            if c == 1:
                if seq < best_hit_seq:
                    best_hit_seq = seq
                    best_hit_slot = s
            elif seq < best_fb_seq:
                best_fb_seq = seq
                best_fb_slot = s
                best_fb_closed = c == 2
        elif e < horizon:
            horizon = e

    if best_hit_slot >= 0:
        kind = KIND_WR if q_is_write[best_hit_slot] else KIND_RD
        return best_hit_slot, kind, no_event, -1, -1
    if best_fb_slot >= 0:
        kind = KIND_ACT if best_fb_closed else KIND_PRE
        return best_fb_slot, kind, horizon, -1, -1
    if horizon >= no_event:
        return -1, -1, no_event, -1, -1

    best_seq = no_event
    best_slot = -1
    best_cls = 0
    have_hit = False
    for s in range(capacity):
        if cls[s] == 0 or earliest[s] != horizon:
            continue
        is_hit = cls[s] == 1
        if have_hit and not is_hit:
            continue
        if is_hit and not have_hit:
            have_hit = True
            best_seq = no_event
        seq = int(q_seq[s])
        if seq < best_seq:
            best_seq = seq
            best_slot = s
            best_cls = cls[s]
    if best_cls == 1:
        future_kind = KIND_WR if q_is_write[best_slot] else KIND_RD
    elif best_cls == 2:
        future_kind = KIND_ACT
    else:
        future_kind = KIND_PRE
    return -1, -1, horizon, best_slot, future_kind


def py_settle_channel(state: CoreState, channel: int, upto: int) -> None:
    """Burst-plan settlement for one channel's ranks (state law only —
    version-bump replay is the Python caller's job, as with the C core)."""
    R = state.ranks_per_channel
    first = channel * R
    active = state.plan_active
    p_idx = state.plan_idx
    for r in range(first, first + R):
        if not active[r]:
            continue
        start = int(state.plan_start[r])
        step = int(state.plan_step[r])
        idx = int(p_idx[r])
        count = int(state.plan_count[r])
        if upto <= start + idx * step:
            continue
        j = (upto - 1 - start) // step + 1
        if j > count:
            j = count
        if j <= idx:
            continue
        c_last = start + (j - 1) * step
        bank = int(state.plan_bank_index[r])
        if state.plan_is_write[r]:
            if c_last > state.rank_last_write[r]:
                state.rank_last_write[r] = c_last
                state.rank_last_write_bg[r] = state.plan_bank_group[r]
            bus = c_last + state.tCWL + state.tBL
            if bus > state.rank_nda_bus_free[r]:
                state.rank_nda_bus_free[r] = bus
            pre = c_last + state.write_to_precharge
            if pre > state.bank_pre[bank]:
                state.bank_pre[bank] = pre
        else:
            if c_last > state.rank_last_read[r]:
                state.rank_last_read[r] = c_last
                state.rank_last_read_bg[r] = state.plan_bank_group[r]
            if c_last > state.rank_last_nda_read[r]:
                state.rank_last_nda_read[r] = c_last
            bus = c_last + state.tCL + state.tBL
            if bus > state.rank_nda_bus_free[r]:
                state.rank_nda_bus_free[r] = bus
            pre = c_last + state.tRTP
            if pre > state.bank_pre[bank]:
                state.bank_pre[bank] = pre
        p_idx[r] = j


def py_step(state: CoreState, t_start: int, t_end: int, out) -> int:
    """The resident loop — repro_step's exact contract.

    Returns 0 when ``[t_start, t_end)`` is issue-free; returns 1 at the
    first issuable host request and fills ``out`` (any int64 sequence of
    >= 11 cells) with the detection evidence: cycle, channel, winning
    qsel, the winning queue's scan tuple (slot, kind, horizon, future
    slot, future kind), and — when the write queue won — the read queue's
    same-cycle scan (horizon, future slot, future kind), so the caller can
    prime the channel's scan memos instead of re-scanning.  The cursor
    state is equally carried in ``state.next_try``.
    """
    C = state.channels
    next_try = state.next_try
    t = t_start
    while t < t_end:
        min_next = t_end
        for ch in range(C):
            cursor = int(next_try[ch])
            if cursor > t:
                if cursor < min_next:
                    min_next = cursor
                continue
            py_settle_channel(state, ch, t)
            slot, kind, horizon, fslot, fkind = py_scan(state, ch, 0, t)
            if slot >= 0:
                out[0] = t
                out[1] = ch
                out[2] = 0
                out[3] = slot
                out[4] = kind
                out[5] = horizon
                out[6] = fslot
                out[7] = fkind
                return 1
            rd_h, rd_fs, rd_fk = horizon, fslot, fkind
            slot, kind, h_write, fslot, fkind = py_scan(state, ch, 1, t)
            if slot >= 0:
                out[0] = t
                out[1] = ch
                out[2] = 1
                out[3] = slot
                out[4] = kind
                out[5] = h_write
                out[6] = fslot
                out[7] = fkind
                out[8] = rd_h
                out[9] = rd_fs
                out[10] = rd_fk
                return 1
            if h_write < horizon:
                horizon = h_write
            if horizon < t + 1:
                horizon = t + 1
            next_try[ch] = horizon
            if horizon < min_next:
                min_next = horizon
        t = min_next
    return 0
