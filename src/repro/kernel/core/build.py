"""On-demand C build of the stepper core (no toolchain → graceful absence).

mypyc/Cython are not part of this project's baked toolchain, so the
compiled core is plain C99 built with whatever system C compiler is
available (``cc``/``gcc``/``clang``, overridable via ``REPRO_CC``).  The
build is lazy and cached:

* the generated layout header (:func:`repro.kernel.core.layout.header_text`)
  and ``stepper_core.c`` are hashed together into a cache key, so editing
  either source (or the layout) rebuilds automatically while repeat runs
  reuse the cached library;
* the library lands in ``REPRO_CORE_CACHE`` if set, else
  ``~/.cache/repro-core``, falling back to a temp directory when neither is
  writable;
* every failure (no compiler, compile error, unwritable filesystem) raises
  with the tool's output attached — the loader turns that into a
  ``compiled_unavailable_reason()`` and the pure-Python paths take over.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.kernel.core import layout

_C_SOURCE = Path(__file__).with_name("stepper_core.c")


def _compiler() -> str:
    override = os.environ.get("REPRO_CC", "")
    if override:
        return override
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    raise RuntimeError(
        "no C compiler found (tried cc, gcc, clang; set REPRO_CC to "
        "override) — the compiled stepper core is unavailable")


def _cache_dir() -> Path:
    configured = os.environ.get("REPRO_CORE_CACHE", "")
    candidates = [Path(configured)] if configured else []
    candidates.append(Path.home() / ".cache" / "repro-core")
    candidates.append(Path(tempfile.gettempdir()) / "repro-core")
    for candidate in candidates:
        try:
            candidate.mkdir(parents=True, exist_ok=True)
            probe = candidate / ".write-probe"
            probe.write_text("")
            probe.unlink()
            return candidate
        except OSError:
            continue
    raise RuntimeError("no writable cache directory for the compiled core")


def build_library() -> Path:
    """Compile (or reuse) the stepper core; returns the shared-library path."""
    source = _C_SOURCE.read_text()
    header = layout.header_text()
    key = hashlib.sha256(
        (header + "\x00" + source).encode("utf-8")).hexdigest()[:16]
    cache = _cache_dir()
    library = cache / f"repro_core_{key}.so"
    if library.exists():
        return library
    compiler = _compiler()
    with tempfile.TemporaryDirectory(dir=cache) as workdir:
        work = Path(workdir)
        (work / "repro_core_layout.h").write_text(header)
        c_file = work / "stepper_core.c"
        c_file.write_text(source)
        out_file = work / library.name
        command = [compiler, "-O2", "-shared", "-fPIC", "-std=c99",
                   str(c_file), "-o", str(out_file)]
        result = subprocess.run(command, capture_output=True, text=True)
        if result.returncode != 0:
            raise RuntimeError(
                f"compiled-core build failed ({' '.join(command)}):\n"
                f"{result.stderr.strip() or result.stdout.strip()}")
        # Atomic publish: another process racing the same key lands the
        # identical artifact, so either rename winning is fine.
        os.replace(out_file, library)
    return library
