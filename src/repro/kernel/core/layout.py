"""The compiled core's context-table layout (single source of truth).

The compiled stepper core (``stepper_core.c``) and its pure-Python twin
(:mod:`repro.kernel.core.pycore`) both operate on one flat ``int64``
**context table**: a few geometry/timing scalars followed by raw data
pointers into the kernel backend's preallocated numpy arrays (bank timing
horizons, rank/channel timing scalars, per-queue slot columns, burst-plan
mirrors, per-channel scan cursors).  This module is the only place the
cell order is defined:

* Python builds the table with :func:`build_ctx` (pointer cells filled via
  ``ndarray.ctypes.data``, so the C side reads/writes the *same* memory the
  scalar views shim onto);
* the C side gets the indices as ``#define``s from :func:`header_text`,
  which the build step writes next to the C source before compiling;
* :data:`ABI` is a checksum of the whole layout description.  It is stamped
  into cell 0, baked into the compiled library (``repro_core_abi()``) and
  checked by the loader, so a stale cached ``.so`` from an older layout can
  never be driven with a newer table.

Cells fall into four groups, in order: scalars (:data:`SCALAR_CELLS`),
array pointers (:data:`POINTER_CELLS`), then per-(channel, queue) blocks of
:data:`QUEUE_CELLS` — two blocks per channel, read queue first — starting
at :data:`QUEUE_BASE`.
"""

from __future__ import annotations

import zlib
from typing import Dict, Mapping, Sequence

#: Value scalars at the head of the table.  ``abi`` is the layout checksum,
#: ``no_event`` the shared "never" sentinel (1 << 62), the rest are the
#: derived timing constants of the scalar law in
#: ``repro.dram.timing.TimingEngine`` (same names, same derivations).
SCALAR_CELLS = (
    "abi",
    "channels",
    "ranks_per_channel",
    "bank_groups",
    "no_event",
    "tCL",
    "tCWL",
    "tBL",
    "tCCDS",
    "tCCDL",
    "tWTRS",
    "tWTRL",
    "tRTRS",
    "wr_to_rd",
    "read_to_write",
    "tFAW",
    "tRTP",
    "write_to_precharge",
)

#: Raw-pointer cells (``ndarray.ctypes.data`` of int64 arrays unless noted).
#: ``bank_*``/``open_row`` index by dense bank index, ``rank_*``/``plan_*``
#: by global rank index (``rank_actbg`` is the flat (ranks, bank_groups)
#: table, ``rank_faw`` the flat (ranks, 4) tFAW ring), ``chan_*`` by
#: channel, ``next_try`` is the stepper's per-channel scan cursor.
POINTER_CELLS = (
    "bank_act",
    "bank_pre",
    "bank_rd",
    "bank_wr",
    "open_row",
    "rank_act_allowed",
    "rank_refreshing_until",
    "rank_last_read",
    "rank_last_read_bg",
    "rank_last_write",
    "rank_last_write_bg",
    "rank_last_host_read",
    "rank_last_nda_read",
    "rank_nda_bus_free",
    "rank_actbg",
    "rank_faw",
    "rank_faw_len",
    "rank_faw_head",
    "chan_data_bus_free",
    "chan_last_col_rank",
    "chan_last_data_end",
    "next_try",
    "plan_active",
    "plan_start",
    "plan_step",
    "plan_idx",
    "plan_count",
    "plan_is_write",
    "plan_bank_index",
    "plan_bank_group",
)

#: Per-(channel, queue) block: pointer cells into the queue's
#: ``_QueueArrays`` columns (``q_is_write``/``q_alive`` point at uint8/bool
#: storage) plus the slot capacity as a value cell.
QUEUE_CELLS = (
    "q_bank_idx",
    "q_rankbg_idx",
    "q_rank_local",
    "q_row",
    "q_seq",
    "q_is_write",
    "q_alive",
    "q_capacity",
)

QUEUE_BASE = len(SCALAR_CELLS) + len(POINTER_CELLS)
QUEUE_STRIDE = len(QUEUE_CELLS)

#: Command-kind codes shared between the core and Python (order matters:
#: the Python side maps them back to CommandType).
KIND_RD = 0
KIND_WR = 1
KIND_ACT = 2
KIND_PRE = 3

#: Layout checksum: any change to cell names/order/kind codes changes this,
#: invalidating cached compiled libraries via the loader's ABI check.
ABI = zlib.crc32(repr(
    (SCALAR_CELLS, POINTER_CELLS, QUEUE_CELLS,
     KIND_RD, KIND_WR, KIND_ACT, KIND_PRE)
).encode("ascii")) & 0x7FFFFFFF

#: Cell index by name (scalars and pointers; queue cells are block-relative).
INDEX: Dict[str, int] = {
    name: i for i, name in enumerate(SCALAR_CELLS + POINTER_CELLS)
}


def ctx_size(channels: int) -> int:
    """Total cell count of a context table for ``channels`` channels."""
    return QUEUE_BASE + 2 * channels * QUEUE_STRIDE


def queue_block(channel: int, qsel: int) -> int:
    """Base cell index of the (channel, queue) block (qsel 0=read, 1=write)."""
    return QUEUE_BASE + (2 * channel + qsel) * QUEUE_STRIDE


def header_text() -> str:
    """The generated C header mirroring this layout (written at build time)."""
    lines = [
        "/* Generated from repro/kernel/core/layout.py -- do not edit. */",
        "#ifndef REPRO_CORE_LAYOUT_H",
        "#define REPRO_CORE_LAYOUT_H",
        f"#define REPRO_CORE_ABI {ABI}L",
        f"#define CTX_QUEUE_BASE {QUEUE_BASE}",
        f"#define CTX_QUEUE_STRIDE {QUEUE_STRIDE}",
        f"#define K_RD {KIND_RD}",
        f"#define K_WR {KIND_WR}",
        f"#define K_ACT {KIND_ACT}",
        f"#define K_PRE {KIND_PRE}",
    ]
    for name, index in INDEX.items():
        lines.append(f"#define CTX_{name.upper()} {index}")
    for offset, name in enumerate(QUEUE_CELLS):
        lines.append(f"#define {name.upper()} {offset}")
    lines.append("#endif")
    return "\n".join(lines) + "\n"


def build_ctx(scalars: Mapping[str, int],
              pointers: Mapping[str, int],
              queue_blocks: Sequence[Sequence[int]]) -> "object":
    """Assemble the int64 context table.

    ``scalars`` maps every :data:`SCALAR_CELLS` name except ``abi`` (stamped
    here) to its value, ``pointers`` maps every :data:`POINTER_CELLS` name
    to a raw data address, and ``queue_blocks`` supplies one pre-assembled
    cell sequence per (channel, queue) block in layout order.
    """
    import numpy as np

    channels = int(scalars["channels"])
    ctx = np.zeros(ctx_size(channels), dtype=np.int64)
    ctx[INDEX["abi"]] = ABI
    for name in SCALAR_CELLS[1:]:
        ctx[INDEX[name]] = int(scalars[name])
    for name in POINTER_CELLS:
        ctx[INDEX[name]] = int(pointers[name])
    expected = 2 * channels
    if len(queue_blocks) != expected:
        raise ValueError(
            f"expected {expected} queue blocks, got {len(queue_blocks)}")
    for block_index, cells in enumerate(queue_blocks):
        if len(cells) != QUEUE_STRIDE:
            raise ValueError(
                f"queue block {block_index} has {len(cells)} cells, "
                f"expected {QUEUE_STRIDE}")
        base = QUEUE_BASE + block_index * QUEUE_STRIDE
        ctx[base:base + QUEUE_STRIDE] = [int(cell) for cell in cells]
    return ctx
