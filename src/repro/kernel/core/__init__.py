"""Loader for the compiled stepper core (ctypes over a flat int64 table).

``load_core()`` builds (or reuses, see :mod:`repro.kernel.core.build`) the
shared library and returns a :class:`ctypes.CDLL` with typed entry points,
or ``None`` with :func:`load_error` describing why — no C compiler, a build
failure, or an ABI mismatch against a stale cached artifact.  The result is
memoized per process; the availability *policy* (including the
``REPRO_FORCE_NO_COMPILED`` escape hatch) lives in
:func:`repro.kernel.compiled_available`, mirroring the numpy gate.
"""

from __future__ import annotations

import ctypes
from typing import Optional

_lib: Optional[ctypes.CDLL] = None
_error: str = ""
_attempted = False


def load_core() -> Optional[ctypes.CDLL]:
    """The compiled core library, built on first use (None on failure)."""
    global _lib, _error, _attempted
    if _attempted:
        return _lib
    _attempted = True
    try:
        from repro.kernel.core import layout
        from repro.kernel.core.build import build_library

        path = build_library()
        lib = ctypes.CDLL(str(path))
        lib.repro_core_abi.restype = ctypes.c_int64
        lib.repro_core_abi.argtypes = ()
        abi = int(lib.repro_core_abi())
        if abi != layout.ABI:
            raise RuntimeError(
                f"compiled core ABI mismatch: library reports {abi}, "
                f"layout.py is {layout.ABI} (stale cache?)")
        p_i64 = ctypes.POINTER(ctypes.c_int64)
        lib.repro_scan.restype = None
        lib.repro_scan.argtypes = (p_i64, ctypes.c_int64, ctypes.c_int64,
                                   ctypes.c_int64, p_i64)
        lib.repro_step.restype = ctypes.c_int64
        lib.repro_step.argtypes = (p_i64, ctypes.c_int64, ctypes.c_int64,
                                   p_i64)
        _lib = lib
    except Exception as exc:  # noqa: BLE001 - any failure means "unavailable"
        _error = f"{type(exc).__name__}: {exc}"
        _lib = None
    return _lib


def load_error() -> str:
    """Why :func:`load_core` returned None ('' when it succeeded/never ran)."""
    return _error
