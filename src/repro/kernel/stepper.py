"""Resident multi-cycle stepper: N cycles per Python call on the kernel path.

PR 6's honest negative result was that array-resident *math* alone loses to
the scalar engine: with ≤32-entry queues, fixed numpy dispatch per scan
dominates.  This module moves the *loop* out of Python.  When the system is
in a **steppable phase** — every unit that could act before the window's
end is a channel controller, no refresh is due, no completion is waiting —
the event engine hands a whole window to :class:`KernelStepper`, which
advances it in one fused call (compiled C via :mod:`repro.kernel.core`, or
the bit-exact pure-Python twin :mod:`repro.kernel.core.pycore`): per due
channel, settle burst-plan prefixes, scan both queues, and fast-forward to
the earliest per-channel retry cursor.  The core returns at the first
**non-steppable boundary**:

====================================  =======================================
boundary                              how the window ends
====================================  =======================================
issuable host request at cycle t      core returns (t, channel, winner); the
                                      winner primes the channel's scan memo,
                                      then the engine processes cycle t
                                      through the ordinary selective path
                                      (issue bookkeeping, wake routing) and
                                      re-enters at t+1
host completion delivery              window end W clamps to the host unit's
                                      calendar entry (slot >= channels)
NDA plan horizon / instruction        same: NDA host/rank units' calendar
boundary, throttle or mode change     entries bound W
refresh due                           W clamps to every channel's
                                      ``channel_min_refresh_due``; a due
                                      refresh blocks window entry entirely
checkpoint safe point / run target    W clamps to ``target``
====================================  =======================================

The selective-wake contract is untouched: window entry happens only where
the scalar engine would have processed-or-skipped the same cycles as no-ops
for non-channel units, the per-channel ``_issue_hint`` is advanced with the
core's (sound, never-late) retry cursors, and every channel is re-polled
after a window, so calendar entries and ``published_wake`` stay coherent.
Burst settlement inside the window applies the state law only (idempotent
maxes); the Python settler replays it — adding the version bumps — before
any Python-side scan reads the affected state, which keeps scan memos and
constraint-table caches exact.

Adding an exit condition: clamp ``W`` (or refuse entry) in
:meth:`KernelStepper.run_window` for phase-level conditions; for per-cycle
conditions, surface the state to the core's context table and return a new
status from ``repro_step``/``py_step`` in lock-step (both implementations
plus the layout ABI), then handle it here.  ARCHITECTURE.md ("Compiled
core") carries the same recipe.
"""

from __future__ import annotations

import ctypes
from typing import List, Optional

import numpy as np

from repro.dram.commands import Command, RequestSource
from repro.engine.core import EventEngine
from repro.kernel.core import layout, load_core
from repro.kernel.core.pycore import CoreState, QueueBlock, py_step
from repro.kernel.profile import PROFILE, clock
from repro.kernel.scan import _KIND_COMMANDS
from repro.memctrl.frfcfs import NO_EVENT

#: Stack-allocation bound of the compiled scan (per-slot scratch is a VLA);
#: queues beyond this run the pure-Python core instead.
_MAX_QUEUE_CAPACITY = 8192


def build_core_state(system) -> CoreState:
    """Assemble the stepper's :class:`CoreState` from a wired kernel system.

    Pure aliasing: every array reference is the live kernel-backend array
    (bank horizons, rank/channel scalars, queue slot columns), so the core
    and the scalar views always see the same state.  The per-rank plan
    mirror and per-channel cursors are the stepper's own (synced per
    window).  Forces ``_QueueArrays`` creation on both queues of every
    channel so the slot observers are installed before the first window.
    """
    kt = system.dram.timing
    org = system.dram.org
    state = CoreState()
    state.channels = org.channels
    state.ranks_per_channel = org.ranks_per_channel
    state.bank_groups = org.bank_groups
    state.no_event = NO_EVENT
    state.tCL = kt._tCL
    state.tCWL = kt._tCWL
    state.tBL = kt._tBL
    state.tCCDS = kt._tCCDS
    state.tCCDL = kt._tCCDL
    state.tWTRS = kt._tWTRS
    state.tWTRL = kt._tWTRL
    state.tRTRS = kt._tRTRS
    state.wr_to_rd = kt._wr_to_rd
    state.read_to_write = kt._read_to_write
    state.tFAW = kt.timing.tFAW
    state.tRTP = kt.timing.tRTP
    state.write_to_precharge = kt._write_to_precharge
    state.bank_act = kt.bank_act
    state.bank_pre = kt.bank_pre
    state.bank_rd = kt.bank_rd
    state.bank_wr = kt.bank_wr
    state.open_row = kt.open_row
    rank_arrays = kt.rank_arrays
    state.rank_act_allowed = rank_arrays["act_allowed"]
    state.rank_refreshing_until = rank_arrays["refreshing_until"]
    state.rank_last_read = rank_arrays["last_read_cycle"]
    state.rank_last_read_bg = rank_arrays["last_read_bg"]
    state.rank_last_write = rank_arrays["last_write_cycle"]
    state.rank_last_write_bg = rank_arrays["last_write_bg"]
    state.rank_last_host_read = rank_arrays["last_host_read_cycle"]
    state.rank_last_nda_read = rank_arrays["last_nda_read_cycle"]
    state.rank_nda_bus_free = rank_arrays["nda_bus_free"]
    state.rank_actbg = rank_arrays["act_allowed_bg"]
    state.rank_faw = rank_arrays["faw"]
    state.rank_faw_len = rank_arrays["faw_len"]
    state.rank_faw_head = rank_arrays["faw_head"]
    channel_arrays = kt.channel_arrays
    state.chan_data_bus_free = channel_arrays["data_bus_free"]
    state.chan_last_col_rank = channel_arrays["last_col_rank"]
    state.chan_last_data_end = channel_arrays["last_data_end"]
    total_ranks = org.channels * org.ranks_per_channel
    state.next_try = np.zeros(org.channels, dtype=np.int64)
    state.plan_active = np.zeros(total_ranks, dtype=np.int64)
    state.plan_start = np.zeros(total_ranks, dtype=np.int64)
    state.plan_step = np.ones(total_ranks, dtype=np.int64)
    state.plan_idx = np.zeros(total_ranks, dtype=np.int64)
    state.plan_count = np.zeros(total_ranks, dtype=np.int64)
    state.plan_is_write = np.zeros(total_ranks, dtype=np.int64)
    state.plan_bank_index = np.zeros(total_ranks, dtype=np.int64)
    state.plan_bank_group = np.zeros(total_ranks, dtype=np.int64)
    state.queues = []
    for ch in sorted(system.channel_controllers):
        controller = system.channel_controllers[ch]
        scheduler = controller.scheduler
        blocks = []
        for qsel, queue in enumerate((controller.read_queue,
                                      controller.write_queue)):
            arrays = scheduler._arrays_for(queue)
            arrays.core_qsel = qsel
            blocks.append(QueueBlock(arrays))
        state.queues.append(blocks)
    return state


def build_ctx_table(state: CoreState):
    """The flat int64 context table aliasing ``state`` for the C core."""
    scalars = {name: getattr(state, name)
               for name in layout.SCALAR_CELLS[1:]}
    pointers = {name: getattr(state, name).ctypes.data
                for name in layout.POINTER_CELLS}
    blocks = []
    for channel_blocks in state.queues:
        for block in channel_blocks:
            blocks.append((
                block.bank_idx.ctypes.data,
                block.rankbg_idx.ctypes.data,
                block.rank_local.ctypes.data,
                block.row.ctypes.data,
                block.seq.ctypes.data,
                block.is_write.ctypes.data,
                block.alive.ctypes.data,
                block.capacity,
            ))
    return layout.build_ctx(scalars, pointers, blocks)


class KernelStepper:
    """Window driver between a :class:`StepperEventEngine` and the core."""

    def __init__(self, system, use_compiled: bool = True) -> None:
        self.state = build_core_state(system)
        org = system.dram.org
        self.channels = org.channels
        self.timing = system.dram.timing
        self.controllers = [system.channel_controllers[ch]
                            for ch in sorted(system.channel_controllers)]
        self.refresh_enabled = any(c.config.refresh_enabled
                                   for c in self.controllers)
        # With windows handling all channel scheduling, the post-issue
        # exact-probe refinement in wake_after_tick is redundant work: the
        # conservative now+1 wake re-enters the window, whose core scan
        # covers the same horizon inside the fused loop (see
        # ChannelController.lazy_wake_probe).
        for controller in self.controllers:
            controller.lazy_wake_probe = True
        total_ranks = org.channels * org.ranks_per_channel
        ranks_per_channel = org.ranks_per_channel
        self._plan_sources: List[Optional[object]] = [None] * total_ranks
        for (ch, rk), controller in system.rank_controllers.items():
            self._plan_sources[ch * ranks_per_channel + rk] = controller
        self._plan_cache: List[Optional[object]] = [None] * total_ranks
        # Hot-path aliases: stable in-place structures read every window.
        self._refresh_due = self.timing._channel_refresh_due
        self._queues = [(c.read_queue, c.write_queue)
                        for c in self.controllers]
        self._queue_arrays = [
            tuple(c.scheduler._arrays_for(q) for q in qs)
            for c, qs in zip(self.controllers, self._queues)]
        self._next_try_mv = memoryview(self.state.next_try)
        self._engine = None
        self._mark = None
        self._calendar_values = None
        self.compiled = False
        self._lib = None
        self._ctx = None
        self._ctx_ptr = None
        # Shared out-buffer: repro_scan uses cells 0..4, repro_step/py_step
        # cells 0..10 (cycle, channel, qsel, winning scan tuple, read-scan
        # tuple) — see the repro_step contract in stepper_core.c.
        self._out = np.zeros(12, dtype=np.int64)
        self._out_mv = memoryview(self._out)
        self._out_ptr = self._out.ctypes.data_as(
            ctypes.POINTER(ctypes.c_int64))
        from repro.kernel import compiled_available

        if use_compiled and compiled_available():
            lib = load_core()
            capacity_ok = all(
                block.capacity <= _MAX_QUEUE_CAPACITY
                for blocks in self.state.queues for block in blocks)
            if lib is not None and capacity_ok:
                self._ctx = build_ctx_table(self.state)
                self._ctx_ptr = self._ctx.ctypes.data_as(
                    ctypes.POINTER(ctypes.c_int64))
                self._lib = lib
                self.compiled = True

    # ------------------------------------------------------------------ #

    def bind_scan(self) -> None:
        """Route the schedulers' FR-FCFS scans through the compiled core.

        Only wired when the compiled library is live: the per-issue Python
        scans (probe + tick) then cost one C call instead of a numpy pass,
        which is most of the Python-side work left at issue cycles.
        """
        if not self.compiled:
            return
        for controller in self.controllers:
            controller.scheduler.bind_core(self._lib, self._ctx_ptr,
                                           self._out, self._out_ptr)

    def _sync_plans(self) -> None:
        """Refresh the core's burst-plan mirror from the live controllers.

        Identity-cached per rank: a plan object is repacked only when it is
        replaced (plan/cancel/replan make new objects).  On a cache hit the
        core-side settled index may legitimately run ahead of the Python
        plan (the core settled without the Python replay having happened
        yet); the maximum of the two cursors is always the fresher one.
        """
        state = self.state
        cache = self._plan_cache
        active = state.plan_active
        plan_idx = state.plan_idx
        for rank, source in enumerate(self._plan_sources):
            plan = source._plan if source is not None else None
            if cache[rank] is plan:
                if plan is not None and plan.idx > plan_idx[rank]:
                    plan_idx[rank] = plan.idx
                continue
            cache[rank] = plan
            if plan is None:
                active[rank] = 0
                continue
            active[rank] = 1
            state.plan_start[rank] = plan.start
            state.plan_step[rank] = plan.step
            plan_idx[rank] = plan.idx
            state.plan_count[rank] = plan.count
            state.plan_is_write[rank] = 1 if plan.is_write else 0
            state.plan_bank_index[rank] = plan.bank_index
            state.plan_bank_group[rank] = plan.bank_group

    # ------------------------------------------------------------------ #

    def run_window(self, engine: "StepperEventEngine", now: int,
                   target: int) -> int:
        """Try to advance a steppable window starting at ``now``.

        Returns the new ``now`` (the window end, or ``t + 1`` after the
        engine processed an issue cycle ``t``), or ``-1`` when the phase is
        not steppable and the caller must process ``now`` scalar-wise.
        """
        profile = PROFILE.enabled
        if profile:
            t0 = clock()
        channels = self.channels
        if engine is not self._engine:
            self._engine = engine
            self._mark = engine.hub.mark
            self._calendar_values = engine.calendar.values
        # Steppable-phase predicate + window end W: every non-channel unit's
        # calendar entry must lie in the future (they bound W — completions,
        # NDA plan horizons, workload boundaries, stats flushes), as must
        # every channel's refresh due and pending-completion horizon.
        window_end = target
        for value in self._calendar_values[channels:]:
            if value <= now:
                return -1
            if value < window_end:
                window_end = value
        controllers = self.controllers
        if self.refresh_enabled:
            for due in self._refresh_due:
                if due <= now:
                    return -1
                if due < window_end:
                    window_end = due
        next_try = self._next_try_mv
        ch = 0
        for controller in controllers:
            if controller._completions_min <= now:
                return -1
            hint = controller._issue_hint
            next_try[ch] = now if hint < now else hint
            ch += 1
        state = self.state
        self._sync_plans()
        if profile:
            t1 = clock()
            PROFILE.add("step_setup", t1 - t0)
        if self._lib is not None:
            status = self._lib.repro_step(self._ctx_ptr, now, window_end,
                                          self._out_ptr)
        else:
            status = py_step(state, now, window_end, self._out)
        if profile:
            t2 = clock()
            PROFILE.add("step_run", t2 - t1)
        # Writeback: the core's retry cursors are sound no-issue-before
        # bounds; fold them into the hints and re-poll every channel so
        # calendar entries / published wakes are recomputed from them.
        mark = self._mark
        ch = 0
        for controller in controllers:
            cursor = next_try[ch]
            if cursor > controller._issue_hint:
                controller._issue_hint = cursor
            mark(ch)
            ch += 1
        if profile:
            PROFILE.add("step_exit", clock() - t2)
        if status == 0:
            engine.cycles_skipped += window_end - now
            return window_end
        # First issuable request at issue_cycle: cycles before it were
        # no-ops; the ordinary selective path processes the cycle itself
        # (issue bookkeeping, completion scheduling and wake routing run
        # the exact scalar code).  The core already found the winner, so
        # its scan evidence primes the channel's scan memo — the winning
        # queue's result (and, when the write queue won, the read queue's
        # empty-handed scan) — saving the re-scan that the issuing tick
        # would otherwise run.  The settlement replay (which adds the
        # version bumps the core omits) must run first so the memo is
        # guarded by the post-replay version; after it, the memo entry is
        # exactly what _select_bucketed would return at issue_cycle.
        out = self._out_mv
        issue_cycle = out[0]
        channel = out[1]
        controller = controllers[channel]
        settler = controller.burst_settler
        if settler is not None:
            settler(issue_cycle)
        qsel = out[2]
        queue = self._queues[channel][qsel]
        arrays = self._queue_arrays[channel][qsel]
        request = arrays.requests[out[3]]
        choice = (request, Command(_KIND_COMMANDS[out[4]], request.addr,
                                   RequestSource.HOST,
                                   request_id=request.request_id))
        dram_version = controller.dram.channel_issue_version[channel]
        entry = (issue_cycle, queue.version, dram_version, choice,
                 out[5], None)
        if qsel:
            controller._scan_cache_write = entry
            read_queue = self._queues[channel][0]
            future = None
            future_slot = out[9]
            if future_slot >= 0:
                read_arrays = self._queue_arrays[channel][0]
                future_request = read_arrays.requests[future_slot]
                future = (future_request,
                          Command(_KIND_COMMANDS[out[10]],
                                  future_request.addr, RequestSource.HOST,
                                  request_id=future_request.request_id))
            controller._scan_cache_read = (issue_cycle, read_queue.version,
                                           dram_version, None, out[8],
                                           future)
        else:
            controller._scan_cache_read = entry
        engine.cycles_skipped += issue_cycle - now
        engine._process_selective(issue_cycle)
        return issue_cycle + 1


class StepperEventEngine(EventEngine):
    """Event engine whose wake-<=-now path first offers the cycle window to
    the resident stepper, falling back to the scalar selective path
    whenever the phase is not steppable (or no stepper is bound)."""

    def __init__(self, components) -> None:
        super().__init__(components)
        self._stepper: Optional[KernelStepper] = None

    def bind_stepper(self, stepper: KernelStepper) -> None:
        self._stepper = stepper

    def run_until(self, now: int, target: int) -> int:
        stepper = self._stepper
        if stepper is None:
            return super().run_until(now, target)
        calendar = self.calendar
        pending = self.hub.pending
        while now < target:
            if pending:
                self._drain_dirty(now)
            wake = calendar.min_cycle()
            if wake <= now:
                advanced = stepper.run_window(self, now, target)
                if advanced < 0:
                    self._process_selective(now)
                    now += 1
                else:
                    now = advanced
                continue
            if wake >= target:
                self.cycles_skipped += target - now
                now = target
                break
            self.cycles_skipped += wake - now
            now = wake
        self.flush(target)
        return now
