"""Batched FR-FCFS: every bank bucket of a channel probed in one vector pass.

:class:`KernelFrFcfsScheduler` replaces the per-bucket Python loop of
:meth:`repro.memctrl.frfcfs.FrFcfsScheduler._select_bucketed` with array
arithmetic over **slot arrays**: each :class:`~repro.memctrl.request
.RequestQueue` of the owning channel gets preallocated per-slot columns
(bank index, rank, bank-group, row, arrival stamp, direction, liveness),
maintained incrementally through the queue's ``on_push``/``on_remove``
observers.  One scan is then:

1. classify every queued request with two gathers against the timing
   kernel's open-row mirror (hit / closed→ACT / conflict→PRE);
2. compute every request's earliest issue cycle as an elementwise max
   (:func:`~repro.kernel.timing_kernel.horizon_max`) of the gathered
   per-bank horizon arrays and per-(rank, bank-group) constraint tables;
3. reduce to the FR-FCFS winner (oldest issuable row hit, else oldest
   issuable ACT/PRE), the horizon (min earliest over non-issuable
   requests) and the at-horizon winner with masked ``argmin`` reductions.

The constraint tables (column-command base, ACT base, refresh base — the
bank-independent parts of the scalar law, see ``host_column_base``) are
rebuilt vectorized and cached against ``DramSystem.channel_issue_version``:
every mutation of the channel's timing state (command issue or burst
settlement) bumps that counter, so a cached table is always exact.

Selection is bit-equivalent to the scalar scan: within a bucket the oldest
request is the lowest ``queue_seq``, so global masked-argmin over ``seq``
reproduces the bucket-ordered scan's pick (the scalar scan's early break on
an issuable row hit only skips candidates that could never win and whose
horizon contribution is never consumed).  The property tests in
tests/test_kernel_micro.py diff winner, horizon and at-horizon prediction
against the scalar scheduler on randomized queue/timing state.

When the resident stepper's compiled core is live (see
:mod:`repro.kernel.stepper`), :meth:`~KernelFrFcfsScheduler.bind_core`
reroutes the scan through the shared library's ``repro_scan``: one C call
over the same live arrays replaces the whole numpy pass, which removes the
fixed dispatch overhead that dominates at real queue depths (PR 6's
measured bottleneck).  The numpy pass remains the scan for plain
``backend="kernel"`` runs and for oversized queues.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dram.commands import Command, CommandType, RequestSource
from repro.dram.device import DramSystem
from repro.kernel.core.layout import KIND_ACT, KIND_PRE, KIND_RD, KIND_WR
from repro.kernel.profile import PROFILE, clock
from repro.kernel.timing_kernel import KernelTimingEngine, horizon_max
from repro.memctrl.frfcfs import NO_EVENT, FrFcfsScheduler
from repro.memctrl.request import MemoryRequest, RequestQueue

#: Neutral element for max-reductions whose constraint may be absent
#: (e.g. the tFAW window before four activates have been seen).
_NEUTRAL = -(1 << 50)

#: Compiled-core command kinds back to scheduler command types.
_KIND_COMMANDS = {KIND_RD: CommandType.RD, KIND_WR: CommandType.WR,
                  KIND_ACT: CommandType.ACT, KIND_PRE: CommandType.PRE}


class _QueueArrays:
    """Array-resident slot state of one transaction queue.

    Slots are queue-capacity-sized and recycled through a free list; dead
    slots keep stale (but in-range) indices so gathers never fault and are
    masked out by ``alive``.
    """

    __slots__ = ("bank_idx", "rankbg_idx", "rank_local", "row", "seq",
                 "is_write", "alive", "requests", "free", "slot_of",
                 "core_qsel")

    def __init__(self, capacity: int) -> None:
        self.bank_idx = np.zeros(capacity, dtype=np.int64)
        self.rankbg_idx = np.zeros(capacity, dtype=np.int64)
        self.rank_local = np.zeros(capacity, dtype=np.int64)
        self.row = np.full(capacity, -2, dtype=np.int64)
        self.seq = np.zeros(capacity, dtype=np.int64)
        self.is_write = np.zeros(capacity, dtype=bool)
        self.alive = np.zeros(capacity, dtype=bool)
        self.requests: List[Optional[MemoryRequest]] = [None] * capacity
        self.free = list(range(capacity - 1, -1, -1))
        self.slot_of = {}
        # Queue selector (0=read, 1=write) in the compiled core's context
        # table; -1 until the stepper registers this queue.
        self.core_qsel = -1


class KernelFrFcfsScheduler(FrFcfsScheduler):
    """FR-FCFS selection through the kernel's batched vector scan."""

    def __init__(self, dram: DramSystem, channel: int) -> None:
        super().__init__(dram)
        timing = dram.timing
        if not isinstance(timing, KernelTimingEngine):
            raise TypeError(
                "KernelFrFcfsScheduler requires a KernelTimingEngine "
                f"(got {type(timing).__name__}); construct the system with "
                "backend='kernel'"
            )
        self.channel = channel
        self._kt = timing
        org = dram.org
        self._R = org.ranks_per_channel
        self._BG = org.bank_groups
        self._banks_per_group = org.banks_per_group
        self._banks_per_rank = org.banks_per_rank
        first = channel * self._R
        self._rank_states = timing._ranks[first:first + self._R]
        self._chan_state = timing._channels[channel]
        self._issue_version_cell = dram.channel_issue_version
        # Constraint tables: (R, BG) int64, plus flat views gathered through
        # each slot's precomputed ``rank * BG + bank_group`` index.
        shape = (self._R, self._BG)
        self._act_tbl2d = np.zeros(shape, dtype=np.int64)
        self._col_rd2d = np.zeros(shape, dtype=np.int64)
        self._col_wr2d = np.zeros(shape, dtype=np.int64)
        self._actbg2d = np.zeros(shape, dtype=np.int64)
        self._act_tbl = self._act_tbl2d.reshape(-1)
        self._col_rd = self._col_rd2d.reshape(-1)
        self._col_wr = self._col_wr2d.reshape(-1)
        self._refresh_tbl = np.zeros(self._R, dtype=np.int64)
        self._bg_row = np.arange(self._BG, dtype=np.int64)[None, :]
        self._rank_ids = np.arange(self._R, dtype=np.int64)
        # Per-rank scalar gather buffers (filled from _RankTiming objects).
        self._g_last_read = np.zeros(self._R, dtype=np.int64)
        self._g_last_read_bg = np.zeros(self._R, dtype=np.int64)
        self._g_last_write = np.zeros(self._R, dtype=np.int64)
        self._g_last_write_bg = np.zeros(self._R, dtype=np.int64)
        self._g_host_read = np.zeros(self._R, dtype=np.int64)
        self._g_nda_read = np.zeros(self._R, dtype=np.int64)
        self._g_act_rank = np.zeros(self._R, dtype=np.int64)
        self._tables_version = -1
        # Compiled-core scan binding: (lib, ctx_ptr, out, out_ptr) when the
        # stepper routed this channel's scans through the shared library.
        self._core = None

    # ------------------------------------------------------------------ #
    # Slot-array maintenance (queue observers)
    # ------------------------------------------------------------------ #

    def _arrays_for(self, queue: RequestQueue) -> _QueueArrays:
        arrays = getattr(queue, "kernel_arrays", None)
        if arrays is None:
            arrays = _QueueArrays(queue.capacity)
            queue.kernel_arrays = arrays
            queue.on_push = lambda request, a=arrays: self._slot_fill(a, request)
            queue.on_remove = lambda request, a=arrays: self._slot_clear(a, request)
            for request in queue:  # adopt entries queued before registration
                self._slot_fill(arrays, request)
        return arrays

    def _slot_fill(self, arrays: _QueueArrays, request: MemoryRequest) -> None:
        addr = request.addr
        bank_index = addr.bank_index
        if bank_index < 0:
            rank_index = (addr.channel * self._R + addr.rank)
            bank_index = (rank_index * self._banks_per_rank
                          + addr.bank_group * self._banks_per_group + addr.bank)
        slot = arrays.free.pop()
        arrays.bank_idx[slot] = bank_index
        arrays.rank_local[slot] = addr.rank
        arrays.rankbg_idx[slot] = addr.rank * self._BG + addr.bank_group
        arrays.row[slot] = addr.row
        arrays.seq[slot] = request.queue_seq
        arrays.is_write[slot] = request.is_write
        arrays.requests[slot] = request
        arrays.slot_of[request.request_id] = slot
        arrays.alive[slot] = True

    @staticmethod
    def _slot_clear(arrays: _QueueArrays, request: MemoryRequest) -> None:
        slot = arrays.slot_of.pop(request.request_id)
        arrays.alive[slot] = False
        arrays.requests[slot] = None
        arrays.free.append(slot)

    # ------------------------------------------------------------------ #
    # Constraint tables (cached against the channel issue version)
    # ------------------------------------------------------------------ #

    def _build_tables(self) -> None:
        """Vectorized rebuild of the bank-independent constraint tables.

        Lock-step twin of ``TimingEngine.host_column_base`` (column tables)
        and the rank-level terms of the ACT/PRE branches of
        ``earliest_issue_at`` — when adding a constraint there, add its
        array term here (the micro-oracles diff the two per entry).
        """
        if PROFILE.enabled:
            t0 = clock()
        kt = self._kt
        tFAW = kt.timing.tFAW
        refresh = self._refresh_tbl
        last_read = self._g_last_read
        last_read_bg = self._g_last_read_bg
        last_write = self._g_last_write
        last_write_bg = self._g_last_write_bg
        host_read = self._g_host_read
        nda_read = self._g_nda_read
        act_rank = self._g_act_rank
        for r, rank in enumerate(self._rank_states):
            refresh[r] = rank.refreshing_until
            last_read[r] = rank.last_read_cycle
            last_read_bg[r] = rank.last_read_bg
            last_write[r] = rank.last_write_cycle
            last_write_bg[r] = rank.last_write_bg
            host_read[r] = rank.last_host_read_cycle
            nda_read[r] = rank.last_nda_read_cycle
            faw = (rank.faw_window[0] + tFAW
                   if len(rank.faw_window) == 4 else _NEUTRAL)
            base = rank.refreshing_until
            if rank.act_allowed > base:
                base = rank.act_allowed
            if faw > base:
                base = faw
            act_rank[r] = base
            self._actbg2d[r, :] = rank.act_allowed_bg
        bg = self._bg_row
        np.maximum(self._actbg2d, act_rank[:, None], out=self._act_tbl2d)

        channel = self._chan_state
        rf = refresh[:, None]
        # Read direction: read-after-read spacing, write-to-read turnaround,
        # data-bus occupancy and rank switching (offsets tCL).
        rd = np.where(bg == last_read_bg[:, None], kt._tCCDL, kt._tCCDS)
        rd += last_read[:, None]
        wtr = np.where(bg == last_write_bg[:, None], kt._tWTRL, kt._tWTRS)
        wtr += last_write[:, None] + kt._wr_to_rd
        rd = horizon_max(rd, wtr, rf)
        np.maximum(rd, channel.data_bus_free - kt._tCL, out=rd)
        # Write direction: write-after-write spacing, read-to-write
        # turnaround per data path, bus occupancy (offsets tCWL).
        wr = np.where(bg == last_write_bg[:, None], kt._tCCDL, kt._tCCDS)
        wr += last_write[:, None]
        wr = horizon_max(wr, (host_read + kt._read_to_write)[:, None],
                         (nda_read + kt._tCCDS)[:, None], rf)
        np.maximum(wr, channel.data_bus_free - kt._tCWL, out=wr)
        last_col_rank = channel.last_col_rank
        if last_col_rank != -1:
            switch = self._rank_ids != last_col_rank
            end = channel.last_data_end + kt._tRTRS
            rd[switch] = np.maximum(rd[switch], end - kt._tCL)
            wr[switch] = np.maximum(wr[switch], end - kt._tCWL)
        self._col_rd2d[:, :] = rd
        self._col_wr2d[:, :] = wr
        if PROFILE.enabled:
            PROFILE.add("pack", clock() - t0)

    # ------------------------------------------------------------------ #
    # The batched scan
    # ------------------------------------------------------------------ #

    def bind_core(self, lib, ctx_ptr, out, out_ptr) -> None:
        """Route this channel's scans through the compiled core.

        The shared library reads the live timing/queue arrays through the
        stepper's context table, so there is no version cache to keep in
        sync — every compiled scan sees current state by construction.
        """
        self._core = (lib, ctx_ptr, memoryview(out), out_ptr)

    def _select_compiled(self, arrays: _QueueArrays, qsel: int, now: int,
                         ) -> Tuple[Optional[Tuple[MemoryRequest, Command]],
                                    int,
                                    Optional[Tuple[MemoryRequest, Command]]]:
        if PROFILE.enabled:
            t0 = clock()
        lib, ctx_ptr, _out, out_ptr = self._core
        lib.repro_scan(ctx_ptr, self.channel, qsel, now, out_ptr)
        choice_slot = _out[0]
        horizon = _out[2]
        if choice_slot >= 0:
            request = arrays.requests[choice_slot]
            cmd = Command(_KIND_COMMANDS[_out[1]], request.addr,
                          RequestSource.HOST, request_id=request.request_id)
            if PROFILE.enabled:
                PROFILE.add("cscan", clock() - t0)
            return (request, cmd), horizon, None
        future_slot = _out[3]
        if future_slot < 0:
            if PROFILE.enabled:
                PROFILE.add("cscan", clock() - t0)
            return None, horizon, None
        request = arrays.requests[future_slot]
        cmd = Command(_KIND_COMMANDS[_out[4]], request.addr,
                      RequestSource.HOST, request_id=request.request_id)
        if PROFILE.enabled:
            PROFILE.add("cscan", clock() - t0)
        return None, horizon, (request, cmd)

    def _select_bucketed(self, queue: RequestQueue, now: int,
                         ) -> Tuple[Optional[Tuple[MemoryRequest, Command]],
                                    int,
                                    Optional[Tuple[MemoryRequest, Command]]]:
        if not queue:
            return None, NO_EVENT, None
        arrays = self._arrays_for(queue)
        if self._core is not None and arrays.core_qsel >= 0:
            return self._select_compiled(arrays, arrays.core_qsel, now)
        version = self._issue_version_cell[self.channel]
        if version != self._tables_version:
            self._build_tables()
            self._tables_version = version
        if PROFILE.enabled:
            t0 = clock()
        kt = self._kt
        alive = arrays.alive
        bank_idx = arrays.bank_idx
        rankbg = arrays.rankbg_idx
        is_write = arrays.is_write
        seq = arrays.seq

        rows_open = kt.open_row[bank_idx]
        hit = (rows_open == arrays.row) & alive
        closed = (rows_open == -1) & alive

        act_e = horizon_max(kt.bank_act[bank_idx], self._act_tbl[rankbg])
        pre_e = horizon_max(kt.bank_pre[bank_idx],
                            self._refresh_tbl[arrays.rank_local])
        col_e = horizon_max(
            np.where(is_write, self._col_wr[rankbg], self._col_rd[rankbg]),
            np.where(is_write, kt.bank_wr[bank_idx], kt.bank_rd[bank_idx]))

        earliest = np.where(closed, act_e, np.where(hit, col_e, pre_e))
        np.maximum(earliest, now, out=earliest)
        earliest = np.where(alive, earliest, NO_EVENT)

        issuable = earliest <= now
        hit_issuable = issuable & hit
        if hit_issuable.any():
            slot = int(np.argmin(np.where(hit_issuable, seq, NO_EVENT)))
            request = arrays.requests[slot]
            kind = CommandType.WR if request.is_write else CommandType.RD
            cmd = Command(kind, request.addr, RequestSource.HOST,
                          request_id=request.request_id)
            if PROFILE.enabled:
                PROFILE.add("scan", clock() - t0)
            return (request, cmd), NO_EVENT, None

        pending = np.where(issuable, NO_EVENT, earliest)
        horizon = int(pending.min())
        fallback = issuable & ~hit
        if fallback.any():
            slot = int(np.argmin(np.where(fallback, seq, NO_EVENT)))
            request = arrays.requests[slot]
            kind = CommandType.ACT if closed[slot] else CommandType.PRE
            cmd = Command(kind, request.addr, RequestSource.HOST,
                          request_id=request.request_id)
            if PROFILE.enabled:
                PROFILE.add("scan", clock() - t0)
            return (request, cmd), horizon, None

        if horizon >= NO_EVENT:
            if PROFILE.enabled:
                PROFILE.add("scan", clock() - t0)
            return None, NO_EVENT, None
        at_horizon = pending == horizon
        at_hit = at_horizon & hit
        pool = at_hit if at_hit.any() else at_horizon
        slot = int(np.argmin(np.where(pool, seq, NO_EVENT)))
        request = arrays.requests[slot]
        if hit[slot]:
            kind = CommandType.WR if request.is_write else CommandType.RD
        elif closed[slot]:
            kind = CommandType.ACT
        else:
            kind = CommandType.PRE
        cmd = Command(kind, request.addr, RequestSource.HOST,
                      request_id=request.request_id)
        if PROFILE.enabled:
            PROFILE.add("scan", clock() - t0)
        return None, horizon, (request, cmd)
