"""Pluggable DRAM platform layer: named device presets with derived clocks.

Public API::

    from repro.platform import get_platform, platform_config, platform_names

    cfg = platform_config("lpddr4-3200")            # SystemConfig
    cfg = platform_config("ddr5-4800", channels=2, ranks_per_channel=4)

Every preset declares raw nanosecond / organization parameters; cycle
counts, command clocks, host tick ratios and energy constants are derived
(see :mod:`repro.platform.spec`).  ``ddr4-2400`` reproduces the paper's
Table II baseline bit-exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.platform.presets import (
    DDR4_2400,
    DDR4_3200,
    DDR5_4800,
    DEFAULT_PLATFORM,
    HBM2,
    LPDDR4_3200,
    PLATFORM_REGISTRY,
    get_platform,
    platform_names,
    register_platform,
)
from repro.platform.spec import PlatformSpec, ns_to_cycles

__all__ = [
    "PlatformSpec",
    "PLATFORM_REGISTRY",
    "DEFAULT_PLATFORM",
    "DDR4_2400",
    "DDR4_3200",
    "LPDDR4_3200",
    "DDR5_4800",
    "HBM2",
    "get_platform",
    "platform_names",
    "register_platform",
    "platform_config",
    "ns_to_cycles",
]


def platform_config(name: str = DEFAULT_PLATFORM,
                    channels: Optional[int] = None,
                    ranks_per_channel: Optional[int] = None,
                    cores: Optional[int] = None) -> SystemConfig:
    """A validated :class:`SystemConfig` for the named preset.

    The platform-parameterized counterpart of
    :func:`repro.config.scaled_config`: ``channels`` / ``ranks_per_channel``
    / ``cores`` rescale the preset's organization, everything else is
    derived from the preset's raw parameters.
    """
    return get_platform(name).system_config(
        channels=channels, ranks_per_channel=ranks_per_channel, cores=cores)
