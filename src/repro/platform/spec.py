"""Platform specifications: raw device parameters → derived configurations.

A :class:`PlatformSpec` describes a memory platform the way a datasheet
does — a per-pin data rate, a geometry, and analog timing parameters in
*nanoseconds* — and derives everything the simulator consumes from them:

* :class:`~repro.config.DramTimingConfig` — command-clock cycle counts,
  quantized with ``ceil(ns * clock)`` exactly as a memory controller's
  initialization firmware would;
* :class:`~repro.config.DramOrgConfig` — geometry plus the derived command
  clock (``data_rate_mtps / 2000`` GHz: one command clock per two
  transfers, the DDR convention every supported class follows);
* :class:`~repro.config.HostConfig` — the host core parameters with the
  fixed-point DRAM tick ratio derived from the platform clock;
* :class:`~repro.config.NdaConfig` — PEs clocked at the DRAM command clock
  (the paper's design point, preserved across platforms);
* :class:`~repro.config.EnergyConfig` — per-event energy representative of
  the device class.

Parameters that are *defined* in clock cycles by the standard (burst
length, tCCD, tRTRS) are declared in cycles; everything analog is declared
in nanoseconds.  Derivation is the single source of truth: no preset
hand-enters a cycle count for an analog parameter, so retiming a platform
is a one-line data-rate change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.config import (
    DramOrgConfig,
    DramTimingConfig,
    EnergyConfig,
    HostConfig,
    NdaConfig,
    SystemConfig,
)

#: Guard band for ns → cycle quantization: raw parameters are specified to
#: two decimal places and clocks to three, so true products sit far more
#: than 1e-9 from any integer they should not cross; the epsilon only
#: absorbs float representation error in products that are *meant* to be
#: integral (e.g. 7800 ns * 1.2 GHz = 9360.000000000002).
_QUANT_EPS = 1e-9


def ns_to_cycles(ns: float, clock_ghz: float) -> int:
    """Quantize a nanosecond parameter to command-clock cycles (>= 1)."""
    cycles = math.ceil(ns * clock_ghz - _QUANT_EPS)
    return cycles if cycles > 1 else 1


@dataclass(frozen=True)
class PlatformSpec:
    """One named memory platform: raw parameters, derived configuration."""

    name: str
    description: str

    # ---- clocking ---------------------------------------------------- #
    #: Per-pin data rate in mega-transfers per second; the command clock is
    #: half of it (double data rate).
    data_rate_mtps: int
    #: Transfers per column command (BL8 for DDR4, BL16 for DDR5/LPDDR4,
    #: BL4 for HBM2-class stacks); tBL = burst_transfers / 2 clock cycles.
    burst_transfers: int = 8

    # ---- organization ------------------------------------------------- #
    channels: int = 2
    ranks_per_channel: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 16
    #: Byte lanes of the data interface (8 for a x8 DDR4 rank, 4 for a
    #: 32-bit LPDDR channel, 16 for a 128-bit HBM channel); one byte per
    #: lane per transfer edge.
    chips_per_rank: int = 8
    row_bytes_per_chip: int = 1024
    cacheline_bytes: int = 64

    # ---- clock-domain timing (command-clock cycles by definition) ----- #
    tCCDS_ck: int = 4
    tCCDL_ck: int = 6
    tRTRS_ck: int = 2

    # ---- analog timing (nanoseconds) ---------------------------------- #
    tCL_ns: float = 13.32
    tRCD_ns: float = 13.32
    tRP_ns: float = 13.32
    tCWL_ns: float = 10.0
    tRAS_ns: float = 32.0
    #: None derives tRC as tRAS + tRP in cycles (the common datasheet
    #: identity); set explicitly only when the device defines it apart.
    tRC_ns: Optional[float] = 45.32
    tRTP_ns: float = 7.5
    tWTRS_ns: float = 2.5
    tWTRL_ns: float = 7.5
    tWR_ns: float = 15.0
    tRRDS_ns: float = 3.3
    tRRDL_ns: float = 4.9
    tFAW_ns: float = 21.0
    tREFI_ns: float = 7800.0
    tRFC_ns: float = 350.0

    # ---- host --------------------------------------------------------- #
    cpu_clock_ghz: float = 4.0

    # ---- energy (representative of the device class, Table II units) -- #
    activate_nj: float = 1.0
    host_access_pj_per_bit: float = 25.7
    pe_access_pj_per_bit: float = 11.3
    dram_background_mw_per_rank: float = 350.0

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #

    @property
    def dram_clock_ghz(self) -> float:
        """DRAM command-clock frequency in GHz (data rate / 2)."""
        return self.data_rate_mtps / 2000.0

    @property
    def tBL_ck(self) -> int:
        """Data-burst occupancy in command-clock cycles."""
        return self.burst_transfers // 2

    def timing_config(self) -> DramTimingConfig:
        """Derive the cycle-count timing parameters for this platform."""
        clock = self.dram_clock_ghz
        tRAS = ns_to_cycles(self.tRAS_ns, clock)
        tRP = ns_to_cycles(self.tRP_ns, clock)
        tRC = (ns_to_cycles(self.tRC_ns, clock)
               if self.tRC_ns is not None else tRAS + tRP)
        return DramTimingConfig(
            tBL=self.tBL_ck,
            tCCDS=self.tCCDS_ck,
            tCCDL=self.tCCDL_ck,
            tRTRS=self.tRTRS_ck,
            tCL=ns_to_cycles(self.tCL_ns, clock),
            tRCD=ns_to_cycles(self.tRCD_ns, clock),
            tRP=tRP,
            tCWL=ns_to_cycles(self.tCWL_ns, clock),
            tRAS=tRAS,
            tRC=tRC,
            tRTP=ns_to_cycles(self.tRTP_ns, clock),
            tWTRS=ns_to_cycles(self.tWTRS_ns, clock),
            tWTRL=ns_to_cycles(self.tWTRL_ns, clock),
            tWR=ns_to_cycles(self.tWR_ns, clock),
            tRRDS=ns_to_cycles(self.tRRDS_ns, clock),
            tRRDL=ns_to_cycles(self.tRRDL_ns, clock),
            tFAW=ns_to_cycles(self.tFAW_ns, clock),
            tREFI=ns_to_cycles(self.tREFI_ns, clock),
            tRFC=ns_to_cycles(self.tRFC_ns, clock),
        )

    def org_config(self, channels: Optional[int] = None,
                   ranks_per_channel: Optional[int] = None) -> DramOrgConfig:
        """Derive the organization, optionally rescaled (fig14-style)."""
        return DramOrgConfig(
            channels=self.channels if channels is None else channels,
            ranks_per_channel=(self.ranks_per_channel
                               if ranks_per_channel is None
                               else ranks_per_channel),
            bank_groups=self.bank_groups,
            banks_per_group=self.banks_per_group,
            rows_per_bank=self.rows_per_bank,
            chips_per_rank=self.chips_per_rank,
            row_bytes_per_chip=self.row_bytes_per_chip,
            cacheline_bytes=self.cacheline_bytes,
            dram_clock_ghz=self.dram_clock_ghz,
        )

    def host_config(self, cores: Optional[int] = None) -> HostConfig:
        kwargs = {"cpu_clock_ghz": self.cpu_clock_ghz,
                  "dram_clock_ghz": self.dram_clock_ghz}
        if cores is not None:
            kwargs["cores"] = cores
        return HostConfig(**kwargs)

    def nda_config(self) -> NdaConfig:
        # PEs run at the DRAM command clock on every platform (the paper's
        # design point: the PE datapath is sized to the per-chip burst
        # rate, so it scales with the interface).
        return NdaConfig(pe_clock_ghz=self.dram_clock_ghz)

    def energy_config(self) -> EnergyConfig:
        return EnergyConfig(
            activate_nj=self.activate_nj,
            host_access_pj_per_bit=self.host_access_pj_per_bit,
            pe_access_pj_per_bit=self.pe_access_pj_per_bit,
            dram_background_mw_per_rank=self.dram_background_mw_per_rank,
        )

    def system_config(self, channels: Optional[int] = None,
                      ranks_per_channel: Optional[int] = None,
                      cores: Optional[int] = None) -> SystemConfig:
        """A validated :class:`SystemConfig` for this platform.

        ``channels``/``ranks_per_channel``/``cores`` rescale the system the
        way :func:`repro.config.scaled_config` does for the baseline, so
        every scaling experiment has a platform axis for free.
        """
        cfg = SystemConfig(
            timing=self.timing_config(),
            org=self.org_config(channels, ranks_per_channel),
            host=self.host_config(cores),
            nda=self.nda_config(),
            energy=self.energy_config(),
            platform=self.name,
        )
        cfg.validate()
        return cfg

    def rescaled(self, data_rate_mtps: int, name: Optional[str] = None,
                 ) -> "PlatformSpec":
        """The same device retimed to a different data rate.

        Analog parameters are nanoseconds, so they survive unchanged; only
        the quantization moves.  This is the add-a-speed-bin recipe.
        """
        return replace(self, data_rate_mtps=data_rate_mtps,
                       name=name or f"{self.name}@{data_rate_mtps}")
