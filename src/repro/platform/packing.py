"""Spec→array packing for the kernel backend.

The kernel backend (see :mod:`repro.kernel`) keeps hot-path DRAM state in
preallocated numpy arrays indexed by the dense ``rank_index``/``bank_index``
stamped on :class:`~repro.dram.commands.DramAddress`.  This module is the
packing layer between a platform's :class:`~repro.config.DramOrgConfig` /
:class:`~repro.config.DramTimingConfig` (whatever preset produced them) and
that array layout:

* :func:`pack_geometry` — the dense-index geometry (counts and strides);
* :func:`pack_bank_state` — the preallocated per-bank timing-horizon arrays
  plus the open-row mirror (dtype/shape contract in ARCHITECTURE.md).

Only imported when the kernel backend is constructed, so numpy stays an
optional dependency.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

import numpy as np

from repro.config import DramOrgConfig

#: Names of the per-bank timing horizons, in the order they appear in the
#: scalar :class:`repro.dram.timing._BankTiming` flat list.  The kernel packs
#: one int64 array per field; keep in lock-step with ``_BankTiming.__slots__``.
BANK_FIELDS = ("act_allowed", "pre_allowed", "rd_allowed", "wr_allowed")

#: Sentinel row value of a closed bank in the open-row mirror (DRAM rows are
#: non-negative, so -1 can never match a request's target row).
NO_OPEN_ROW = -1


class Geometry(NamedTuple):
    """Dense-index geometry of one platform organization."""

    channels: int
    ranks_per_channel: int
    bank_groups: int
    banks_per_group: int
    banks_per_rank: int
    total_ranks: int
    total_banks: int


def pack_geometry(org: DramOrgConfig) -> Geometry:
    """The dense-index geometry the kernel arrays are shaped by."""
    total_ranks = org.channels * org.ranks_per_channel
    return Geometry(
        channels=org.channels,
        ranks_per_channel=org.ranks_per_channel,
        bank_groups=org.bank_groups,
        banks_per_group=org.banks_per_group,
        banks_per_rank=org.banks_per_rank,
        total_ranks=total_ranks,
        total_banks=total_ranks * org.banks_per_rank,
    )


def pack_bank_state(org: DramOrgConfig) -> Dict[str, "np.ndarray"]:
    """Preallocated per-bank state arrays for ``org``.

    Returns one ``int64`` array of length ``total_banks`` per
    :data:`BANK_FIELDS` entry (all zero, the scalar engine's initial state)
    plus ``"open_row"`` initialized to :data:`NO_OPEN_ROW` (all banks
    closed).  Shapes and dtypes are the kernel's array contract; every
    consumer (timing kernel, batched scan, burst settlement) indexes these by
    the dense ``bank_index``.
    """
    geometry = pack_geometry(org)
    arrays: Dict[str, np.ndarray] = {
        field: np.zeros(geometry.total_banks, dtype=np.int64)
        for field in BANK_FIELDS
    }
    arrays["open_row"] = np.full(geometry.total_banks, NO_OPEN_ROW,
                                 dtype=np.int64)
    return arrays
