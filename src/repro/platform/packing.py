"""Spec→array packing for the kernel backend.

The kernel backend (see :mod:`repro.kernel`) keeps hot-path DRAM state in
preallocated numpy arrays indexed by the dense ``rank_index``/``bank_index``
stamped on :class:`~repro.dram.commands.DramAddress`.  This module is the
packing layer between a platform's :class:`~repro.config.DramOrgConfig` /
:class:`~repro.config.DramTimingConfig` (whatever preset produced them) and
that array layout:

* :func:`pack_geometry` — the dense-index geometry (counts and strides);
* :func:`pack_bank_state` — the preallocated per-bank timing-horizon arrays
  plus the open-row mirror (dtype/shape contract in ARCHITECTURE.md);
* :func:`pack_rank_state` / :func:`pack_channel_state` — the per-rank and
  per-channel timing scalars as dense int64 arrays (one array per
  ``_RankTiming`` / ``_ChannelTiming`` slot), including the tFAW window as a
  fixed ``(total_ranks, 4)`` ring plus length/head cursors.  The compiled
  stepper core reads (and, for burst settlement, writes) these directly;
  the scalar engine reads and writes them through the kernel's view shims.

Only imported when the kernel backend is constructed, so numpy stays an
optional dependency.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

import numpy as np

from repro.config import DramOrgConfig, DramTimingConfig

#: Names of the per-bank timing horizons, in the order they appear in the
#: scalar :class:`repro.dram.timing._BankTiming` flat list.  The kernel packs
#: one int64 array per field; keep in lock-step with ``_BankTiming.__slots__``.
BANK_FIELDS = ("act_allowed", "pre_allowed", "rd_allowed", "wr_allowed")

#: Sentinel row value of a closed bank in the open-row mirror (DRAM rows are
#: non-negative, so -1 can never match a request's target row).
NO_OPEN_ROW = -1


class Geometry(NamedTuple):
    """Dense-index geometry of one platform organization."""

    channels: int
    ranks_per_channel: int
    bank_groups: int
    banks_per_group: int
    banks_per_rank: int
    total_ranks: int
    total_banks: int


def pack_geometry(org: DramOrgConfig) -> Geometry:
    """The dense-index geometry the kernel arrays are shaped by."""
    total_ranks = org.channels * org.ranks_per_channel
    return Geometry(
        channels=org.channels,
        ranks_per_channel=org.ranks_per_channel,
        bank_groups=org.bank_groups,
        banks_per_group=org.banks_per_group,
        banks_per_rank=org.banks_per_rank,
        total_ranks=total_ranks,
        total_banks=total_ranks * org.banks_per_rank,
    )


def pack_bank_state(org: DramOrgConfig) -> Dict[str, "np.ndarray"]:
    """Preallocated per-bank state arrays for ``org``.

    Returns one ``int64`` array of length ``total_banks`` per
    :data:`BANK_FIELDS` entry (all zero, the scalar engine's initial state)
    plus ``"open_row"`` initialized to :data:`NO_OPEN_ROW` (all banks
    closed).  Shapes and dtypes are the kernel's array contract; every
    consumer (timing kernel, batched scan, burst settlement) indexes these by
    the dense ``bank_index``.
    """
    geometry = pack_geometry(org)
    arrays: Dict[str, np.ndarray] = {
        field: np.zeros(geometry.total_banks, dtype=np.int64)
        for field in BANK_FIELDS
    }
    arrays["open_row"] = np.full(geometry.total_banks, NO_OPEN_ROW,
                                 dtype=np.int64)
    return arrays


#: The scalar ``_RankTiming`` slots that pack one int64 cell per rank, with
#: their initial values (``None`` means "filled from timing config": the
#: refresh due cell starts at tREFI).  ``act_allowed_bg`` and ``faw_window``
#: are packed separately (2D table and ring buffer).  Keep in lock-step with
#: ``repro.dram.timing._RankTiming.__slots__``.
RANK_SCALAR_FIELDS = (
    ("act_allowed", 0),
    ("last_read_cycle", -(10 ** 9)),
    ("last_read_bg", -1),
    ("last_host_read_cycle", -(10 ** 9)),
    ("last_nda_read_cycle", -(10 ** 9)),
    ("last_write_cycle", -(10 ** 9)),
    ("last_write_bg", -1),
    ("busy_until", 0),
    ("data_busy_from", 0),
    ("data_busy_until", 0),
    ("nda_bus_free", 0),
    ("refresh_due", None),
    ("refreshing_until", 0),
)

#: ``_ChannelTiming`` slots, one int64 cell per channel
#: (``last_col_was_write`` packs as 0/1).
CHANNEL_SCALAR_FIELDS = (
    ("data_bus_free", 0),
    ("last_col_rank", -1),
    ("last_data_end", 0),
    ("last_col_was_write", 0),
    ("last_col_cycle", -(10 ** 9)),
)

#: Capacity of the tFAW sliding window (the last four activates).
FAW_CAPACITY = 4


def pack_rank_state(org: DramOrgConfig,
                    timing: DramTimingConfig) -> Dict[str, "np.ndarray"]:
    """Preallocated per-rank timing state for ``org``.

    One int64 array of length ``total_ranks`` per :data:`RANK_SCALAR_FIELDS`
    entry, plus ``act_allowed_bg`` as a ``(total_ranks, bank_groups)`` table
    and the tFAW window as ``faw`` (``(total_ranks, 4)`` ring buffer) with
    ``faw_len`` / ``faw_head`` cursors.  Initial values replicate the scalar
    ``_RankTiming`` constructor exactly.
    """
    geometry = pack_geometry(org)
    n = geometry.total_ranks
    arrays: Dict[str, np.ndarray] = {}
    for field, initial in RANK_SCALAR_FIELDS:
        if initial is None:
            initial = timing.tREFI
        arrays[field] = np.full(n, initial, dtype=np.int64)
    arrays["act_allowed_bg"] = np.zeros((n, geometry.bank_groups),
                                        dtype=np.int64)
    arrays["faw"] = np.zeros((n, FAW_CAPACITY), dtype=np.int64)
    arrays["faw_len"] = np.zeros(n, dtype=np.int64)
    arrays["faw_head"] = np.zeros(n, dtype=np.int64)
    return arrays


def pack_channel_state(org: DramOrgConfig) -> Dict[str, "np.ndarray"]:
    """Preallocated per-channel (host data bus) timing state for ``org``."""
    arrays: Dict[str, np.ndarray] = {}
    for field, initial in CHANNEL_SCALAR_FIELDS:
        arrays[field] = np.full(org.channels, initial, dtype=np.int64)
    return arrays
