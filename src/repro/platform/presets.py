"""Named platform presets.

``ddr4-2400`` is the paper's Table II evaluation platform and derives
*bit-exactly* to the legacy hand-entered defaults in :mod:`repro.config`
(pinned by ``tests/test_platform.py``).  The other presets are
representative members of their device class: timing follows the JEDEC
speed-bin values where the class defines them, geometry and energy are
modeled at class-typical points (not one vendor's datasheet).

Add a platform by registering a :class:`~repro.platform.spec.PlatformSpec`
(see the "Platform layer" section of ARCHITECTURE.md for the recipe); the
derivation and :meth:`DramTimingConfig.validate` reject parameter sets the
timing model cannot represent (e.g. turnaround spacings that go
non-positive) at construction time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.platform.spec import PlatformSpec

#: The paper's evaluation platform (Table II): DDR4-2400, 8 Gb x8 devices,
#: 2 channels x 2 ranks.  Nanosecond values are the JEDEC DDR4-2400 CL16
#: speed bin; at 1.2 GHz they quantize to exactly the Table II cycle
#: counts.
DDR4_2400 = PlatformSpec(
    name="ddr4-2400",
    description="Paper Table II baseline: DDR4-2400 CL16, 8Gb x8, 2ch x 2rk",
    data_rate_mtps=2400,
)

#: The same DDR4 die retimed to the 3200 MT/s bin (CL22).  tCCD_L is 5 ns
#: by JEDEC, i.e. 8 cycles at 1.6 GHz; tRTRS grows with the clock (it is a
#: bus-settling time, roughly 1.9 ns on a terminated DIMM bus).
DDR4_3200 = PlatformSpec(
    name="ddr4-3200",
    description="DDR4-3200 CL22 speed bin, same organization as the baseline",
    data_rate_mtps=3200,
    tCCDL_ck=8,
    tRTRS_ck=3,
    tCL_ns=13.75,
    tRCD_ns=13.75,
    tRP_ns=13.75,
    tRC_ns=45.75,
    tRRDS_ns=2.5,
    tFAW_ns=21.0,
)

#: LPDDR4-3200-class: 32-bit channels (4 byte lanes), BL16, no bank
#: groups, slower analog core, and a long bus-turnaround gap (the
#: unterminated low-power bus needs settling time — this is also what
#: keeps the derived cross-rank turnarounds representable).
LPDDR4_3200 = PlatformSpec(
    name="lpddr4-3200",
    description="LPDDR4-3200-class: 32-bit channels, BL16, no bank groups",
    data_rate_mtps=3200,
    burst_transfers=16,
    channels=2,
    ranks_per_channel=2,
    bank_groups=1,
    banks_per_group=8,
    rows_per_bank=1 << 15,
    chips_per_rank=4,
    tCCDS_ck=8,
    tCCDL_ck=8,
    tRTRS_ck=8,
    tCL_ns=17.5,
    tRCD_ns=18.0,
    tRP_ns=21.0,
    tCWL_ns=8.75,
    tRAS_ns=42.0,
    tRC_ns=None,
    tWTRS_ns=10.0,
    tWTRL_ns=10.0,
    tWR_ns=18.0,
    tRRDS_ns=10.0,
    tRRDL_ns=10.0,
    tFAW_ns=40.0,
    tREFI_ns=3904.0,
    tRFC_ns=280.0,
    activate_nj=0.8,
    host_access_pj_per_bit=15.0,
    pe_access_pj_per_bit=8.0,
    dram_background_mw_per_rank=180.0,
)

#: DDR5-4800-class: BL16, 8 bank groups, CL40, 16 Gb devices.  A DDR5
#: DIMM splits into independent 32-bit subchannels (modeled as channels
#: here, 4 byte lanes each) so a BL16 burst carries exactly one 64-byte
#: cache line — the advertised peak is cadence-achievable, as on every
#: other preset.  tCCD_S is 8 clocks by definition at BL16; tCCD_L is
#: 5 ns.
DDR5_4800 = PlatformSpec(
    name="ddr5-4800",
    description="DDR5-4800 CL40 class: BL16, 32-bit subchannels, 8 bank groups",
    data_rate_mtps=4800,
    burst_transfers=16,
    chips_per_rank=4,
    bank_groups=8,
    banks_per_group=4,
    tCCDS_ck=8,
    tCCDL_ck=12,
    tRTRS_ck=4,
    tCL_ns=16.66,
    tRCD_ns=16.66,
    tRP_ns=16.66,
    tCWL_ns=15.83,
    tRAS_ns=32.0,
    tRC_ns=None,
    tWTRS_ns=2.5,
    tWTRL_ns=10.0,
    tWR_ns=30.0,
    tRRDS_ns=3.33,
    tRRDL_ns=5.0,
    tFAW_ns=13.33,
    tREFI_ns=3900.0,
    tRFC_ns=410.0,
    activate_nj=0.9,
    host_access_pj_per_bit=21.0,
    pe_access_pj_per_bit=10.0,
    dram_background_mw_per_rank=320.0,
)

#: HBM2-class stack: 8 independent 128-bit channels (16 byte lanes), one
#: rank each, BL4, 2 KiB rows, 1 GHz command clock.  tRTRS is irrelevant
#: at one rank per channel but is kept large enough that the derived
#: cross-rank turnaround stays representable.
HBM2 = PlatformSpec(
    name="hbm2",
    description="HBM2-class stack: 8 x 128-bit channels, BL4, 1 rank each",
    data_rate_mtps=2000,
    burst_transfers=4,
    channels=8,
    ranks_per_channel=1,
    bank_groups=4,
    banks_per_group=4,
    rows_per_bank=1 << 14,
    chips_per_rank=16,
    row_bytes_per_chip=128,
    tCCDS_ck=2,
    tCCDL_ck=4,
    tRTRS_ck=6,
    tCL_ns=14.0,
    tRCD_ns=14.0,
    tRP_ns=14.0,
    tCWL_ns=7.0,
    tRAS_ns=33.0,
    tRC_ns=None,
    tWTRS_ns=2.5,
    tWTRL_ns=7.5,
    tWR_ns=15.0,
    tRRDS_ns=4.0,
    tRRDL_ns=6.0,
    tFAW_ns=16.0,
    tREFI_ns=3900.0,
    tRFC_ns=260.0,
    activate_nj=0.9,
    host_access_pj_per_bit=7.0,
    pe_access_pj_per_bit=6.0,
    dram_background_mw_per_rank=450.0,
)

#: Registry of named presets, in declaration order (the paper baseline
#: first).  ``register_platform`` extends it at runtime.
PLATFORM_REGISTRY: Dict[str, PlatformSpec] = {
    spec.name: spec
    for spec in (DDR4_2400, DDR4_3200, LPDDR4_3200, DDR5_4800, HBM2)
}

#: The preset every un-parameterized code path uses — the paper baseline.
DEFAULT_PLATFORM = DDR4_2400.name


def get_platform(name: str) -> PlatformSpec:
    """Look a preset up by name; raises ``KeyError`` with the valid names."""
    try:
        return PLATFORM_REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(PLATFORM_REGISTRY))
        raise KeyError(f"unknown platform {name!r}; valid: {valid}") from None


def platform_names() -> List[str]:
    """All registered preset names, baseline first."""
    return list(PLATFORM_REGISTRY)


def register_platform(spec: PlatformSpec, replace: bool = False) -> PlatformSpec:
    """Register a preset (validating its derived configuration first)."""
    if spec.name in PLATFORM_REGISTRY and not replace:
        raise ValueError(f"platform {spec.name!r} is already registered")
    spec.system_config()  # validates timing/org derivations, fails loudly
    PLATFORM_REGISTRY[spec.name] = spec
    return spec
