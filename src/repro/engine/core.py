"""Engine cores: the component protocol and the two simulation drivers.

**The wake/fast-forward contract.**  A :class:`Component` must guarantee
that for every cycle ``t`` with ``now <= t < next_event_cycle(now)``,
processing cycle ``t`` (``on_wake(t)``) would not change any simulation
state that other components or the final results can observe — no DRAM
command, no request enqueue/completion, no RNG draw, no first-attempt access
classification.  Wake-ups may be conservative (early); they must never be
late.  State that accrues on *every* cycle regardless of activity (host-core
retirement arithmetic, windowed idle statistics) is advanced lazily:
``advance(stop)`` must bring the component to the same state as processing
each skipped cycle individually — the components below achieve this with
closed-form integer arithmetic, so the event engine is bit-exact with the
cycle engine.

Within a processed cycle, components run in registration order, which
mirrors the legacy ``ChopimSystem.step`` ordering exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, runtime_checkable

from repro.engine.queue import INFINITY


@runtime_checkable
class Component(Protocol):
    """One event-driven participant of the simulation loop."""

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which this component may act."""
        ...

    def on_wake(self, now: int) -> None:
        """Process cycle ``now`` (called for every engine-processed cycle)."""
        ...

    def advance(self, stop: int) -> None:
        """Catch lazily-advanced state up to (but excluding) cycle ``stop``."""
        ...


class SimulationEngine:
    """Base driver: owns the component list and the cycle counter."""

    def __init__(self, components: Iterable[Component]) -> None:
        self.components: List[Component] = list(components)
        # Components whose advance() is a documented no-op opt out with a
        # ``needs_advance = False`` class attribute; skipping them saves two
        # calls per component per processed cycle.
        self._advancing: List[Component] = [
            c for c in self.components if getattr(c, "needs_advance", True)
        ]
        self.cycles_processed = 0
        self.cycles_skipped = 0

    def run_until(self, now: int, target: int) -> int:
        """Advance from ``now`` to ``target``; returns the new cycle."""
        raise NotImplementedError

    def process_cycle(self, now: int) -> None:
        """Run one full cycle: lazy catch-up first, then every component."""
        for component in self._advancing:
            component.advance(now)
        for component in self.components:
            component.on_wake(now)
        self.cycles_processed += 1

    def flush(self, target: int) -> None:
        """Bring every lazily-advanced component up to ``target``."""
        for component in self._advancing:
            component.advance(target)


class CycleEngine(SimulationEngine):
    """The cycle-by-cycle baseline: processes every cycle unconditionally."""

    name = "cycle"

    def run_until(self, now: int, target: int) -> int:
        while now < target:
            self.process_cycle(now)
            now += 1
        self.flush(target)
        return now


class EventEngine(SimulationEngine):
    """Event-driven driver: fast-forwards over provably idle cycles."""

    name = "event"

    def run_until(self, now: int, target: int) -> int:
        # Every component is re-polled each iteration, so the earliest wake
        # is a plain min — no queue structure needed for the poll itself.
        components = self.components
        while now < target:
            wake = INFINITY
            for component in components:
                candidate = component.next_event_cycle(now)
                if candidate < wake:
                    wake = candidate
            if wake <= now:
                self.process_cycle(now)
                now += 1
                continue
            if wake >= target:
                self.cycles_skipped += target - now
                now = target
                break
            # Fast-forward: cycles [now, wake) are no-ops for every
            # component; lazy state is reconciled by advance() at the next
            # processed cycle (or the flush below).
            self.cycles_skipped += wake - now
            now = wake
        self.flush(target)
        return now


def make_engine(kind: str, components: Iterable[Component]) -> SimulationEngine:
    """Engine factory for the ``engine="cycle"|"event"`` system switch."""
    if kind == "cycle":
        return CycleEngine(components)
    if kind == "event":
        return EventEngine(components)
    raise ValueError(f"unknown engine {kind!r}; expected 'cycle' or 'event'")


__all__ = [
    "Component",
    "CycleEngine",
    "EventEngine",
    "INFINITY",
    "SimulationEngine",
    "make_engine",
]
