"""Engine cores: the component protocol, the wake hub and the two drivers.

**The wake/fast-forward contract.**  A :class:`Component` must guarantee
that for every cycle ``t`` with ``now <= t < next_event_cycle(now)``,
processing cycle ``t`` (``on_wake(t)``) would not change any simulation
state that other components or the final results can observe — no DRAM
command, no request enqueue/completion, no RNG draw, no first-attempt access
classification.  Wake-ups may be conservative (early); they must never be
late.  State that accrues on *every* cycle regardless of activity (host-core
retirement arithmetic, windowed idle statistics) is advanced lazily:
``advance(stop)`` must bring the component to the same state as processing
each skipped cycle individually — the components achieve this with
closed-form integer arithmetic, so the event engine is bit-exact with the
cycle engine.

**Selective wake.**  The event engine does not re-poll components: each
registered component owns one slot in an :class:`IndexedCalendar` holding
its cached absolute wake cycle, and the per-iteration scheduling decision is
the calendar's O(1) minimum.  A cached wake is recomputed only when the
unit's slot is *dirty*: the engine marks a unit dirty after it runs (its own
actions moved its state), and cross-component interactions push dirty
notifications through the :class:`WakeHub` a component receives at
registration (host enqueue dirties the target channel, a host DRAM issue
dirties the rank's NDA unit, a completed NDA instruction dirties the NDA
host, ...).  The resulting invariant mirrors the wake contract:

    a unit's calendar entry may be *early* (the unit runs as a provable
    no-op and is re-polled), but every state change that could make a unit
    eligible earlier than its cached wake MUST dirty its slot.

Within a processed cycle, due-or-dirty units run in registration (slot)
order, which mirrors the legacy ``ChopimSystem.step`` ordering exactly;
units that are neither due nor dirty are skipped entirely — the engine's
per-cycle cost is O(active units), not O(components x ranks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Protocol, runtime_checkable

from repro.engine.queue import INFINITY, IndexedCalendar


@runtime_checkable
class Component(Protocol):
    """One event-driven participant of the simulation loop."""

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which this component may act."""
        ...

    def on_wake(self, now: int) -> None:
        """Process cycle ``now`` (called for every cycle the unit is due)."""
        ...

    def advance(self, stop: int) -> None:
        """Catch lazily-advanced state up to (but excluding) cycle ``stop``."""
        ...


class WakeHub:
    """Push-based dirty notification between schedulable units.

    Components (and the subsystems they wrap) call :meth:`dirty` with the
    target unit's slot whenever they change state that could move that
    unit's wake-up *earlier*; the engine re-polls dirty units before its
    next scheduling decision and before skipping them within a processed
    cycle.  Marking is idempotent per drain (a flag per slot), so hot paths
    may notify unconditionally without flooding the engine.
    """

    __slots__ = ("flags", "pending", "dirty_counts")

    def __init__(self, slots: int) -> None:
        self.flags = bytearray(slots)
        self.pending: List[int] = []
        #: External notifications received per slot (profiling; the engine's
        #: own post-run re-poll marks do not count).
        self.dirty_counts: List[int] = [0] * slots

    def dirty(self, slot: int) -> None:
        """Mark ``slot`` for re-poll (a cross-component notification)."""
        self.dirty_counts[slot] += 1
        if not self.flags[slot]:
            self.flags[slot] = 1
            self.pending.append(slot)

    def mark(self, slot: int) -> None:
        """Engine-internal marking (post-run re-poll; not counted)."""
        if not self.flags[slot]:
            self.flags[slot] = 1
            self.pending.append(slot)

    def mark_all(self) -> None:
        """Mark every slot (engine start, measurement reset, step())."""
        for slot in range(len(self.flags)):
            if not self.flags[slot]:
                self.flags[slot] = 1
                self.pending.append(slot)

    def dirtier(self, slot: int):
        """A zero-argument callable bound to ``dirty(slot)`` (for hooks)."""
        return lambda: self.dirty(slot)


class SimulationEngine:
    """Base driver: owns the component list, wake hub and cycle counters."""

    def __init__(self, components: Iterable[Component]) -> None:
        self.components: List[Component] = list(components)
        # Components whose advance() is a documented no-op opt out with a
        # ``needs_advance = False`` class attribute; skipping them saves two
        # calls per component per processed cycle.  Components that advance
        # themselves lazily at their own trigger points (the host unit syncs
        # cores on completion delivery and live ticks) opt out of the
        # per-cycle call too but still set ``needs_flush = True`` so
        # :meth:`flush` brings them to the target cycle.
        self._advancing: List[Component] = [
            c for c in self.components if getattr(c, "needs_advance", True)
        ]
        self._flushing: List[Component] = [
            c for c in self.components
            if getattr(c, "needs_advance", True) or getattr(c, "needs_flush", False)
        ]
        count = len(self.components)
        self.hub = WakeHub(count)
        self.unit_labels: List[str] = [
            getattr(c, "unit_label", type(c).__name__) for c in self.components
        ]
        #: next_event_cycle calls per unit (the wake probes the old engine
        #: issued once per component per loop iteration).
        self.wake_probes: List[int] = [0] * count
        #: on_wake calls per unit (cycles the unit was actually processed).
        self.unit_wakes: List[int] = [0] * count
        self.cycles_processed = 0
        self.cycles_skipped = 0
        # Hand each component its hub and slot; components without a
        # register() method never push (or receive targeted) notifications.
        for slot, component in enumerate(self.components):
            register = getattr(component, "register", None)
            if register is not None:
                register(self.hub, slot)
        self.hub.mark_all()

    def run_until(self, now: int, target: int) -> int:
        """Advance from ``now`` to ``target``; returns the new cycle."""
        raise NotImplementedError

    def process_cycle(self, now: int) -> None:
        """Run one full broadcast cycle: lazy catch-up, then every component.

        This is the legacy per-cycle semantics (used by the cycle engine and
        by ``ChopimSystem.step``); the event engine's selective path lives in
        :meth:`EventEngine._process_selective`.
        """
        for component in self._advancing:
            component.advance(now)
        for component in self.components:
            component.on_wake(now)
        self.cycles_processed += 1

    def flush(self, target: int) -> None:
        """Bring every lazily-advanced component up to ``target``."""
        for component in self._flushing:
            component.advance(target)

    def invalidate_wakes(self) -> None:
        """Force a re-poll of every unit (measurement resets, workload swaps)."""
        self.hub.mark_all()

    def wake_stats(self) -> List[Dict[str, object]]:
        """Per-unit scheduling statistics (profiling / BENCH_engine.json)."""
        processed = self.cycles_processed
        stats = []
        post_counts = getattr(self, "post_run_updates", None)
        for slot, label in enumerate(self.unit_labels):
            wakes = self.unit_wakes[slot]
            stats.append({
                "unit": label,
                "wake_probes": self.wake_probes[slot],
                "wakes_run": wakes,
                "dirty_notifications": self.hub.dirty_counts[slot],
                "post_run_updates": post_counts[slot] if post_counts else 0,
                "skip_ratio": round(1.0 - wakes / processed, 4) if processed else 0.0,
            })
        return stats


class CycleEngine(SimulationEngine):
    """The cycle-by-cycle baseline: processes every cycle unconditionally."""

    name = "cycle"

    def run_until(self, now: int, target: int) -> int:
        while now < target:
            self.process_cycle(now)
            now += 1
        self.flush(target)
        return now


class EventEngine(SimulationEngine):
    """Selective-wake driver: consults the wake calendar, not the components.

    Per iteration: drain the hub (re-poll only units whose wake may have
    changed), read the calendar minimum in O(1), and either fast-forward to
    it or process the cycle — waking only due-or-dirty units.
    """

    name = "event"

    def __init__(self, components: Iterable[Component]) -> None:
        super().__init__(components)
        self.calendar = IndexedCalendar(len(self.components))
        # Cursor-based advancers (idempotent catch-up) defer to flush time
        # on the selective path; the broadcast path still advances them per
        # cycle for the step()-driven runtime API.
        self._selective_advancing = [
            c for c in self._advancing
            if not getattr(c, "advance_deferrable", False)
        ]
        self._ran_scratch: List[int] = []
        # Units exposing post_run_wake(now) refresh their calendar entry in
        # O(1) after a run instead of being marked for a full re-poll.
        self._post_run = [getattr(c, "post_run_wake", None)
                          for c in self.components]
        self.post_run_updates: List[int] = [0] * len(self.components)
        # Bound-method tables: the selective loop dispatches through these
        # to avoid one attribute lookup per call at the innermost level.
        self._poll_fns = [c.next_event_cycle for c in self.components]
        self._wake_fns = [c.on_wake for c in self.components]

    def process_cycle(self, now: int) -> None:
        # Broadcast path (ChopimSystem.step / manual driving): every unit may
        # have acted without the calendar noticing, so re-poll everything.
        super().process_cycle(now)
        self.hub.mark_all()

    def _drain_dirty(self, now: int) -> None:
        polls = self._poll_fns
        calendar = self.calendar
        flags = self.hub.flags
        pending = self.hub.pending
        probes = self.wake_probes
        for slot in pending:
            if flags[slot]:
                flags[slot] = 0
                probes[slot] += 1
                calendar.set(slot, polls[slot](now))
        del pending[:]

    def run_until(self, now: int, target: int) -> int:
        calendar = self.calendar
        pending = self.hub.pending
        while now < target:
            if pending:
                self._drain_dirty(now)
            wake = calendar.min_cycle()
            if wake <= now:
                self._process_selective(now)
                now += 1
                continue
            if wake >= target:
                self.cycles_skipped += target - now
                now = target
                break
            # Fast-forward: cycles [now, wake) are no-ops for every unit
            # (calendar entries are never late); lazy state is reconciled by
            # advance() at the next processed cycle (or the flush below).
            self.cycles_skipped += wake - now
            now = wake
        self.flush(target)
        return now

    def _process_selective(self, now: int) -> None:
        """Process cycle ``now``, waking only due-or-dirty units in slot order.

        Dirty flags are consulted *live*: a unit dirtied mid-cycle by an
        earlier slot (work delivered by a completed launch packet, a freed
        queue entry) is re-polled when its slot is visited and runs this very
        cycle when due — exactly as the legacy per-cycle loop would.  Dirty
        notifications targeting already-visited slots take effect next cycle,
        which also matches the legacy ordering (the earlier component has
        already run this cycle).
        """
        for component in self._selective_advancing:
            component.advance(now)
        polls = self._poll_fns
        wakes = self._wake_fns
        calendar = self.calendar
        hub = self.hub
        flags = hub.flags
        values = calendar.values
        probes = self.wake_probes
        unit_wakes = self.unit_wakes
        ran = self._ran_scratch
        for slot in range(len(values)):
            if flags[slot]:
                flags[slot] = 0
                probes[slot] += 1
                wake = polls[slot](now)
                calendar.set(slot, wake)
                if wake > now:
                    continue
            elif values[slot] > now:
                continue
            wakes[slot](now)
            unit_wakes[slot] += 1
            ran.append(slot)
        # A unit that ran has moved its own state: refresh its calendar entry
        # in O(1) where the unit supports it, otherwise mark it for a full
        # re-poll before the next scheduling decision (post-run marks are
        # engine bookkeeping, not dirty notifications).
        post_run = self._post_run
        post_counts = self.post_run_updates
        for slot in ran:
            refresh = post_run[slot]
            if refresh is None:
                hub.mark(slot)
            else:
                calendar.set(slot, refresh(now))
                post_counts[slot] += 1
        del ran[:]
        self.cycles_processed += 1


def make_engine(kind: str, components: Iterable[Component]) -> SimulationEngine:
    """Engine factory for the ``engine="cycle"|"event"`` system switch."""
    if kind == "cycle":
        return CycleEngine(components)
    if kind == "event":
        return EventEngine(components)
    raise ValueError(f"unknown engine {kind!r}; expected 'cycle' or 'event'")


__all__ = [
    "Component",
    "CycleEngine",
    "EventEngine",
    "INFINITY",
    "SimulationEngine",
    "WakeHub",
    "make_engine",
]
