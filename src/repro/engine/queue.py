"""Wake-up ordering structures for the simulation engines.

Two structures live here:

* :class:`IndexedCalendar` — the event engine's wake calendar: one cached
  absolute wake cycle per schedulable unit (components are assigned dense
  slot indices at registration), with an O(1) minimum and O(log n) updates.
  Unlike a lazy heap there is exactly one live entry per slot, so the
  engine can also read any unit's cached wake by slot in O(1) — which is
  what makes the per-processed-cycle "due or dirty" check a flat array
  scan instead of a re-poll of every component.
* :class:`EventQueue` — a general (cycle, item) priority queue with lazy
  invalidation, retained as a standalone utility for setups that schedule
  many more items than slots (e.g. sharded multi-system drivers).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

#: Wake-up value meaning "this component needs no wake-up".
INFINITY = 1 << 62


class IndexedCalendar:
    """Indexed min-structure of absolute wake cycles, one entry per slot.

    ``values[slot]`` is the slot's current wake cycle (``INFINITY`` =
    never).  All slots are always present; "unscheduled" simply means a
    value of ``INFINITY``.

    Two representations behind one interface, chosen by slot count:

    * **flat** (``slots <= _FLAT_LIMIT``): updates are a plain list store
      and the minimum is a C-speed ``min()`` over the value list.  For the
      handful of units a single system registers, this beats maintaining
      heap invariants (measured: calendar updates outnumber minimum reads
      ~4:1 on dense workloads).
    * **heap** (larger): a classic indexed binary min-heap — ``_heap``
      orders the slots, ``_pos`` maps a slot to its heap position so an
      update re-heapifies only the affected path.  O(1) minimum, O(log n)
      updates, for sharded/multi-system setups with many units.
    """

    __slots__ = ("values", "_heap", "_pos")

    #: Largest slot count for which the flat representation is used.
    _FLAT_LIMIT = 64

    def __init__(self, slots: int) -> None:
        self.values: List[int] = [INFINITY] * slots
        if slots <= self._FLAT_LIMIT:
            self._heap: Optional[List[int]] = None
            self._pos: Optional[List[int]] = None
        else:
            self._heap = list(range(slots))
            self._pos = list(range(slots))

    def __len__(self) -> int:
        return len(self.values)

    def min_cycle(self) -> int:
        """The earliest wake cycle over all slots (``INFINITY`` when none)."""
        heap = self._heap
        if heap is None:
            return min(self.values) if self.values else INFINITY
        return self.values[heap[0]] if heap else INFINITY

    def min_slot(self) -> int:
        """The slot holding the earliest wake (-1 for an empty calendar)."""
        if self._heap is None:
            if not self.values:
                return -1
            return self.values.index(min(self.values))
        return self._heap[0] if self._heap else -1

    def set(self, slot: int, cycle: int) -> None:
        """Update ``slot``'s wake cycle (no-op if unchanged)."""
        values = self.values
        old = values[slot]
        if cycle == old:
            return
        values[slot] = cycle
        if self._heap is None:
            return
        if cycle < old:
            self._sift_up(self._pos[slot])
        else:
            self._sift_down(self._pos[slot])

    # -- heap internals ---------------------------------------------------- #

    def _sift_up(self, index: int) -> None:
        heap, pos, values = self._heap, self._pos, self.values
        slot = heap[index]
        value = values[slot]
        while index > 0:
            parent = (index - 1) >> 1
            parent_slot = heap[parent]
            if values[parent_slot] <= value:
                break
            heap[index] = parent_slot
            pos[parent_slot] = index
            index = parent
        heap[index] = slot
        pos[slot] = index

    def _sift_down(self, index: int) -> None:
        heap, pos, values = self._heap, self._pos, self.values
        size = len(heap)
        slot = heap[index]
        value = values[slot]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            right = child + 1
            if right < size and values[heap[right]] < values[heap[child]]:
                child = right
            child_slot = heap[child]
            if values[child_slot] >= value:
                break
            heap[index] = child_slot
            pos[child_slot] = index
            index = child
        heap[index] = slot
        pos[slot] = index


class EventQueue:
    """Priority queue of (cycle, item) wake-ups with lazy invalidation.

    Re-scheduling an item simply pushes a new entry; stale entries are
    discarded on pop.  Not used by the engines (the event engine keeps one
    entry per unit in :class:`IndexedCalendar` instead) — retained as a
    standalone utility for many-items-few-slots schedulers.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._scheduled: Dict[int, int] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._scheduled)

    def schedule(self, cycle: int, item: Any) -> None:
        """Schedule (or re-schedule) ``item`` to wake at ``cycle``.

        ``INFINITY`` cancels any outstanding wake-up for the item.
        """
        key = id(item)
        if cycle >= INFINITY:
            self._scheduled.pop(key, None)
            return
        current = self._scheduled.get(key)
        if current == cycle:
            return
        self._scheduled[key] = cycle
        heapq.heappush(self._heap, (cycle, next(self._counter), item))

    def earliest_cycle(self) -> int:
        """The earliest scheduled wake-up cycle (``INFINITY`` when empty)."""
        self._discard_stale()
        if not self._heap:
            return INFINITY
        return self._heap[0][0]

    def pop_due(self, now: int) -> Optional[Any]:
        """Pop one item scheduled at or before ``now`` (None when there is none)."""
        self._discard_stale()
        if not self._heap or self._heap[0][0] > now:
            return None
        _, _, item = heapq.heappop(self._heap)
        self._scheduled.pop(id(item), None)
        return item

    def _discard_stale(self) -> None:
        heap = self._heap
        while heap:
            cycle, _, item = heap[0]
            if self._scheduled.get(id(item)) == cycle:
                return
            heapq.heappop(heap)

    def clear(self) -> None:
        self._heap.clear()
        self._scheduled.clear()
