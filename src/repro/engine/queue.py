"""A small event queue ordering component wake-ups by cycle.

Implemented as a binary heap with lazy invalidation: re-scheduling an item
simply pushes a new entry, and stale entries are discarded on pop.

Note: :class:`~repro.engine.core.EventEngine` no longer uses this queue —
it re-polls every registered component each iteration, so its earliest wake
is a plain ``min`` (PR 2 hot-path rework).  The class is retained as a
standalone utility (this module also defines ``INFINITY``, the shared
"no wake-up" sentinel) for setups that register many more components than
they poll, e.g. sharded multi-system drivers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

#: Wake-up value meaning "this component needs no wake-up".
INFINITY = 1 << 62


class EventQueue:
    """Priority queue of (cycle, component) wake-ups."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Any]] = []
        self._scheduled: Dict[int, int] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._scheduled)

    def schedule(self, cycle: int, item: Any) -> None:
        """Schedule (or re-schedule) ``item`` to wake at ``cycle``.

        ``INFINITY`` cancels any outstanding wake-up for the item.
        """
        key = id(item)
        if cycle >= INFINITY:
            self._scheduled.pop(key, None)
            return
        current = self._scheduled.get(key)
        if current == cycle:
            return
        self._scheduled[key] = cycle
        heapq.heappush(self._heap, (cycle, next(self._counter), item))

    def earliest_cycle(self) -> int:
        """The earliest scheduled wake-up cycle (``INFINITY`` when empty)."""
        self._discard_stale()
        if not self._heap:
            return INFINITY
        return self._heap[0][0]

    def pop_due(self, now: int) -> Optional[Any]:
        """Pop one item scheduled at or before ``now`` (None when there is none)."""
        self._discard_stale()
        if not self._heap or self._heap[0][0] > now:
            return None
        _, _, item = heapq.heappop(self._heap)
        self._scheduled.pop(id(item), None)
        return item

    def _discard_stale(self) -> None:
        heap = self._heap
        while heap:
            cycle, _, item = heap[0]
            if self._scheduled.get(id(item)) == cycle:
                return
            heapq.heappop(heap)

    def clear(self) -> None:
        self._heap.clear()
        self._scheduled.clear()
