"""Engine components adapting the Chopim subsystems to the event protocol.

Each adapter wraps one slice of the legacy ``ChopimSystem.step`` body and is
one *schedulable unit* of the selective-wake engine: it computes its own
wake-up, owns one slot of the engine's wake calendar, and pushes dirty
notifications through the :class:`~repro.engine.core.WakeHub` when its
actions could move *another* unit's wake-up earlier.  The NDA subsystem is
split into one unit per rank controller plus the NDA host, so a processed
cycle touches only the ranks that can actually act.

Driven by the :class:`~repro.engine.core.CycleEngine` (broadcast, every
cycle) the adapters reproduce the original loop verbatim; under the
:class:`~repro.engine.core.EventEngine` only due-or-dirty units run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.engine.core import WakeHub
from repro.engine.queue import INFINITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import ChopimSystem


class ChannelComponent:
    """One host memory controller (plus its refresh duties).

    Dirty notifications pushed: a command issue is reported to the
    concurrent-access scheduler (which dirties the issued-to rank's NDA
    unit), and — because an issued RD/WR frees a queue entry — the host unit
    (back-pressured cores can retry) and the NDA host unit (stuck launch
    packets can retry) when either has something waiting.  Demand-read
    completions dirty the host unit through ``CoreModel.wake_listener``.
    """

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False

    def __init__(self, system: "ChopimSystem", channel: int) -> None:
        self.system = system
        self.channel = channel
        self.controller = system.channel_controllers[channel]
        self.unit_label = f"channel{channel}"
        self._hub: Optional[WakeHub] = None
        self._host_slot = -1
        self._nda_host_slot = -1

    def register(self, hub: WakeHub, slot: int) -> None:
        self._hub = hub

    def bind_targets(self, host_slot: int, nda_host_slot: int) -> None:
        self._host_slot = host_slot
        self._nda_host_slot = nda_host_slot

    def next_event_cycle(self, now: int) -> int:
        return self.controller.next_event_cycle(now)

    def post_run_wake(self, now: int) -> int:
        """O(1) calendar refresh after a run (no FR-FCFS probe needed)."""
        return self.controller.wake_after_tick(now)

    def on_wake(self, now: int) -> None:
        controller = self.controller
        system = self.system
        controller.tick(now)
        if controller.last_issue_cycle == now:
            system.scheduler.note_host_issue(
                self.channel, controller.last_issue_rank, now
            )
            hub = self._hub
            if system._host_component.backlog_requests:
                hub.dirty(self._host_slot)
            nda_host = system.nda_host
            if nda_host is not None and nda_host._pending_packets:
                hub.dirty(self._nda_host_slot)

    def advance(self, stop: int) -> None:
        """Channel state is purely event-driven; nothing accrues per cycle."""


class HostComponent:
    """All host cores plus the per-core back-pressure backlogs.

    Cores retire instructions on *every* cycle, so they are advanced lazily:
    each core carries a cursor of the next un-ticked cycle, and the batched
    fixed-point arithmetic of ``CoreModel.tick_dram`` makes any catch-up
    bit-identical to per-cycle ticking.  A core is synced exactly when its
    deferred span could matter:

    * just before a demand-read completion is delivered to it
      (:meth:`deliver_completion` — the completion mutates core state, so
      the arithmetic up to the delivery cycle must be settled first);
    * at the start of its :meth:`on_wake` handling on cycles the unit runs
      (live request emission and backlog retries need the core at ``now``);
    * at :meth:`advance` time (the engine's end-of-run flush).

    Unlike the broadcast engine, no per-cycle catch-up happens: a core that
    neither completes nor emits is pure arithmetic and stays deferred for
    the whole span.  Absolute next-request cycles are cached against the
    core's event counter — between misses and completions a core evolves
    deterministically from its cursor, so the cached cycle stays valid no
    matter how far the cursor lags.

    Wake sources beyond the cores' own next-request cycles: a backlogged
    request whose target queue has space wakes the unit immediately; a
    backlogged request facing a full queue contributes nothing (the blocking
    channel dirties this unit when it issues and frees an entry), and
    delivered read completions dirty it through ``CoreModel.wake_listener``.
    """

    #: Cores are synced at their own trigger points, not once per processed
    #: cycle; the engine only calls advance() at flush time.
    needs_advance = False
    needs_flush = True
    unit_label = "host"

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        count = len(system.cores)
        self._cursors: List[int] = [0] * count
        self._wake_cache: List[Tuple[int, int]] = [(-1, 0)] * count
        #: Requests sitting in per-core backlogs (O(1) "anyone waiting?"
        #: check for the channels' issue-time notification).
        self.backlog_requests = 0

    def _core_wake(self, index: int) -> int:
        core = self.system.cores[index]
        version = core.event_count
        cached_version, cached_wake = self._wake_cache[index]
        if cached_version == version:
            return cached_wake
        cycles = core.next_request_dram_cycles()
        wake = INFINITY if cycles is None else self._cursors[index] + cycles - 1
        self._wake_cache[index] = (version, wake)
        return wake

    def next_event_cycle(self, now: int) -> int:
        system = self.system
        controllers = system.channel_controllers
        backlogs = system._core_backlog
        wake = INFINITY
        for index in range(len(system.cores)):
            backlog = backlogs[index]
            if backlog:
                # Backlogged cores cannot enqueue until a queue frees up; if
                # the head request fits now, retry immediately, otherwise
                # wait for the blocking channel's issue notification.
                request = backlog[0]
                if controllers[request.addr.channel].can_accept(request.is_write):
                    return now
                continue
            candidate = self._core_wake(index)
            if candidate < wake:
                wake = candidate
        return wake if wake > now else now

    def _sync_core(self, index: int, stop: int) -> None:
        """Settle one core's deferred arithmetic up to (excluding) ``stop``."""
        cursor = self._cursors[index]
        if cursor >= stop:
            return
        core = self.system.cores[index]
        requests = core.tick_dram(stop - cursor)
        self._cursors[index] = stop
        if requests:
            backlog = self.system._core_backlog[index]
            # The wake contract guarantees requests only appear in a
            # deferred span when the backlog is non-empty, in which case the
            # per-cycle loop would have appended them without an enqueue
            # attempt (see on_wake below).
            assert backlog, (
                "core generated a request inside a fast-forwarded window"
            )
            self.backlog_requests += len(requests)
            for phys, is_write in requests:
                backlog.append(
                    self.system._make_host_request(core, phys, is_write)
                )

    def deliver_completion(self, index: int, phys: int, cycle: int) -> None:
        """Deliver a demand-read completion (the request's on_complete hook).

        The core is synced to the delivery cycle *first*, so the completion
        lands on exactly the state the per-cycle loop would have had.
        """
        self._sync_core(index, cycle)
        self.system.cores[index].notify_completion(phys)

    def advance(self, stop: int) -> None:
        for index in range(len(self.system.cores)):
            self._sync_core(index, stop)

    def on_wake(self, now: int) -> None:
        system = self.system
        for index, core in enumerate(system.cores):
            self._sync_core(index, now)
            backlog = system._core_backlog[index]
            # Back-pressure: retry requests the controller rejected earlier.
            while backlog:
                request = backlog[0]
                if system.channel_controllers[request.addr.channel].enqueue(
                        request, now):
                    backlog.popleft()
                    self.backlog_requests -= 1
                else:
                    break
            if self._cursors[index] > now:
                continue  # already ticked live this cycle
            if self._core_wake(index) <= now:
                # This cycle's tick emits at least one request: run it live
                # so enqueue (or backlog append) happens on the right cycle.
                self._cursors[index] = now + 1
                for phys, is_write in core.tick_dram(1):
                    request = system._make_host_request(core, phys, is_write)
                    controller = system.channel_controllers[request.addr.channel]
                    if backlog or not controller.enqueue(request, now):
                        backlog.append(request)
                        self.backlog_requests += 1
            # Otherwise the tick is pure arithmetic; defer it into the next
            # sync batch.


class NdaHostComponent:
    """The host-side NDA controller: workload relaunch + launch processing.

    Wake sources: a queued operation with no blocking launch in flight, a
    pending relaunch (``ChopimSystem._relaunch_pending``), or a pending
    launch packet whose channel write queue has space.  Externally dirtied
    by ``NdaHostController.submit`` (new operations), by rank units when an
    instruction completes (operations finish / ``idle`` flips, enabling the
    next launch or a relaunch), and by channels when an issue may have freed
    write-queue space for a stuck packet.
    """

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False
    unit_label = "nda_host"

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        self.nda_host = system.nda_host

    def next_event_cycle(self, now: int) -> int:
        wake = self.nda_host.next_event_cycle(now)
        if wake > now and self.system._relaunch_pending():
            return now
        return wake if wake > now else now

    def on_wake(self, now: int) -> None:
        self.system._maybe_relaunch_workload()
        self.nda_host.tick(now)

    def advance(self, stop: int) -> None:
        """NDA launch state is purely event-driven; nothing accrues per cycle."""


class NdaRankComponent:
    """One rank's NDA memory controller (plus its PE group).

    The rank controller's ``next_event_cycle`` composes DRAM timing horizons
    with the rank's host-free windows; host commands only push those later,
    so a cached wake can go stale early but never late.  The one external
    event that can move a rank's eligibility *earlier* — a host command
    changing the rank's bank state (shared-bank modes, refresh precharges) —
    arrives as a dirty notification from the concurrent-access scheduler's
    issue hook.  Work delivery (``NdaRankController.enqueue``) dirties the
    unit through the controller's ``wake_listener`` so freshly delivered
    instructions can start on their delivery cycle.
    """

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False

    def __init__(self, system: "ChopimSystem", key: Tuple[int, int],
                 controller) -> None:
        self.system = system
        self.key = key
        self.controller = controller
        self.unit_label = f"nda_c{key[0]}r{key[1]}"
        self._hub: Optional[WakeHub] = None
        self._nda_host_slot = -1

    def register(self, hub: WakeHub, slot: int) -> None:
        self._hub = hub

    def bind_targets(self, nda_host_slot: int) -> None:
        self._nda_host_slot = nda_host_slot

    def next_event_cycle(self, now: int) -> int:
        return self.controller.next_event_cycle(now)

    def on_wake(self, now: int) -> None:
        controller = self.controller
        channel, rank = self.key
        if self.system.scheduler.nda_may_issue(channel, rank, now):
            controller.try_issue(now)
        completed = controller.instructions_completed
        controller.post_cycle(now)
        if controller.instructions_completed != completed:
            # The finished instruction may complete an operation (unblocking
            # the next launch) or leave every rank idle (enabling relaunch).
            self._hub.dirty(self._nda_host_slot)

    def advance(self, stop: int) -> None:
        """NDA rank state is purely event-driven; nothing accrues per cycle."""


class StatsComponent:
    """Windowed simulation statistics (rank busy/idle accounting).

    Fully lazy: per-rank busy/idle runs are reconstructed from the DRAM
    timing state just before that state mutates (via the timing engine's
    ``busy_observer`` hook), and the global cycle count advances in O(1) per
    processed cycle.  This is bit-identical to observing every cycle: a
    rank's busy predicate over a window is frozen between mutations of its
    timing state, and ``host_busy_runs`` enumerates exactly the per-cycle
    values the legacy loop observed.  As a pure observer it never wakes
    (its calendar entry stays at ``INFINITY``) and needs no notifications.
    The O(1) global cycle count stays in the per-cycle advance path: the
    ``step()``-driven runtime API never flushes, so accrual must not be
    deferred to flush time.
    """

    unit_label = "stats"

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        self._cursor = 0
        self._rank_cursors: Dict[Tuple[int, int], int] = {
            key: 0 for key in system.stats.rank_trackers
        }
        system.dram.timing.busy_observer = self._on_busy_mutation

    def _on_busy_mutation(self, channel: int, rank: int, now: int) -> None:
        key = (channel, rank)
        cursor = self._rank_cursors[key]
        if cursor >= now:
            return
        tracker = self.system.stats.rank_trackers.get(key)
        if tracker is not None:
            for busy, count in self.system.dram.host_busy_runs(
                    channel, rank, cursor, now):
                tracker.observe_run(busy, count)
        self._rank_cursors[key] = now

    def next_event_cycle(self, now: int) -> int:
        return INFINITY  # a pure observer never forces a wake-up

    def advance(self, stop: int) -> None:
        if stop > self._cursor:
            self.system.stats.cycles_observed += stop - self._cursor
            self._cursor = stop

    def on_wake(self, now: int) -> None:
        """Observation is mutation-driven; nothing to do per cycle."""

    def flush_trackers(self, stop: int) -> None:
        """Bring every rank tracker up to ``stop`` (pre-result / pre-reset)."""
        stats = self.system.stats
        for key, cursor in self._rank_cursors.items():
            if cursor >= stop:
                continue
            tracker = stats.rank_trackers.get(key)
            if tracker is not None:
                for busy, count in self.system.dram.host_busy_runs(
                        key[0], key[1], cursor, stop):
                    tracker.observe_run(busy, count)
            self._rank_cursors[key] = stop

    def reset(self, cycle: int) -> None:
        """Re-anchor all observation cursors (measurement reset)."""
        self._cursor = cycle
        for key in self._rank_cursors:
            self._rank_cursors[key] = cycle


__all__ = [
    "ChannelComponent",
    "HostComponent",
    "NdaHostComponent",
    "NdaRankComponent",
    "StatsComponent",
]
