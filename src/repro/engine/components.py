"""Engine components adapting the Chopim subsystems to the event protocol.

Each adapter wraps one slice of the legacy ``ChopimSystem.step`` body and
adds the wake-up computation the :class:`~repro.engine.core.EventEngine`
needs.  When driven by the :class:`~repro.engine.core.CycleEngine` the
adapters process every cycle unconditionally, reproducing the original loop
verbatim; when driven by the event engine they additionally skip the
per-cycle work of sub-components whose wake-up lies in the future (the wake
caches below), which is what makes processed cycles cheap even when *some*
component acts every cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.engine.queue import INFINITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import ChopimSystem


class ChannelComponent:
    """One host memory controller (plus its refresh duties)."""

    def __init__(self, system: "ChopimSystem", channel: int) -> None:
        self.system = system
        self.channel = channel
        self.controller = system.channel_controllers[channel]
        self._wake = 0
        self._wake_stamp = -1

    def next_event_cycle(self, now: int) -> int:
        self._wake = self.controller.next_event_cycle(now)
        self._wake_stamp = now
        return self._wake

    def on_wake(self, now: int) -> None:
        if self._wake_stamp == now and self._wake > now:
            # Event-engine fast path: the controller provably cannot act
            # this cycle (no completion due, no refresh due, issue hint in
            # the future), so its tick would be a no-op.
            return
        controller = self.controller
        controller.tick(now)
        if controller.last_issue_cycle == now:
            self.system.scheduler.note_host_issue(
                self.channel, controller.last_issue_rank, now
            )

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False

    def advance(self, stop: int) -> None:
        """Channel state is purely event-driven; nothing accrues per cycle."""


class HostComponent:
    """All host cores plus the per-core back-pressure backlogs.

    Cores retire instructions on *every* cycle, so they are advanced lazily:
    each core carries a cursor of the next un-ticked cycle, and
    :meth:`advance` catches it up with the core model's exact batched
    arithmetic.  A core is ticked "live" (with request enqueue handling)
    only on cycles where it can emit a memory request; on all other cycles
    the tick is deferred into the next batch.  Absolute next-request cycles
    are cached against the core's event counter — between misses and
    completions a core evolves deterministically, so the cached cycle stays
    valid no matter how far the cursor advances.
    """

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        count = len(system.cores)
        self._cursors: List[int] = [0] * count
        self._wake_cache: List[Tuple[int, int]] = [(-1, 0)] * count

    def _core_wake(self, index: int) -> int:
        core = self.system.cores[index]
        version = core.event_count
        cached_version, cached_wake = self._wake_cache[index]
        if cached_version == version:
            return cached_wake
        cycles = core.next_request_dram_cycles()
        wake = INFINITY if cycles is None else self._cursors[index] + cycles - 1
        self._wake_cache[index] = (version, wake)
        return wake

    def next_event_cycle(self, now: int) -> int:
        wake = INFINITY
        for index in range(len(self.system.cores)):
            if self.system._core_backlog[index]:
                # Backlogged cores cannot enqueue until a queue frees up,
                # which only happens on engine-processed cycles; their
                # generated requests are appended to the backlog during
                # advance() exactly as the per-cycle loop would.
                continue
            candidate = self._core_wake(index)
            if candidate < wake:
                wake = candidate
        return wake if wake > now else now

    def advance(self, stop: int) -> None:
        for index, core in enumerate(self.system.cores):
            cursor = self._cursors[index]
            if cursor >= stop:
                continue
            requests = core.tick_dram(stop - cursor)
            self._cursors[index] = stop
            if requests:
                backlog = self.system._core_backlog[index]
                # The wake contract guarantees requests only appear in a
                # batch when the backlog is non-empty, in which case the
                # per-cycle loop would have appended them without an
                # enqueue attempt (see on_wake below).
                assert backlog, (
                    "core generated a request inside a fast-forwarded window"
                )
                for phys, is_write in requests:
                    backlog.append(
                        self.system._make_host_request(core, phys, is_write)
                    )

    def on_wake(self, now: int) -> None:
        system = self.system
        for index, core in enumerate(system.cores):
            backlog = system._core_backlog[index]
            # Back-pressure: retry requests the controller rejected earlier.
            while backlog:
                request = backlog[0]
                if system.channel_controllers[request.addr.channel].enqueue(
                        request, now):
                    backlog.popleft()
                else:
                    break
            if self._cursors[index] > now:
                continue  # already ticked live this cycle
            if self._core_wake(index) <= now:
                # This cycle's tick emits at least one request: run it live
                # so enqueue (or backlog append) happens on the right cycle.
                self._cursors[index] = now + 1
                for phys, is_write in core.tick_dram(1):
                    request = system._make_host_request(core, phys, is_write)
                    controller = system.channel_controllers[request.addr.channel]
                    if backlog or not controller.enqueue(request, now):
                        backlog.append(request)
            # Otherwise the tick is pure arithmetic; defer it into the next
            # advance() batch.


class NdaComponent:
    """The host-side NDA controller plus every per-rank NDA controller."""

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        self._wake_stamp = -1
        # Stable snapshot of (key, controller) pairs: the controller map is
        # fixed after system construction, and per-cycle dict iteration with
        # key hashing is measurable at scale.  Wakes live in a parallel
        # list (positional, no tuple hashing).
        self._controllers = list(system.rank_controllers.items())
        self._rank_wakes: List[int] = [0] * len(self._controllers)

    def next_event_cycle(self, now: int) -> int:
        system = self.system
        if system.nda_host is None:
            return INFINITY
        wake = system.nda_host.next_event_cycle(now)
        if system._relaunch_pending():
            wake = now
        rank_wakes = self._rank_wakes
        rank_issue_version = system.dram.rank_issue_version
        for index, (key, controller) in enumerate(self._controllers):
            # Inline mirror of the controller's own wake-cache check: at one
            # call per rank per processed cycle the call overhead alone is
            # measurable, and most ranks have a valid cached wake.
            if (controller._wake_cache_version
                    == rank_issue_version[controller._rank_index]
                    and controller._wake_cache > now):
                rank_wake = controller._wake_cache
            else:
                rank_wake = controller.next_event_cycle(now)
            rank_wakes[index] = rank_wake
            if rank_wake < wake:
                wake = rank_wake
        self._wake_stamp = now
        return wake if wake > now else now

    def on_wake(self, now: int) -> None:
        system = self.system
        if system.nda_host is None:
            return
        system._maybe_relaunch_workload()
        system.nda_host.tick(now)
        gated = self._wake_stamp == now
        rank_wakes = self._rank_wakes
        scheduler = system.scheduler
        for index, (key, controller) in enumerate(self._controllers):
            if (gated and rank_wakes[index] > now
                    and controller._wake_cache_version != -1):
                # Event-engine fast path: this rank provably cannot issue,
                # classify, draw throttle randomness or complete this cycle.
                # A wake invalidated since it was computed (work delivered
                # mid-cycle — `_wake_cache_version == -1`) falls through to
                # normal processing.
                continue
            if scheduler.nda_may_issue(key[0], key[1], now):
                controller.try_issue(now)
            controller.post_cycle(now)
            # Local state (staging, refills, classification bookkeeping) may
            # have changed without a DRAM issue; recompute the wake lazily
            # (inline invalidate_wake).
            controller._wake_cache_version = -1

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False

    def advance(self, stop: int) -> None:
        """NDA state is purely event-driven; nothing accrues per cycle."""


class StatsComponent:
    """Windowed simulation statistics (rank busy/idle accounting).

    Fully lazy: per-rank busy/idle runs are reconstructed from the DRAM
    timing state just before that state mutates (via the timing engine's
    ``busy_observer`` hook), and the global cycle count advances in O(1) per
    processed cycle.  This is bit-identical to observing every cycle: a
    rank's busy predicate over a window is frozen between mutations of its
    timing state, and ``host_busy_runs`` enumerates exactly the per-cycle
    values the legacy loop observed.
    """

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        self._cursor = 0
        self._rank_cursors: Dict[Tuple[int, int], int] = {
            key: 0 for key in system.stats.rank_trackers
        }
        system.dram.timing.busy_observer = self._on_busy_mutation

    def _on_busy_mutation(self, channel: int, rank: int, now: int) -> None:
        key = (channel, rank)
        cursor = self._rank_cursors[key]
        if cursor >= now:
            return
        tracker = self.system.stats.rank_trackers.get(key)
        if tracker is not None:
            for busy, count in self.system.dram.host_busy_runs(
                    channel, rank, cursor, now):
                tracker.observe_run(busy, count)
        self._rank_cursors[key] = now

    def next_event_cycle(self, now: int) -> int:
        return INFINITY  # a pure observer never forces a wake-up

    def advance(self, stop: int) -> None:
        if stop > self._cursor:
            self.system.stats.cycles_observed += stop - self._cursor
            self._cursor = stop

    def on_wake(self, now: int) -> None:
        """Observation is mutation-driven; nothing to do per cycle."""

    def flush_trackers(self, stop: int) -> None:
        """Bring every rank tracker up to ``stop`` (pre-result / pre-reset)."""
        stats = self.system.stats
        for key, cursor in self._rank_cursors.items():
            if cursor >= stop:
                continue
            tracker = stats.rank_trackers.get(key)
            if tracker is not None:
                for busy, count in self.system.dram.host_busy_runs(
                        key[0], key[1], cursor, stop):
                    tracker.observe_run(busy, count)
            self._rank_cursors[key] = stop

    def reset(self, cycle: int) -> None:
        """Re-anchor all observation cursors (measurement reset)."""
        self._cursor = cycle
        for key in self._rank_cursors:
            self._rank_cursors[key] = cycle


__all__ = [
    "ChannelComponent",
    "HostComponent",
    "NdaComponent",
    "StatsComponent",
]
