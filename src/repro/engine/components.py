"""Engine components adapting the Chopim subsystems to the event protocol.

Each adapter wraps one slice of the legacy ``ChopimSystem.step`` body and is
one *schedulable unit* of the selective-wake engine: it computes its own
wake-up, owns one slot of the engine's wake calendar, and pushes dirty
notifications through the :class:`~repro.engine.core.WakeHub` when its
actions could move *another* unit's wake-up earlier.  The NDA subsystem is
split into one unit per rank controller plus the NDA host, so a processed
cycle touches only the ranks that can actually act.

Driven by the :class:`~repro.engine.core.CycleEngine` (broadcast, every
cycle) the adapters reproduce the original loop verbatim; under the
:class:`~repro.engine.core.EventEngine` only due-or-dirty units run.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.engine.core import WakeHub
from repro.engine.queue import INFINITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import ChopimSystem


class ChannelComponent:
    """One host memory controller (plus its refresh duties).

    Dirty notifications pushed: a command issue is reported to the
    concurrent-access scheduler (which dirties the issued-to rank's NDA
    unit), and — because an issued RD/WR frees a queue entry — the host unit
    (back-pressured cores can retry) and the NDA host unit (stuck launch
    packets can retry) when either has something waiting.  Timed request
    completions are scheduled into the host unit's completion calendar
    (``completion_sink``) rather than delivered from channel wakes.
    """

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False

    def __init__(self, system: "ChopimSystem", channel: int) -> None:
        self.system = system
        self.channel = channel
        self.controller = system.channel_controllers[channel]
        self.unit_label = f"channel{channel}"
        self._hub: Optional[WakeHub] = None
        self._host_slot = -1
        self._nda_host_slot = -1

    def register(self, hub: WakeHub, slot: int) -> None:
        self._hub = hub

    def bind_targets(self, host_slot: int, nda_host_slot: int) -> None:
        self._host_slot = host_slot
        self._nda_host_slot = nda_host_slot

    def next_event_cycle(self, now: int) -> int:
        return self.controller.next_event_cycle(now)

    def post_run_wake(self, now: int) -> int:
        """O(1) calendar refresh after a run (no FR-FCFS probe needed)."""
        return self.controller.wake_after_tick(now)

    def on_wake(self, now: int) -> None:
        controller = self.controller
        system = self.system
        controller.tick(now)
        if controller.last_issue_cycle == now:
            system.scheduler.note_host_issue(
                self.channel, controller.last_issue_rank, now
            )
            hub = self._hub
            if system._host_component.backlog_requests:
                hub.dirty(self._host_slot)
            nda_host = system.nda_host
            if nda_host is not None and nda_host._pending_packets:
                hub.dirty(self._nda_host_slot)

    def advance(self, stop: int) -> None:
        """Channel state is purely event-driven; nothing accrues per cycle."""


class HostComponent:
    """All host cores plus the per-core back-pressure backlogs.

    Cores retire instructions on *every* cycle, so they are advanced lazily:
    each core carries a cursor of the next un-ticked cycle, and the batched
    fixed-point arithmetic of ``CoreModel.tick_dram`` makes any catch-up
    bit-identical to per-cycle ticking.  A core is synced exactly when its
    deferred span could matter:

    * just before a demand-read completion is delivered to it
      (:meth:`deliver_completion` — the completion mutates core state, so
      the arithmetic up to the delivery cycle must be settled first);
    * at the start of its :meth:`on_wake` handling on cycles the unit runs
      (live request emission and backlog retries need the core at ``now``);
    * at :meth:`advance` time (the engine's end-of-run flush).

    Unlike the broadcast engine, no per-cycle catch-up happens: a core that
    neither completes nor emits is pure arithmetic and stays deferred for
    the whole span.  Absolute next-request cycles are cached against the
    core's event counter — between misses and completions a core evolves
    deterministically from its cursor, so the cached cycle stays valid no
    matter how far the cursor lags.

    Wake sources beyond the cores' own next-request cycles: a backlogged
    request whose target queue has space wakes the unit immediately; a
    backlogged request facing a full queue contributes nothing (the blocking
    channel dirties this unit when it issues and frees an entry).

    The unit also owns the **completion calendar**: channel controllers
    schedule every timed request completion here (``schedule_completion``,
    wired as each controller's ``completion_sink``), and the unit delivers
    the due prefix — in (cycle, schedule-order) order, which equals the
    legacy per-channel collection order — at the start of its wake.  The
    host's wake is therefore computed from the outstanding-completion
    horizon directly; completions no longer force controller wakes, and no
    per-delivery dirty notification exists at all (deliveries happen inside
    this unit's own wake).
    """

    #: Cores are synced at their own trigger points, not once per processed
    #: cycle; the engine only calls advance() at flush time.
    needs_advance = False
    needs_flush = True
    unit_label = "host"

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        count = len(system.cores)
        self._cursors: List[int] = [0] * count
        self._wake_cache: List[Tuple[int, int]] = [(-1, 0)] * count
        self._hub: Optional[WakeHub] = None
        self._slot = -1
        #: Outstanding-completion calendar: (cycle, seq, request, controller)
        #: heap entries, delivered at the due cycle during on_wake.
        self._completions: List[Tuple[int, int, object, object]] = []
        self._completion_seq = 0
        #: The wake this unit last published to the calendar; INFINITY until
        #: the first poll so early schedule_completion calls always dirty.
        self._published_wake = INFINITY
        #: Min next-request cycle over non-backlogged cores as of the last
        #: poll (valid between core events — wakes are event-count-cached),
        #: and the cores completions were delivered to this wake: together
        #: they prove most completion-only wakes need no core sweep at all.
        self._published_core_min = -1
        self._delivered_cores: List[int] = []
        #: Exclusive ceiling for eager completion application — the current
        #: run's target, set by ``ChopimSystem.run``.  Completions at or
        #: beyond it stay pending, exactly as the per-cycle loop leaves
        #: them, so cores never sync past the measurement window.
        self.completion_bound = 0
        #: Requests sitting in per-core backlogs (O(1) "anyone waiting?"
        #: check for the channels' issue-time notification).
        self.backlog_requests = 0

    def register(self, hub: WakeHub, slot: int) -> None:
        self._hub = hub
        self._slot = slot

    def schedule_completion(self, cycle: int, request, controller) -> None:
        """Schedule a timed request completion (a controller's sink hook).

        Called at issue time, so ``cycle`` is strictly in the future.  The
        unit's published calendar entry may lie beyond it (or at INFINITY
        when every core is blocked on outstanding misses), in which case
        the slot is dirtied so the engine re-reads the horizon; otherwise
        the already-scheduled wake covers it and no notification is needed.
        """
        seq = self._completion_seq
        self._completion_seq = seq + 1
        heappush(self._completions, (cycle, seq, request, controller))
        if cycle < self._published_wake:
            self._hub.dirty(self._slot)

    def _core_wake(self, index: int) -> int:
        core = self.system.cores[index]
        version = core.event_count
        cached_version, cached_wake = self._wake_cache[index]
        if cached_version == version:
            return cached_wake
        cycles = core.next_request_dram_cycles()
        wake = INFINITY if cycles is None else self._cursors[index] + cycles - 1
        self._wake_cache[index] = (version, wake)
        return wake

    def next_event_cycle(self, now: int) -> int:
        system = self.system
        controllers = system.channel_controllers
        backlogs = system._core_backlog
        heap = self._completions
        cores = range(len(system.cores))
        while True:
            core_min = INFINITY
            for index in cores:
                backlog = backlogs[index]
                if backlog:
                    # Backlogged cores cannot enqueue until a queue frees
                    # up; if the head request fits now, retry immediately,
                    # otherwise wait for the blocking channel's issue
                    # notification.
                    request = backlog[0]
                    if controllers[request.addr.channel].can_accept(
                            request.is_write):
                        self._published_wake = now
                        return now
                    continue
                candidate = self._core_wake(index)
                if candidate < core_min:
                    core_min = candidate
            if heap and heap[0][0] < core_min:
                entry = heap[0]
                if entry[2].core_id >= 0:
                    if entry[0] < self.completion_bound:
                        # A demand-read completion strictly before any
                        # possible emission: apply it *now* — the delivery
                        # syncs the core to the completion cycle and lands
                        # on exactly the state per-cycle execution would
                        # have had, and no observable event can occur in
                        # between — then re-derive the emission horizon
                        # from the unblocked state.  This is what lets
                        # completion-only cycles go unprocessed.
                        heappop(heap)
                        self._finish_completion(entry[0], entry[2], entry[3])
                        continue
                    # Beyond the current run: stays pending, like the
                    # per-cycle loop leaves it.
                else:
                    # Launch-packet completions feed other units on their
                    # exact cycle; keep a processed wake for them.
                    core_min = entry[0]
            break
        self._published_core_min = core_min
        wake = core_min if core_min > now else now
        self._published_wake = wake
        return wake

    def _sync_core(self, index: int, stop: int) -> None:
        """Settle one core's deferred arithmetic up to (excluding) ``stop``."""
        cursor = self._cursors[index]
        if cursor >= stop:
            return
        core = self.system.cores[index]
        requests = core.tick_dram(stop - cursor)
        self._cursors[index] = stop
        if requests:
            backlog = self.system._core_backlog[index]
            # The wake contract guarantees requests only appear in a
            # deferred span when the backlog is non-empty, in which case the
            # per-cycle loop would have appended them without an enqueue
            # attempt (see on_wake below).
            assert backlog, (
                "core generated a request inside a fast-forwarded window"
            )
            self.backlog_requests += len(requests)
            for phys, is_write in requests:
                backlog.append(
                    self.system._make_host_request(core, phys, is_write)
                )

    def deliver_completion(self, index: int, phys: int, cycle: int) -> None:
        """Deliver a demand-read completion (the request's on_complete hook).

        The core is synced to the delivery cycle *first*, so the completion
        lands on exactly the state the per-cycle loop would have had.
        Deliveries happen inside this unit's own wake (the completion
        calendar drives it), so no dirty notification is needed — the
        engine re-polls a ran unit before its next scheduling decision.
        """
        self._sync_core(index, cycle)
        self.system.cores[index].notify_completion(phys)
        self._delivered_cores.append(index)

    def _finish_completion(self, cycle: int, request, controller) -> None:
        """Deliver one scheduled completion at its (simulated) cycle."""
        controller.inflight_completions -= 1
        request.complete(cycle)
        if not request.is_write:
            controller.read_latency.add(
                request.completed_cycle - request.arrival_cycle)

    def _deliver_due_completions(self, now: int) -> None:
        heap = self._completions
        while heap and heap[0][0] <= now:
            entry = heappop(heap)
            self._finish_completion(entry[0], entry[2], entry[3])

    def _sweep_needed(self, now: int) -> bool:
        """Whether this wake must run the full core sweep.

        True when a backlog retry is possible, some core's cached wake is
        due, or a just-delivered completion moved a core's emission to
        ``now`` — otherwise (the common completion-only wake) every core is
        provably pure deferred arithmetic this cycle.
        """
        if self.backlog_requests:
            return True
        if self._published_core_min <= now:
            return True
        delivered = self._delivered_cores
        if delivered:
            for index in delivered:
                if self._core_wake(index) <= now:
                    return True
        return False

    def advance(self, stop: int) -> None:
        # Apply elapsed demand-read completions first (in schedule order):
        # the final core sync must observe every delivery that per-cycle
        # execution would have made before ``stop``.  Packet completions
        # cannot be pending below ``stop`` — their cycles clamp this unit's
        # published wake, so the engine processed them.
        heap = self._completions
        while heap and heap[0][0] < stop and heap[0][2].core_id >= 0:
            entry = heappop(heap)
            self._finish_completion(entry[0], entry[2], entry[3])
        for index in range(len(self.system.cores)):
            self._sync_core(index, stop)

    def on_wake(self, now: int) -> None:
        system = self.system
        del self._delivered_cores[:]
        if self._completions:
            self._deliver_due_completions(now)
        if not self._sweep_needed(now):
            return
        for index, core in enumerate(system.cores):
            backlog = system._core_backlog[index]
            if not backlog and self._core_wake(index) > now:
                # Neither retrying nor emitting this cycle: the core is pure
                # deferred arithmetic — leave it to the next sync point
                # instead of paying a catch-up call per processed wake.
                continue
            self._sync_core(index, now)
            # Back-pressure: retry requests the controller rejected earlier.
            while backlog:
                request = backlog[0]
                if system.channel_controllers[request.addr.channel].enqueue(
                        request, now):
                    backlog.popleft()
                    self.backlog_requests -= 1
                else:
                    break
            if self._cursors[index] > now:
                continue  # already ticked live this cycle
            if self._core_wake(index) <= now:
                # This cycle's tick emits at least one request: run it live
                # so enqueue (or backlog append) happens on the right cycle.
                self._cursors[index] = now + 1
                for phys, is_write in core.tick_dram(1):
                    request = system._make_host_request(core, phys, is_write)
                    controller = system.channel_controllers[request.addr.channel]
                    if backlog or not controller.enqueue(request, now):
                        backlog.append(request)
                        self.backlog_requests += 1
            # Otherwise the tick is pure arithmetic; defer it into the next
            # sync batch.


class NdaHostComponent:
    """The host-side NDA controller: workload relaunch + launch processing.

    Wake sources: a queued operation with no blocking launch in flight, a
    pending relaunch (``ChopimSystem._relaunch_pending``), or a pending
    launch packet whose channel write queue has space.  Externally dirtied
    by ``NdaHostController.submit`` (new operations), by rank units when an
    instruction completes (operations finish / ``idle`` flips, enabling the
    next launch or a relaunch), and by channels when an issue may have freed
    write-queue space for a stuck packet.
    """

    #: advance() is a no-op; the engine skips it (see SimulationEngine).
    needs_advance = False
    unit_label = "nda_host"

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        self.nda_host = system.nda_host

    def next_event_cycle(self, now: int) -> int:
        wake = self.nda_host.next_event_cycle(now)
        if wake > now and self.system._relaunch_pending():
            return now
        return wake if wake > now else now

    def on_wake(self, now: int) -> None:
        self.system._maybe_relaunch_workload()
        self.nda_host.tick(now)

    def advance(self, stop: int) -> None:
        """NDA launch state is purely event-driven; nothing accrues per cycle."""


class NdaRankComponent:
    """One rank's NDA memory controller (plus its PE group).

    The rank controller's ``next_event_cycle`` composes DRAM timing horizons
    with the rank's host-free windows; host commands only push those later,
    so a cached wake can go stale early but never late.  The one external
    event that can move a rank's eligibility *earlier* — a host command
    changing the rank's bank state (shared-bank modes, refresh precharges) —
    arrives as a dirty notification from the concurrent-access scheduler's
    issue hook.  Work delivery (``NdaRankController.enqueue``) dirties the
    unit through the controller's ``wake_listener`` so freshly delivered
    instructions can start on their delivery cycle.

    With bursting enabled (event engine, ``REPRO_DISABLE_BURST`` unset), a
    processed wake ends by planning the controller's next steady-state
    command streak; the unit then parks its calendar entry at the burst
    horizon and its commands are settled lazily (see ``nda/controller.py``).
    A wake that arrives while a plan is live (the horizon itself, or an
    early dirty re-poll such as the broadcast ``step`` path) first settles
    the elapsed prefix and drops the rest, so per-cycle processing always
    resumes from exactly the state the plan represented.
    """

    #: advance() is a no-op per processed cycle, but run-boundary flushes
    #: must settle any live burst plan up to the flush target.
    needs_advance = False
    needs_flush = True
    #: Set by the system when the burst-issue fast path is active.
    burst_enabled = False

    def __init__(self, system: "ChopimSystem", key: Tuple[int, int],
                 controller) -> None:
        self.system = system
        self.key = key
        self.controller = controller
        self.unit_label = f"nda_c{key[0]}r{key[1]}"
        self._hub: Optional[WakeHub] = None
        self._nda_host_slot = -1

    def register(self, hub: WakeHub, slot: int) -> None:
        self._hub = hub

    def bind_targets(self, nda_host_slot: int) -> None:
        self._nda_host_slot = nda_host_slot

    def next_event_cycle(self, now: int) -> int:
        return self.controller.next_event_cycle(now)

    def on_wake(self, now: int) -> None:
        controller = self.controller
        if controller._plan is not None:
            # Burst horizon reached (all commands elapsed → counted as a
            # completed burst) or an early wake interleaved — either way the
            # remainder is re-decided per cycle from the settled state.
            controller.cancel_burst(now, "wake")
        channel, rank = self.key
        if self.system.scheduler.nda_may_issue(channel, rank, now):
            controller.try_issue(now)
        completed = controller.instructions_completed
        controller.post_cycle(now)
        if controller.instructions_completed != completed:
            # The finished instruction may complete an operation (unblocking
            # the next launch) or leave every rank idle (enabling relaunch).
            self._hub.dirty(self._nda_host_slot)
        elif self.burst_enabled:
            # Steady state persists: plan the next streak (starting strictly
            # after this cycle); the post-run re-poll parks the calendar at
            # the burst horizon.  Completion cycles never plan — the next
            # instruction's first commands go through the per-cycle path.
            controller.plan_burst(now)

    def advance(self, stop: int) -> None:
        """Settle any live burst plan up to ``stop`` (run-boundary flush).

        Full settlement — timing *and* deferred accounting — because flush
        boundaries feed results and measurement resets.
        """
        self.controller.flush_burst(stop)


class StatsComponent:
    """Windowed simulation statistics (rank busy/idle accounting).

    Fully lazy: per-rank busy/idle runs are reconstructed from the DRAM
    timing state just before that state mutates (via the timing engine's
    ``busy_observer`` hook), and the global cycle count advances in O(1) per
    processed cycle.  This is bit-identical to observing every cycle: a
    rank's busy predicate over a window is frozen between mutations of its
    timing state, and ``host_busy_runs`` enumerates exactly the per-cycle
    values the legacy loop observed.  As a pure observer it never wakes
    (its calendar entry stays at ``INFINITY``) and needs no notifications.
    The O(1) global cycle count stays in the per-cycle advance path: the
    ``step()``-driven runtime API never flushes, so accrual must not be
    deferred to flush time.
    """

    unit_label = "stats"
    #: The global cycle count is cursor-based and idempotent, so the
    #: selective engine defers it to flush time; the broadcast engines keep
    #: the per-cycle advance (the ``step()``-driven runtime never flushes).
    advance_deferrable = True

    def __init__(self, system: "ChopimSystem") -> None:
        self.system = system
        self._cursor = 0
        self._rank_cursors: Dict[Tuple[int, int], int] = {
            key: 0 for key in system.stats.rank_trackers
        }
        system.dram.timing.busy_observer = self._on_busy_mutation

    def _on_busy_mutation(self, channel: int, rank: int, now: int) -> None:
        key = (channel, rank)
        cursor = self._rank_cursors[key]
        if cursor >= now:
            return
        tracker = self.system.stats.rank_trackers.get(key)
        if tracker is not None:
            timing = self.system.dram.timing
            uniform = timing.host_busy_span(channel, rank, cursor, now)
            if uniform is not None:
                tracker.observe_run(uniform, now - cursor)
            else:
                for busy, count in timing.host_busy_runs(
                        channel, rank, cursor, now):
                    tracker.observe_run(busy, count)
        self._rank_cursors[key] = now

    def next_event_cycle(self, now: int) -> int:
        return INFINITY  # a pure observer never forces a wake-up

    def advance(self, stop: int) -> None:
        if stop > self._cursor:
            self.system.stats.cycles_observed += stop - self._cursor
            self._cursor = stop

    def on_wake(self, now: int) -> None:
        """Observation is mutation-driven; nothing to do per cycle."""

    def flush_trackers(self, stop: int) -> None:
        """Bring every rank tracker up to ``stop`` (pre-result / pre-reset)."""
        stats = self.system.stats
        for key, cursor in self._rank_cursors.items():
            if cursor >= stop:
                continue
            tracker = stats.rank_trackers.get(key)
            if tracker is not None:
                for busy, count in self.system.dram.host_busy_runs(
                        key[0], key[1], cursor, stop):
                    tracker.observe_run(busy, count)
            self._rank_cursors[key] = stop

    def reset(self, cycle: int) -> None:
        """Re-anchor all observation cursors (measurement reset)."""
        self._cursor = cycle
        for key in self._rank_cursors:
            self._rank_cursors[key] = cycle


__all__ = [
    "ChannelComponent",
    "HostComponent",
    "NdaHostComponent",
    "NdaRankComponent",
    "StatsComponent",
]
