"""Event-driven simulation engine with selective wake scheduling.

The engine decomposes a cycle-accurate simulation into :class:`Component`
objects that expose two operations: ``next_event_cycle(now)`` (the earliest
cycle at which the component could act) and ``on_wake(now)`` (process one
cycle).  The :class:`EventEngine` keeps each component's cached wake in an
:class:`IndexedCalendar` (one slot per unit, O(1) minimum), advances
directly to the earliest entry, and on processed cycles wakes only units
that are due or were dirtied through the :class:`WakeHub` push-notification
channel; lazily-advanced components (host cores, windowed statistics) are
caught up in closed form over skipped spans.  The :class:`CycleEngine`
processes every cycle and is kept as the bit-exact regression baseline.

See ``ARCHITECTURE.md`` for the wake/fast-forward and dirty-notification
contracts.
"""

from repro.engine.core import (
    INFINITY,
    Component,
    CycleEngine,
    EventEngine,
    SimulationEngine,
    WakeHub,
    make_engine,
)
from repro.engine.queue import EventQueue, IndexedCalendar

__all__ = [
    "Component",
    "CycleEngine",
    "EventEngine",
    "EventQueue",
    "INFINITY",
    "IndexedCalendar",
    "SimulationEngine",
    "WakeHub",
    "make_engine",
]
