"""Event-driven simulation engine with idle-cycle fast-forwarding.

The engine decomposes a cycle-accurate simulation into :class:`Component`
objects that expose two operations: ``next_event_cycle(now)`` (the earliest
cycle at which the component could act) and ``on_wake(now)`` (process one
cycle).  The :class:`EventEngine` advances directly to the earliest wake-up
across all components, catching lazily-advanced components (host cores,
windowed statistics) up in closed form over the skipped span; the
:class:`CycleEngine` processes every cycle and is kept as the bit-exact
regression baseline.

See ``ARCHITECTURE.md`` for the wake/fast-forward contract.
"""

from repro.engine.core import (
    INFINITY,
    Component,
    CycleEngine,
    EventEngine,
    SimulationEngine,
    make_engine,
)
from repro.engine.queue import EventQueue

__all__ = [
    "Component",
    "CycleEngine",
    "EventEngine",
    "EventQueue",
    "INFINITY",
    "SimulationEngine",
    "make_engine",
]
