"""Synthetic datasets for the machine-learning case study.

The paper trains 10-class ℓ2-regularized logistic regression on CIFAR-10
(50000 x 3072).  CIFAR-10 itself is not redistributable here, so experiments
use a synthetic multi-class dataset with the same structural properties
(dense float features, class-dependent means, configurable dimensions);
convergence behaviour of SVRG depends only on that structure.  The full
50000 x 3072 size is available but the defaults are smaller so the test and
benchmark suites stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class SyntheticClassificationDataset:
    """A dense multi-class classification dataset."""

    features: np.ndarray   # (n, d) float32
    labels: np.ndarray     # (n,) int64 in [0, classes)
    classes: int

    @property
    def num_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def nbytes(self) -> int:
        return int(self.features.nbytes)

    def one_hot(self) -> np.ndarray:
        eye = np.eye(self.classes, dtype=np.float32)
        return eye[self.labels]

    def split(self, fraction: float = 0.8) -> Tuple["SyntheticClassificationDataset",
                                                    "SyntheticClassificationDataset"]:
        """Deterministic train/validation split."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        cut = int(self.num_samples * fraction)
        return (
            SyntheticClassificationDataset(self.features[:cut], self.labels[:cut],
                                           self.classes),
            SyntheticClassificationDataset(self.features[cut:], self.labels[cut:],
                                           self.classes),
        )


def make_dataset(num_samples: int = 2048, num_features: int = 256,
                 classes: int = 10, separation: float = 1.0,
                 noise: float = 1.0, seed: int = 7) -> SyntheticClassificationDataset:
    """Generate a linearly-separable-with-noise multi-class dataset.

    Each class has a random mean direction scaled by ``separation``; samples
    are that mean plus Gaussian noise, matching the difficulty profile of a
    dense image-classification problem under a linear model.
    """
    if num_samples <= 0 or num_features <= 0 or classes <= 1:
        raise ValueError("dataset dimensions must be positive (classes >= 2)")
    rng = np.random.default_rng(seed)
    means = rng.standard_normal((classes, num_features)).astype(np.float32)
    means *= separation / np.linalg.norm(means, axis=1, keepdims=True)
    labels = rng.integers(0, classes, size=num_samples)
    noise_matrix = rng.standard_normal((num_samples, num_features)).astype(np.float32)
    features = means[labels] + noise * noise_matrix
    # Feature scaling to unit variance keeps the best learning rates in the
    # same range across dataset sizes (as the paper's lr sweep assumes).
    features /= np.maximum(features.std(axis=0, keepdims=True), 1e-6)
    return SyntheticClassificationDataset(features.astype(np.float32),
                                          labels.astype(np.int64), classes)


def cifar10_like_dataset(seed: int = 7) -> SyntheticClassificationDataset:
    """A dataset with CIFAR-10's exact dimensions (50000 x 3072, 10 classes)."""
    return make_dataset(num_samples=50_000, num_features=3072, classes=10, seed=seed)
