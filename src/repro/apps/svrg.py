"""SVRG logistic regression: the host/NDA collaboration case study (Section IV).

The algorithm (Johnson & Zhang) alternates two tasks per outer iteration:

1. **Summarization** — the full-data average gradient ``g`` (the correction
   term), a streaming, low-arithmetic-intensity pass over the entire input
   matrix.  This is the part offloaded to the NDAs (Figure 8).
2. **Inner loop** — ``epoch_length`` stochastic updates of the model ``w``
   using the variance-reduced gradient, a cache-friendly tight loop that
   stays on the host.

Three execution variants are modelled, exactly as evaluated in Figure 15:

* ``HOST_ONLY`` — both tasks on the host, serialized.
* ``ACCELERATED`` — summarization on the NDAs, still serialized with the
  host's inner loop.
* ``DELAYED_UPDATE`` — summarization and inner loop run in parallel
  (enabled by Chopim's concurrent access); the inner loop uses the
  correction term of the *previous* epoch (staleness), trading per-iteration
  convergence for wall-clock overlap.

Convergence is computed functionally with numpy; wall-clock time comes from a
:class:`SvrgTimingModel` whose bandwidth/latency inputs are measured on the
simulator (:func:`measure_svrg_timing`) or supplied analytically.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.datasets import SyntheticClassificationDataset, make_dataset
from repro.apps.workloads import svrg_kernel_sequence
from repro.config import SystemConfig, default_config, scaled_config
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem


class SvrgVariant(enum.Enum):
    HOST_ONLY = "host_only"
    ACCELERATED = "accelerated"
    DELAYED_UPDATE = "delayed_update"


@dataclass
class SvrgConfig:
    """Hyper-parameters (Table II machine-learning configuration)."""

    learning_rate: float = 4e-3
    l2_lambda: float = 1e-3
    momentum: float = 0.9
    #: Inner-loop length as a fraction of N (the paper sweeps N, N/2, N/4).
    epoch_fraction: float = 1.0
    outer_iterations: int = 20
    seed: int = 11

    def epoch_length(self, num_samples: int) -> int:
        return max(1, int(num_samples * self.epoch_fraction))


@dataclass
class SvrgTimingModel:
    """Wall-clock cost model fed by simulator measurements.

    ``host_stream_gbs`` is the host's effective streaming bandwidth over the
    input matrix (used for host-only summarization), ``nda_stream_gbs`` the
    aggregate NDA bandwidth achieved *while the host keeps running*
    (concurrent access), and ``host_inner_iter_us`` the host time per inner
    stochastic update of a ``d``-dimensional model.
    """

    host_stream_gbs: float
    nda_stream_gbs: float
    #: Host time per inner stochastic update, per 1024 model features.  The
    #: default makes one full inner epoch cost about as much as one host
    #: summarization pass, which is the regime the paper's Figure 15 sits in
    #: (its best host-only epoch is N and the accelerated optimum moves to
    #: N/4 once summarization gets cheap).
    host_inner_iter_us_per_kfeature: float = 0.35
    exchange_us: float = 2.0
    num_ndas: int = 4

    @classmethod
    def analytic(cls, num_ndas: int = 4,
                 config: Optional[SystemConfig] = None) -> "SvrgTimingModel":
        """A model derived from peak bandwidths (no simulation required).

        The host streams at roughly two-thirds of its peak channel bandwidth;
        each NDA contributes roughly two-thirds of one rank's internal
        bandwidth when sharing the rank with the host.  Bandwidths come from
        the active configuration's organization (the paper baseline's
        19.2 GB/s per rank when no config is given), so retargeting the
        platform retimes the model automatically.
        """
        org = (config or default_config()).org
        per_rank_gbs = org.peak_rank_internal_bandwidth_gbs
        return cls(
            host_stream_gbs=org.channels * per_rank_gbs * 0.66,
            nda_stream_gbs=num_ndas * per_rank_gbs * 0.6,
            num_ndas=num_ndas,
        )

    def summarize_seconds(self, dataset_bytes: int, on_nda: bool) -> float:
        """Time for one full-data average-gradient pass."""
        bandwidth = self.nda_stream_gbs if on_nda else self.host_stream_gbs
        bandwidth = max(bandwidth, 1e-3)
        # The summarization streams the matrix once for the GEMV and once for
        # the per-sample AXPY accumulation (Figure 8).
        return 2.0 * dataset_bytes / (bandwidth * 1e9)

    def inner_loop_seconds(self, iterations: int, num_features: int) -> float:
        per_iter = self.host_inner_iter_us_per_kfeature * (num_features / 1024.0)
        return iterations * per_iter * 1e-6

    def exchange_seconds(self) -> float:
        """Host/NDA exchange of the small s and g vectors (cache-bypassed)."""
        return self.exchange_us * 1e-6


@dataclass
class SvrgHistoryPoint:
    """One outer-iteration sample of the training trajectory."""

    outer_iteration: int
    wall_clock_seconds: float
    training_loss: float
    loss_gap: float


class SvrgTrainer:
    """Multi-class ℓ2-regularized logistic regression trained with SVRG."""

    def __init__(self, dataset: Optional[SyntheticClassificationDataset] = None,
                 config: Optional[SvrgConfig] = None,
                 timing: Optional[SvrgTimingModel] = None) -> None:
        self.dataset = dataset or make_dataset()
        self.config = config or SvrgConfig()
        self.timing = timing or SvrgTimingModel.analytic()
        self.rng = np.random.default_rng(self.config.seed)
        self._labels_one_hot = self.dataset.one_hot()
        self._optimum_loss: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Model math
    # ------------------------------------------------------------------ #

    @property
    def num_features(self) -> int:
        return self.dataset.num_features

    @property
    def num_classes(self) -> int:
        return self.dataset.classes

    def _init_weights(self) -> np.ndarray:
        return np.zeros((self.num_features, self.num_classes), dtype=np.float64)

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=-1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=-1, keepdims=True)

    def loss(self, w: np.ndarray) -> float:
        """Mean cross-entropy plus the ℓ2 penalty."""
        x = self.dataset.features.astype(np.float64)
        logits = x @ w
        probs = self._softmax(logits)
        n = self.dataset.num_samples
        nll = -np.log(probs[np.arange(n), self.dataset.labels] + 1e-30).mean()
        reg = 0.5 * self.config.l2_lambda * float((w * w).sum())
        return float(nll + reg)

    def full_gradient(self, w: np.ndarray) -> np.ndarray:
        """The summarization task: average gradient over the whole dataset."""
        x = self.dataset.features.astype(np.float64)
        probs = self._softmax(x @ w)
        diff = probs - self._labels_one_hot
        grad = x.T @ diff / self.dataset.num_samples
        return grad + self.config.l2_lambda * w

    def sample_gradient(self, w: np.ndarray, index: int) -> np.ndarray:
        x = self.dataset.features[index].astype(np.float64)
        probs = self._softmax(x @ w)
        diff = probs - self._labels_one_hot[index]
        return np.outer(x, diff) + self.config.l2_lambda * w

    def optimum_loss(self, iterations: int = 300, lr: float = 0.5) -> float:
        """Reference optimum used for the "loss - optimum" axis of Figure 15a.

        Full-batch gradient descent with Nesterov-style momentum is cheap at
        these problem sizes and monotone enough for a reference value.
        """
        if self._optimum_loss is not None:
            return self._optimum_loss
        w = self._init_weights()
        velocity = np.zeros_like(w)
        for _ in range(iterations):
            grad = self.full_gradient(w)
            velocity = 0.9 * velocity - lr * grad
            w = w + velocity
        self._optimum_loss = min(self.loss(w), 0.0 + self.loss(w))
        return self._optimum_loss

    # ------------------------------------------------------------------ #
    # Training variants
    # ------------------------------------------------------------------ #

    def _inner_loop(self, w: np.ndarray, snapshot: np.ndarray,
                    correction: np.ndarray, iterations: int,
                    learning_rate: float,
                    velocity: Optional[np.ndarray] = None) -> Tuple[np.ndarray, np.ndarray]:
        """``iterations`` variance-reduced stochastic updates (vectorized in
        mini-batches for speed; semantics are per-sample SVRG).  The momentum
        ``velocity`` persists across calls within one training run."""
        batch = 32
        velocity = np.zeros_like(w) if velocity is None else velocity
        x_all = self.dataset.features.astype(np.float64)
        done = 0
        while done < iterations:
            take = min(batch, iterations - done)
            idx = self.rng.integers(0, self.dataset.num_samples, size=take)
            x = x_all[idx]
            probs_w = self._softmax(x @ w)
            probs_s = self._softmax(x @ snapshot)
            targets = self._labels_one_hot[idx]
            grad_w = x.T @ (probs_w - targets) / take + self.config.l2_lambda * w
            grad_s = x.T @ (probs_s - targets) / take + self.config.l2_lambda * snapshot
            update = grad_w - grad_s + correction
            velocity = self.config.momentum * velocity - learning_rate * update
            w = w + velocity
            done += take
        return w, velocity

    def train(self, variant: SvrgVariant,
              learning_rate: Optional[float] = None,
              epoch_fraction: Optional[float] = None,
              outer_iterations: Optional[int] = None) -> List[SvrgHistoryPoint]:
        """Run SVRG under one execution variant; returns the loss trajectory."""
        lr = learning_rate if learning_rate is not None else self.config.learning_rate
        fraction = epoch_fraction if epoch_fraction is not None else self.config.epoch_fraction
        outer = outer_iterations if outer_iterations is not None else self.config.outer_iterations
        epoch_len = max(1, int(self.dataset.num_samples * fraction))

        optimum = self.optimum_loss()
        dataset_bytes = self.dataset.nbytes
        timing = self.timing

        w = self._init_weights()
        velocity = np.zeros_like(w)
        snapshot = w.copy()
        correction = self.full_gradient(snapshot)
        stale_correction = correction.copy()
        stale_snapshot = snapshot.copy()
        wall_clock = 0.0
        history: List[SvrgHistoryPoint] = []

        initial_loss = self.loss(w)
        history.append(SvrgHistoryPoint(0, 0.0, initial_loss,
                                        max(initial_loss - optimum, 1e-16)))

        summarize_on_nda = variant is not SvrgVariant.HOST_ONLY
        summarize_time = timing.summarize_seconds(dataset_bytes, summarize_on_nda)
        inner_time = timing.inner_loop_seconds(epoch_len, self.num_features)
        per_iter_time = timing.inner_loop_seconds(1, self.num_features)
        # Delayed update exchanges whenever the NDAs finish a correction term,
        # so the host runs one *segment* of inner iterations per exchange;
        # more NDAs mean shorter segments and a fresher (less stale) term.
        segment_len = max(1, min(epoch_len,
                                 int(round(summarize_time / max(per_iter_time, 1e-12)))))

        for outer_it in range(1, outer + 1):
            if variant is SvrgVariant.DELAYED_UPDATE:
                # Parallel execution: the host's inner loop overlaps the NDA
                # summarization and uses the correction term of the previous
                # exchange (one NDA pass stale).
                iterations_left = epoch_len
                while iterations_left > 0:
                    segment = min(segment_len, iterations_left)
                    w, velocity = self._inner_loop(w, stale_snapshot, stale_correction,
                                                   segment, lr, velocity)
                    segment_time = timing.inner_loop_seconds(segment, self.num_features)
                    wall_clock += max(summarize_time, segment_time)
                    wall_clock += timing.exchange_seconds()
                    stale_snapshot = snapshot.copy()
                    stale_correction = correction.copy()
                    snapshot = w.copy()
                    correction = self.full_gradient(snapshot)
                    iterations_left -= segment
            else:
                # Serialized: summarize, then run the inner loop.
                snapshot = w.copy()
                correction = self.full_gradient(snapshot)
                wall_clock += summarize_time
                w, velocity = self._inner_loop(w, snapshot, correction,
                                               epoch_len, lr, velocity)
                wall_clock += inner_time
                if variant is SvrgVariant.ACCELERATED:
                    wall_clock += timing.exchange_seconds()

            current_loss = self.loss(w)
            history.append(SvrgHistoryPoint(
                outer_it, wall_clock, current_loss,
                max(current_loss - optimum, 1e-16),
            ))
        return history

    def train_until(self, variant: SvrgVariant, gap_threshold: float,
                    learning_rate: Optional[float] = None,
                    epoch_fraction: Optional[float] = None,
                    max_outer_iterations: int = 100) -> List[SvrgHistoryPoint]:
        """Train until the loss gap drops below ``gap_threshold``.

        This mirrors the paper's Figure 15b methodology: performance is the
        wall-clock time until training loss reaches a fixed distance from the
        optimum, so variants are compared at equal solution quality.
        """
        lr = learning_rate if learning_rate is not None else self.config.learning_rate
        fraction = epoch_fraction if epoch_fraction is not None else self.config.epoch_fraction
        history: List[SvrgHistoryPoint] = []
        for budget in self._growing_budgets(max_outer_iterations):
            history = self.train(variant, learning_rate=lr,
                                 epoch_fraction=fraction,
                                 outer_iterations=budget)
            if history[-1].loss_gap <= gap_threshold:
                break
        return history

    @staticmethod
    def _growing_budgets(max_outer: int) -> List[int]:
        budgets = []
        budget = max(1, max_outer // 8)
        while budget < max_outer:
            budgets.append(budget)
            budget *= 2
        budgets.append(max_outer)
        return budgets

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @staticmethod
    def time_to_converge(history: Sequence[SvrgHistoryPoint],
                         gap_threshold: float) -> Optional[float]:
        """Wall-clock seconds until the loss gap first drops below the threshold."""
        for point in history:
            if point.loss_gap <= gap_threshold:
                return point.wall_clock_seconds
        return None

    @staticmethod
    def best_history(histories: Dict[str, List[SvrgHistoryPoint]],
                     gap_threshold: float) -> Tuple[str, Optional[float]]:
        """The configuration reaching the threshold first (the 'ACC_Best' bar)."""
        best_name, best_time = "", None
        for name, history in histories.items():
            t = SvrgTrainer.time_to_converge(history, gap_threshold)
            if t is None:
                continue
            if best_time is None or t < best_time:
                best_name, best_time = name, t
        return best_name, best_time


def measure_svrg_timing(channels: int = 2, ranks_per_channel: int = 2,
                        mix: Optional[str] = "mix1",
                        cycles: int = 6000,
                        config: Optional[SystemConfig] = None) -> SvrgTimingModel:
    """Measure the SVRG timing-model inputs on the simulator.

    Two short runs: a host-only run measures the host's effective streaming
    bandwidth; a concurrent run with the SVRG summarization kernels on the
    NDAs measures the aggregate NDA bandwidth achieved alongside host
    traffic.  The result feeds :class:`SvrgTrainer` exactly as gem5+Ramulator
    measurements feed the paper's Figure 15.
    """
    cfg = config or scaled_config(channels, ranks_per_channel)
    num_ndas = cfg.org.total_ranks

    host_system = ChopimSystem(config=cfg, mode=AccessMode.HOST_ONLY, mix=mix)
    host_result = host_system.run(cycles=cycles)
    seconds = cycles / (cfg.org.dram_clock_ghz * 1e9)
    host_bytes = (host_result.host_reads + host_result.host_writes) * cfg.org.cacheline_bytes
    host_gbs = max(host_bytes / seconds / 1e9, 1.0)

    nda_system = ChopimSystem(config=cfg, mode=AccessMode.BANK_PARTITIONED, mix=mix)
    nda_system.set_nda_workload_sequence(svrg_kernel_sequence())
    nda_result = nda_system.run(cycles=cycles)
    nda_gbs = max(nda_result.nda_bandwidth_gbs, 1.0)

    return SvrgTimingModel(
        host_stream_gbs=host_gbs,
        nda_stream_gbs=nda_gbs,
        num_ndas=num_ndas,
    )
