"""Streamcluster (SC) — online k-median clustering NDA workload.

Table II lists streamcluster on a 2M x 128 point set as an NDA kernel.  Its
dominant work is distance evaluations between points and cluster centers
(dot products / norms), with occasional center updates — a read-heavy mix
that lands near DOT on the Figure 14 spectrum.  This module provides a
functional implementation plus the kernel-sequence description used by the
simulator experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.workloads import streamcluster_kernel_sequence  # re-exported

__all__ = ["StreamClusterer", "ClusteringResult", "streamcluster_kernel_sequence"]


@dataclass
class ClusteringResult:
    """Result of clustering one chunk of the stream."""

    centers: np.ndarray
    assignments: np.ndarray
    cost: float
    distance_evaluations: int


class StreamClusterer:
    """Online k-median-style clustering over a streamed point set.

    Points arrive in chunks; each chunk is clustered against the current
    centers, opening a new center when a point is far from all existing ones
    (the facility-cost rule of the original streamcluster kernel), and
    centers are refined by a weighted mean update.
    """

    def __init__(self, num_features: int = 128, max_centers: int = 32,
                 facility_cost: float = 4.0, seed: int = 5) -> None:
        if num_features <= 0 or max_centers <= 0:
            raise ValueError("num_features and max_centers must be positive")
        self.num_features = num_features
        self.max_centers = max_centers
        self.facility_cost = facility_cost
        self.rng = np.random.default_rng(seed)
        self.centers: Optional[np.ndarray] = None
        self.center_weights: Optional[np.ndarray] = None
        self.total_cost = 0.0
        self.points_processed = 0
        self.distance_evaluations = 0

    # ------------------------------------------------------------------ #

    def make_stream(self, num_points: int, num_clusters: int = 8,
                    spread: float = 0.3) -> np.ndarray:
        """Generate a synthetic point stream with ``num_clusters`` modes."""
        means = self.rng.standard_normal((num_clusters, self.num_features))
        labels = self.rng.integers(0, num_clusters, size=num_points)
        noise = self.rng.standard_normal((num_points, self.num_features)) * spread
        return (means[labels] + noise).astype(np.float32)

    def _distances(self, points: np.ndarray, centers: np.ndarray) -> np.ndarray:
        """Squared distances point-to-center (the DOT/NRM2-heavy inner loop)."""
        self.distance_evaluations += points.shape[0] * centers.shape[0]
        p2 = (points ** 2).sum(axis=1, keepdims=True)
        c2 = (centers ** 2).sum(axis=1)
        cross = points @ centers.T
        return np.maximum(p2 + c2 - 2.0 * cross, 0.0)

    def process_chunk(self, points: np.ndarray) -> ClusteringResult:
        """Cluster one chunk of streamed points, updating the centers."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.num_features:
            raise ValueError("points must be (n, num_features)")
        if self.centers is None:
            self.centers = points[:1].copy()
            self.center_weights = np.ones(1)
        distances = self._distances(points, self.centers)
        nearest = distances.argmin(axis=1)
        nearest_cost = distances[np.arange(points.shape[0]), nearest]

        # Open new centers for points whose assignment cost exceeds the
        # facility cost, while capacity remains.
        order = np.argsort(-nearest_cost)
        for idx in order:
            if self.centers.shape[0] >= self.max_centers:
                break
            if nearest_cost[idx] <= self.facility_cost:
                continue  # already well served (possibly by a center just opened)
            self.centers = np.vstack([self.centers, points[idx]])
            self.center_weights = np.append(self.center_weights, 1.0)
            new_d = self._distances(points, self.centers[-1:])[:, 0]
            better = new_d < nearest_cost
            nearest[better] = self.centers.shape[0] - 1
            nearest_cost[better] = new_d[better]

        # Weighted-mean center refinement.
        for center_idx in range(self.centers.shape[0]):
            members = points[nearest == center_idx]
            if len(members) == 0:
                continue
            weight = self.center_weights[center_idx]
            new_weight = weight + len(members)
            self.centers[center_idx] = (
                (self.centers[center_idx] * weight + members.sum(axis=0)) / new_weight
            )
            self.center_weights[center_idx] = new_weight

        cost = float(nearest_cost.sum())
        self.total_cost += cost
        self.points_processed += points.shape[0]
        return ClusteringResult(self.centers.copy(), nearest, cost,
                                self.distance_evaluations)

    def run_stream(self, num_points: int = 4096, chunk: int = 512,
                   num_clusters: int = 8) -> List[ClusteringResult]:
        """Cluster a full synthetic stream chunk by chunk."""
        stream = self.make_stream(num_points, num_clusters)
        results = []
        for start in range(0, num_points, chunk):
            results.append(self.process_chunk(stream[start:start + chunk]))
        return results

    # ------------------------------------------------------------------ #

    def write_intensity(self) -> float:
        """Fraction of memory traffic that is writes (center updates only)."""
        if self.points_processed == 0:
            return 0.0
        reads = self.distance_evaluations * self.num_features
        writes = (0 if self.centers is None
                  else self.centers.shape[0] * self.num_features * self.points_processed
                  // max(1, self.points_processed))
        return writes / max(1, reads + writes)
