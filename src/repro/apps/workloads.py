"""Kernel sequences that describe application NDA workloads to the simulator.

Figure 14 compares Chopim against rank partitioning on DOT, COPY and three
applications (SVRG's average gradient, conjugate gradient, streamcluster).
For the simulator, an application is characterized by the repeating sequence
of Table I operations it launches; these sequences are derived from each
application's implementation in this package.
"""

from __future__ import annotations

from typing import List

from repro.core.system import NdaKernelSpec
from repro.nda.isa import NdaOpcode


def svrg_kernel_sequence(elements_per_rank: int = 1 << 14,
                         matrix_columns: int = 256) -> List[NdaKernelSpec]:
    """The average-gradient summarization of Figure 8 as a kernel sequence.

    GEMV over the input matrix, two element-wise multiplies around the host's
    sigmoid, a scaling, a long run of asynchronous AXPYs (the ``parallel_for``
    macro operation), and the final regularization AXPY.
    """
    e = elements_per_rank
    return [
        NdaKernelSpec(NdaOpcode.GEMV, e // 8, matrix_columns=matrix_columns),
        NdaKernelSpec(NdaOpcode.XMY, e),
        NdaKernelSpec(NdaOpcode.XMY, e),
        NdaKernelSpec(NdaOpcode.SCAL, e),
        NdaKernelSpec(NdaOpcode.AXPY, e, async_launch=True),
        NdaKernelSpec(NdaOpcode.AXPY, e, async_launch=True),
        NdaKernelSpec(NdaOpcode.AXPY, e, async_launch=True),
        NdaKernelSpec(NdaOpcode.AXPY, e),
    ]


def cg_kernel_sequence(elements_per_rank: int = 1 << 14,
                       matrix_columns: int = 512) -> List[NdaKernelSpec]:
    """One conjugate-gradient iteration: SpMV-like GEMV, two DOTs, three AXPYs."""
    e = elements_per_rank
    return [
        NdaKernelSpec(NdaOpcode.GEMV, e // 8, matrix_columns=matrix_columns),
        NdaKernelSpec(NdaOpcode.DOT, e),
        NdaKernelSpec(NdaOpcode.AXPY, e),
        NdaKernelSpec(NdaOpcode.AXPY, e),
        NdaKernelSpec(NdaOpcode.DOT, e),
        NdaKernelSpec(NdaOpcode.AXPBY, e),
    ]


def streamcluster_kernel_sequence(elements_per_rank: int = 1 << 14) -> List[NdaKernelSpec]:
    """Streamcluster's dominant work: distance evaluations (DOT/NRM2 heavy)
    with occasional center updates (COPY/SCAL)."""
    e = elements_per_rank
    return [
        NdaKernelSpec(NdaOpcode.DOT, e),
        NdaKernelSpec(NdaOpcode.DOT, e),
        NdaKernelSpec(NdaOpcode.NRM2, e),
        NdaKernelSpec(NdaOpcode.DOT, e),
        NdaKernelSpec(NdaOpcode.SCAL, e // 4),
        NdaKernelSpec(NdaOpcode.COPY, e // 4),
    ]


_SEQUENCES = {
    "svrg": svrg_kernel_sequence,
    "cg": cg_kernel_sequence,
    "sc": streamcluster_kernel_sequence,
    "streamcluster": streamcluster_kernel_sequence,
}


def application_kernel_sequence(name: str,
                                elements_per_rank: int = 1 << 14) -> List[NdaKernelSpec]:
    """Kernel sequence for an application by name (``svrg``, ``cg``, ``sc``)."""
    key = name.lower()
    if key not in _SEQUENCES:
        raise KeyError(f"unknown application workload {name!r}")
    return _SEQUENCES[key](elements_per_rank)
