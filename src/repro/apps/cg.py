"""Conjugate gradient (CG) — one of the paper's additional NDA workloads.

Table II lists CG on a 16K x 16K operator as an NDA kernel whose behaviour
falls between the read-intensive DOT and write-intensive COPY extremes
(Figure 14).  This module provides a functional CG solver expressed in the
Table I operation vocabulary (so each solver iteration maps 1:1 onto NDA
launches) plus the kernel sequence used to drive the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.workloads import cg_kernel_sequence  # re-exported

__all__ = ["ConjugateGradientSolver", "CgIterationStats", "cg_kernel_sequence"]


@dataclass
class CgIterationStats:
    """Per-iteration record of residual norm and NDA operation counts."""

    iteration: int
    residual_norm: float
    operations: Dict[str, int] = field(default_factory=dict)


class ConjugateGradientSolver:
    """Solves ``A x = b`` for symmetric positive-definite ``A``.

    Every iteration performs one GEMV, two DOTs and three AXPY-family
    updates — exactly the per-iteration NDA operation mix reported to the
    simulator by :func:`cg_kernel_sequence`.
    """

    def __init__(self, matrix: np.ndarray, rhs: np.ndarray,
                 tolerance: float = 1e-8, max_iterations: int = 500) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        rhs = np.asarray(rhs, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if rhs.shape != (matrix.shape[0],):
            raise ValueError("rhs shape must match the matrix")
        if not np.allclose(matrix, matrix.T, atol=1e-8):
            raise ValueError("matrix must be symmetric")
        self.matrix = matrix
        self.rhs = rhs
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.history: List[CgIterationStats] = []
        self.operation_counts: Dict[str, int] = {
            "gemv": 0, "dot": 0, "axpy": 0, "axpby": 0,
        }

    # ------------------------------------------------------------------ #

    @classmethod
    def random_spd(cls, size: int = 256, seed: int = 3,
                   **kwargs) -> "ConjugateGradientSolver":
        """A random well-conditioned SPD system (test/benchmark helper)."""
        rng = np.random.default_rng(seed)
        m = rng.standard_normal((size, size))
        spd = m @ m.T / size + np.eye(size)
        rhs = rng.standard_normal(size)
        return cls(spd, rhs, **kwargs)

    def _gemv(self, x: np.ndarray) -> np.ndarray:
        self.operation_counts["gemv"] += 1
        return self.matrix @ x

    def _dot(self, x: np.ndarray, y: np.ndarray) -> float:
        self.operation_counts["dot"] += 1
        return float(np.dot(x, y))

    def _axpy(self, y: np.ndarray, alpha: float, x: np.ndarray) -> np.ndarray:
        self.operation_counts["axpy"] += 1
        return y + alpha * x

    def _axpby(self, alpha: float, x: np.ndarray, beta: float,
               y: np.ndarray) -> np.ndarray:
        self.operation_counts["axpby"] += 1
        return alpha * x + beta * y

    # ------------------------------------------------------------------ #

    def solve(self, x0: Optional[np.ndarray] = None) -> Tuple[np.ndarray, bool]:
        """Run CG; returns (solution, converged)."""
        x = np.zeros_like(self.rhs) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
        r = self.rhs - self._gemv(x)
        p = r.copy()
        rs_old = self._dot(r, r)
        self.history = [CgIterationStats(0, float(np.sqrt(rs_old)),
                                         dict(self.operation_counts))]
        converged = np.sqrt(rs_old) <= self.tolerance
        for iteration in range(1, self.max_iterations + 1):
            if converged:
                break
            ap = self._gemv(p)
            alpha = rs_old / max(self._dot(p, ap), 1e-300)
            x = self._axpy(x, alpha, p)
            r = self._axpy(r, -alpha, ap)
            rs_new = self._dot(r, r)
            residual = float(np.sqrt(rs_new))
            self.history.append(CgIterationStats(iteration, residual,
                                                 dict(self.operation_counts)))
            if residual <= self.tolerance:
                converged = True
                break
            p = self._axpby(1.0, r, rs_new / rs_old, p)
            rs_old = rs_new
        return x, converged

    # ------------------------------------------------------------------ #

    def residual_norm(self, x: np.ndarray) -> float:
        return float(np.linalg.norm(self.rhs - self.matrix @ x))

    def write_intensity(self) -> float:
        """Fraction of DRAM traffic that is writes for one CG iteration.

        GEMV and DOT only read; the AXPY-family updates read two vectors and
        write one.  Used to sanity-check that CG sits between DOT and COPY in
        the Figure 14 spectrum.
        """
        reads = 0
        writes = 0
        n = self.matrix.shape[0]
        reads += n * n + n          # gemv
        reads += 2 * 2 * n          # two dots
        reads += 3 * 2 * n          # three axpy-family reads
        writes += 3 * n             # three axpy-family writes
        return writes / (reads + writes)
