"""Application workloads: SVRG logistic regression, CG and streamcluster.

The SVRG case study (paper Section IV, Figures 15a/15b) is implemented in
full: host-only, NDA-accelerated (serialized) and delayed-update (parallel)
variants, with convergence computed functionally (numpy) and wall-clock time
derived from simulator-measured host/NDA throughput.  Conjugate gradient and
streamcluster provide the additional NDA workload points of Figure 14.
"""

from repro.apps.datasets import SyntheticClassificationDataset, make_dataset
from repro.apps.svrg import (
    SvrgConfig,
    SvrgTimingModel,
    SvrgTrainer,
    SvrgVariant,
    measure_svrg_timing,
)
from repro.apps.cg import ConjugateGradientSolver, cg_kernel_sequence
from repro.apps.streamcluster import StreamClusterer, streamcluster_kernel_sequence
from repro.apps.workloads import application_kernel_sequence, svrg_kernel_sequence

__all__ = [
    "SyntheticClassificationDataset",
    "make_dataset",
    "SvrgConfig",
    "SvrgTimingModel",
    "SvrgTrainer",
    "SvrgVariant",
    "measure_svrg_timing",
    "ConjugateGradientSolver",
    "cg_kernel_sequence",
    "StreamClusterer",
    "streamcluster_kernel_sequence",
    "application_kernel_sequence",
    "svrg_kernel_sequence",
]
