"""System configuration objects (paper Table II).

Every simulator component is configured from one of the dataclasses in this
module.  The defaults reproduce the evaluation configuration of the paper:

* 4-core out-of-order x86 host at 4 GHz (8 cores for mix0),
* DDR4-2400 (1.2 GHz command clock), 8 Gb x8 devices, 2 channels x 2 ranks,
* FR-FCFS host memory controller with 32-entry read/write queues, open-page
  policy and the Intel Skylake address mapping,
* one processing element (PE) per DRAM chip at 1.2 GHz with a 128-entry
  write buffer,
* the Table II DRAM timing parameters and energy components.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class DramTimingConfig:
    """DDR4 timing parameters in DRAM command-clock cycles (Table II)."""

    tBL: int = 4
    tCCDS: int = 4
    tCCDL: int = 6
    tRTRS: int = 2
    tCL: int = 16
    tRCD: int = 16
    tRP: int = 16
    tCWL: int = 12
    tRAS: int = 39
    tRC: int = 55
    tRTP: int = 9
    tWTRS: int = 3
    tWTRL: int = 9
    tWR: int = 18
    tRRDS: int = 4
    tRRDL: int = 6
    tFAW: int = 26
    # Refresh parameters are not listed in Table II; standard DDR4 8 Gb
    # values at 1.2 GHz are used.
    tREFI: int = 9360
    tRFC: int = 420

    @property
    def read_to_write(self) -> int:
        """Minimum read-command to write-command spacing on one channel.

        The raw sum ``tCL + tBL + tRTRS - tCWL`` can go non-positive for
        device classes whose write latency approaches the read latency;
        the property clamps at zero (column spacing and data-bus occupancy
        are enforced separately, so a zero here means "no extra gap").
        :meth:`validate` rejects such parameter sets up front — the clamp
        only protects consumers of unvalidated hand-built configs.
        """
        raw = self.tCL + self.tBL + self.tRTRS - self.tCWL
        return raw if raw > 0 else 0

    @property
    def write_to_read_same_rank_same_bg(self) -> int:
        """Write-to-read turnaround within one rank, same bank group."""
        return self.tCWL + self.tBL + self.tWTRL

    @property
    def write_to_read_same_rank_diff_bg(self) -> int:
        """Write-to-read turnaround within one rank, different bank group."""
        return self.tCWL + self.tBL + self.tWTRS

    @property
    def write_to_read_diff_rank(self) -> int:
        """Write-to-read spacing across ranks of the same channel.

        Clamped at zero like :attr:`read_to_write`: short-burst device
        classes (small tBL relative to the CL/CWL gap) legitimately derive
        a non-positive raw spacing, which :meth:`validate` rejects.
        """
        raw = self.tCWL + self.tBL + self.tRTRS - self.tCL
        return raw if raw > 0 else 0

    def validate(self) -> None:
        """Sanity-check the parameter set; raises ``ValueError`` on nonsense."""
        for name, value in dataclasses.asdict(self).items():
            if value <= 0:
                raise ValueError(f"timing parameter {name} must be positive, got {value}")
        if self.tRC < self.tRAS + self.tRP:
            raise ValueError("tRC must be at least tRAS + tRP")
        if self.tCCDL < self.tCCDS:
            raise ValueError("tCCD_L must be >= tCCD_S")
        if self.tWTRL < self.tWTRS:
            raise ValueError("tWTR_L must be >= tWTR_S")
        if self.tRRDL < self.tRRDS:
            raise ValueError("tRRD_L must be >= tRRD_S")
        # Derived turnaround spacings.  These are sums the timing engine
        # snapshots and applies directly; a non-positive derivation means
        # the parameter set describes a device this DDR-style model cannot
        # represent, so fail at construction with the formula spelled out
        # rather than silently mis-simulating (the properties clamp at 0,
        # which would weaken the constraint without complaint).
        raw_rtw = self.tCL + self.tBL + self.tRTRS - self.tCWL
        if raw_rtw <= 0:
            raise ValueError(
                "derived read_to_write spacing tCL + tBL + tRTRS - tCWL = "
                f"{self.tCL} + {self.tBL} + {self.tRTRS} - {self.tCWL} = "
                f"{raw_rtw} is not positive; increase tRTRS (bus turnaround) "
                "or check the tCL/tCWL values of this platform")
        raw_w2r = self.tCWL + self.tBL + self.tRTRS - self.tCL
        if raw_w2r <= 0:
            raise ValueError(
                "derived write_to_read_diff_rank spacing tCWL + tBL + tRTRS "
                f"- tCL = {self.tCWL} + {self.tBL} + {self.tRTRS} - "
                f"{self.tCL} = {raw_w2r} is not positive; platforms with a "
                "large read/write latency gap need a larger tRTRS (slow "
                "unterminated buses genuinely do) or a longer burst")

    @property
    def write_to_precharge(self) -> int:
        """Write-command to precharge spacing for the written bank."""
        return self.tCWL + self.tBL + self.tWR


@dataclass(frozen=True)
class DramOrgConfig:
    """DRAM organization: geometry of channels/ranks/banks/rows/columns.

    Defaults model the paper's 2-channel x 2-rank DDR4 system built from
    8 Gb x8 devices (8 chips per rank, 64-bit data bus, 1 KiB page per chip,
    i.e. an 8 KiB row per rank and 128 cache lines per row).
    """

    channels: int = 2
    ranks_per_channel: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 16
    chips_per_rank: int = 8
    row_bytes_per_chip: int = 1024
    cacheline_bytes: int = 64
    dram_clock_ghz: float = 1.2

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def row_bytes(self) -> int:
        """Bytes of one DRAM row across all chips of a rank (the "page")."""
        return self.row_bytes_per_chip * self.chips_per_rank

    @property
    def cachelines_per_row(self) -> int:
        return self.row_bytes // self.cacheline_bytes

    @property
    def columns_per_row(self) -> int:
        """Column (cache-line granularity) count per row."""
        return self.cachelines_per_row

    @property
    def rank_bytes(self) -> int:
        return self.row_bytes * self.rows_per_bank * self.banks_per_rank

    @property
    def channel_bytes(self) -> int:
        return self.rank_bytes * self.ranks_per_channel

    @property
    def total_bytes(self) -> int:
        return self.channel_bytes * self.channels

    @property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @property
    def system_row_bytes(self) -> int:
        """A "system row": one DRAM row from every bank in the system.

        This is the coarse-allocation granularity used by the Chopim runtime
        (Section III-A); 2 MiB for the paper's 1 TiB reference system, and
        computed from the geometry here.
        """
        return self.row_bytes * self.banks_per_rank * self.total_ranks

    @property
    def peak_channel_bandwidth_gbs(self) -> float:
        """Peak data bandwidth of one channel in GB/s (DDR: 2 transfers/cycle)."""
        bus_bytes = self.chips_per_rank  # x8 devices -> 8 bytes per transfer edge
        return self.dram_clock_ghz * 2.0 * bus_bytes

    @property
    def peak_host_bandwidth_gbs(self) -> float:
        return self.peak_channel_bandwidth_gbs * self.channels

    @property
    def peak_rank_internal_bandwidth_gbs(self) -> float:
        """Peak internal bandwidth available to the NDA of one rank."""
        return self.peak_channel_bandwidth_gbs

    def validate(self) -> None:
        for name in ("channels", "ranks_per_channel", "bank_groups",
                     "banks_per_group", "rows_per_bank", "chips_per_rank",
                     "row_bytes_per_chip", "cacheline_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"organization parameter {name} must be positive")
        if self.row_bytes % self.cacheline_bytes != 0:
            raise ValueError("row size must be a multiple of the cache-line size")
        for name in ("channels", "ranks_per_channel", "bank_groups",
                     "banks_per_group", "rows_per_bank"):
            value = getattr(self, name)
            if value & (value - 1):
                raise ValueError(f"{name} must be a power of two, got {value}")


@dataclass(frozen=True)
class HostConfig:
    """Host processor configuration (Table II)."""

    cores: int = 4
    cpu_clock_ghz: float = 4.0
    fetch_width: int = 8
    rob_entries: int = 224
    lsq_entries: int = 64
    max_outstanding_misses: int = 12  # LLC MSHRs per core path
    l1_kib: int = 32
    l1_assoc: int = 8
    l2_kib: int = 256
    l2_assoc: int = 4
    llc_mib: int = 8
    llc_assoc: int = 16
    llc_mshrs: int = 48
    read_queue_entries: int = 32
    write_queue_entries: int = 32
    #: DRAM command-clock frequency the host is paired with.  Kept in sync
    #: with ``DramOrgConfig.dram_clock_ghz`` by ``SystemConfig`` so the
    #: fixed-point host tick ratio is derived, never hand-entered (the
    #: paper baseline is DDR4-2400's 1.2 GHz).
    dram_clock_ghz: float = 1.2

    @property
    def cycles_per_dram_cycle(self) -> float:
        """CPU cycles elapsing per DRAM command-clock cycle."""
        return self.cpu_clock_ghz / self.dram_clock_ghz


@dataclass(frozen=True)
class NdaConfig:
    """Near-data accelerator configuration (Table II and Section V)."""

    pes_per_chip: int = 1
    pe_clock_ghz: float = 1.2
    fpfma_per_pe: int = 2
    buffer_bytes: int = 1024
    scratchpad_bytes: int = 1024
    write_buffer_entries: int = 128
    access_granularity_bytes: int = 8
    scalar_registers: int = 5
    # Write-throttling policy defaults (Section III-B).
    stochastic_issue_probability: float = 0.25
    # Granularity (cache blocks per NDA instruction) used when an operation
    # does not specify one; Figure 10 sweeps this value.
    default_cache_blocks_per_instruction: int = 1024


@dataclass(frozen=True)
class EnergyConfig:
    """Energy components (Table II)."""

    activate_nj: float = 1.0
    pe_access_pj_per_bit: float = 11.3
    host_access_pj_per_bit: float = 25.7
    pe_fma_pj_per_op: float = 20.0
    pe_buffer_pj_per_access: float = 20.0
    pe_buffer_leakage_mw: float = 11.0
    # Background DRAM power (standby/refresh) per rank, a standard DDR4
    # figure used to complete the power accounting of Section VII.
    dram_background_mw_per_rank: float = 350.0

    def host_access_nj(self, num_bytes: int) -> float:
        """Energy for the host to transfer ``num_bytes`` over the channel."""
        return self.host_access_pj_per_bit * num_bytes * 8 / 1000.0

    def pe_access_nj(self, num_bytes: int) -> float:
        """Energy for a PE to transfer ``num_bytes`` from its local DRAM."""
        return self.pe_access_pj_per_bit * num_bytes * 8 / 1000.0


@dataclass(frozen=True)
class SchedulerConfig:
    """Host memory-scheduler knobs (FR-FCFS, open page)."""

    read_queue_entries: int = 32
    write_queue_entries: int = 32
    write_drain_high_watermark: float = 0.75
    write_drain_low_watermark: float = 0.25
    row_policy: str = "open"  # "open" or "closed"
    refresh_enabled: bool = True


@dataclass
class SystemConfig:
    """Aggregate configuration for a full Chopim simulation."""

    timing: DramTimingConfig = field(default_factory=DramTimingConfig)
    org: DramOrgConfig = field(default_factory=DramOrgConfig)
    host: HostConfig = field(default_factory=HostConfig)
    nda: NdaConfig = field(default_factory=NdaConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    # Banks per rank reserved for the shared (NDA-accessible) region when
    # bank partitioning is enabled.  The paper reserves one bank per rank.
    shared_banks_per_rank: int = 1
    seed: int = 12345
    #: Name of the platform preset this configuration was derived from
    #: (bookkeeping only; "ddr4-2400" is the paper's Table II baseline).
    platform: str = "ddr4-2400"

    def __post_init__(self) -> None:
        # The host's fixed-point tick ratio is derived from the DRAM command
        # clock; keep the two in sync so swapping the organization (e.g. a
        # platform preset) can never leave a stale clock ratio behind.
        if self.host.dram_clock_ghz != self.org.dram_clock_ghz:
            self.host = dataclasses.replace(
                self.host, dram_clock_ghz=self.org.dram_clock_ghz)

    def validate(self) -> None:
        self.timing.validate()
        self.org.validate()
        if not 0 < self.shared_banks_per_rank <= self.org.banks_per_rank:
            raise ValueError("shared_banks_per_rank out of range")
        if self.host.dram_clock_ghz != self.org.dram_clock_ghz:
            raise ValueError(
                "host.dram_clock_ghz diverged from org.dram_clock_ghz; "
                "derive HostConfig through SystemConfig or a platform preset")

    def with_ranks(self, channels: int, ranks_per_channel: int) -> "SystemConfig":
        """Return a copy with a different channel/rank organization."""
        new_org = dataclasses.replace(
            self.org, channels=channels, ranks_per_channel=ranks_per_channel
        )
        return dataclasses.replace(self, org=new_org)

    def with_cores(self, cores: int) -> "SystemConfig":
        return dataclasses.replace(
            self, host=dataclasses.replace(self.host, cores=cores)
        )


def default_config() -> SystemConfig:
    """The paper's baseline system configuration (Table II)."""
    cfg = SystemConfig()
    cfg.validate()
    return cfg


def scaled_config(channels: int = 2, ranks_per_channel: int = 2,
                  cores: Optional[int] = None) -> SystemConfig:
    """A baseline configuration scaled to a different rank count / core count.

    Used by the scalability experiments (Figures 10, 14, 15b).
    """
    cfg = default_config().with_ranks(channels, ranks_per_channel)
    if cores is not None:
        cfg = cfg.with_cores(cores)
    cfg.validate()
    return cfg
