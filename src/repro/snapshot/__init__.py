"""Bit-exact simulation checkpointing.

The snapshot layer serializes the *full* mutable state of a
:class:`~repro.core.system.ChopimSystem` — timing horizons, open-row
state, FR-FCFS queues (with their ``queue_seq``/version counters),
replicated FSMs, NDA write buffers, host cores, stats windows, and
workload/RNG cursors — into a versioned, sha256-checked envelope, and
restores it into a freshly built system that continues bit-identically
(the same contract the cycle==event==burst==kernel equivalence fuzz
enforces).

Public API::

    from repro.snapshot import snapshot_system, restore_system
    from repro.snapshot import write_snapshot, read_snapshot

    payload = snapshot_system(system)          # at a safe point
    write_snapshot(path, payload)              # atomic, fsynced
    system = restore_system(read_snapshot(path))

See ARCHITECTURE.md "Checkpointing" for the safe-point definition and
the add-a-component recipe.
"""

from repro.snapshot.codec import (
    SCHEMA_VERSION,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    decode,
    dumps,
    encode,
    loads,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.state import restore_system, snapshot_system

__all__ = [
    "SCHEMA_VERSION",
    "SnapshotError",
    "SnapshotVersionError",
    "SnapshotCorruptError",
    "encode",
    "decode",
    "dumps",
    "loads",
    "write_snapshot",
    "read_snapshot",
    "snapshot_system",
    "restore_system",
]
