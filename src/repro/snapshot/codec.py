"""Snapshot codec: tagged-JSON encoding plus a checked file envelope.

The state trees produced by :mod:`repro.snapshot.state` are built from a
deliberately small vocabulary — ints, floats, strings, booleans, None,
lists, tuples, deques (with a ``maxlen``), and dicts (str keys or not).
JSON round-trips ints (arbitrary precision) and floats (shortest-repr)
exactly, so a tagged-JSON encoding is bit-exact for everything the
simulator serializes; anything outside the vocabulary is an error at
*encode* time, not a silent corruption at restore time.

The file envelope carries a magic string, a schema version, and a sha256
digest over the canonical payload text.  ``read_snapshot`` rejects
unknown versions (:class:`SnapshotVersionError`) and truncated or
bit-flipped files (:class:`SnapshotCorruptError`) with errors that say
what to do about it.  ``write_snapshot`` follows the result store's
durability discipline: unique per-writer temp name (pid + ticket),
flush + fsync, atomic rename.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from collections import deque
from pathlib import Path
from typing import Any, Union

MAGIC = "repro-snapshot"
SCHEMA_VERSION = 2  # v2: build payload records stepper_enabled

_TAG = "__t"

_temp_tickets = itertools.count()


class SnapshotError(Exception):
    """Base class for snapshot encode/decode/IO failures."""


class SnapshotVersionError(SnapshotError):
    """The file's schema version is not one this build can restore."""


class SnapshotCorruptError(SnapshotError):
    """The file is truncated, malformed, or fails its integrity digest."""


# --------------------------------------------------------------------- #
# Tagged encoding


def encode(value: Any) -> Any:
    """Lower ``value`` to a pure-JSON tree, tagging non-JSON containers."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return [encode(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode(item) for item in value]}
    if isinstance(value, deque):
        return {_TAG: "deque", "maxlen": value.maxlen,
                "items": [encode(item) for item in value]}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            if _TAG in value:
                return {_TAG: "rawdict",
                        "items": {key: encode(val) for key, val in value.items()}}
            return {key: encode(val) for key, val in value.items()}
        return {_TAG: "dict",
                "items": [[encode(key), encode(val)] for key, val in value.items()]}
    raise SnapshotError(
        f"cannot encode {type(value).__name__!r} ({value!r}); snapshot state "
        "must be built from int/float/str/bool/None/list/tuple/deque/dict")


def decode(value: Any) -> Any:
    """Invert :func:`encode`."""
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {key: decode(val) for key, val in value.items()}
        if tag == "tuple":
            return tuple(decode(item) for item in value["items"])
        if tag == "deque":
            return deque((decode(item) for item in value["items"]),
                         maxlen=value["maxlen"])
        if tag == "dict":
            return {decode(key): decode(val) for key, val in value["items"]}
        if tag == "rawdict":
            return {key: decode(val) for key, val in value["items"].items()}
        raise SnapshotCorruptError(f"unknown codec tag {tag!r}")
    return value


# --------------------------------------------------------------------- #
# Envelope


def dumps(payload: Any) -> str:
    """Serialize a state tree into the versioned, digest-carrying envelope."""
    body = json.dumps(encode(payload), separators=(",", ":"), sort_keys=True,
                      allow_nan=False)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
    envelope = {"magic": MAGIC, "version": SCHEMA_VERSION,
                "sha256": digest, "payload": body}
    return json.dumps(envelope, separators=(",", ":"), sort_keys=True)


def loads(text: str) -> Any:
    """Parse an envelope, verify magic/version/digest, return the payload."""
    try:
        envelope = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise SnapshotCorruptError(
            f"snapshot is not valid JSON ({exc}); the file is truncated or "
            "corrupt — delete it and re-run from scratch") from exc
    if not isinstance(envelope, dict) or envelope.get("magic") != MAGIC:
        raise SnapshotCorruptError(
            "not a repro snapshot (bad magic); was this file written by "
            "write_snapshot?")
    version = envelope.get("version")
    if version != SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"snapshot schema version {version!r} is not supported by this "
            f"build (expected {SCHEMA_VERSION}); re-create the checkpoint "
            "with the current code, or run it with a matching build")
    body = envelope.get("payload")
    digest = envelope.get("sha256")
    if not isinstance(body, str) or not isinstance(digest, str):
        raise SnapshotCorruptError(
            "snapshot envelope is missing its payload or digest; the file "
            "is corrupt — delete it and re-run from scratch")
    actual = hashlib.sha256(body.encode("utf-8")).hexdigest()
    if actual != digest:
        raise SnapshotCorruptError(
            f"snapshot integrity digest mismatch (stored {digest[:12]}…, "
            f"computed {actual[:12]}…); the file was truncated or bit-flipped "
            "— delete it and re-run from scratch")
    try:
        return decode(json.loads(body))
    except SnapshotError:
        raise
    except (ValueError, TypeError, KeyError) as exc:
        raise SnapshotCorruptError(
            f"snapshot payload failed to decode ({exc})") from exc


# --------------------------------------------------------------------- #
# Files


def write_snapshot(path: Union[str, Path], payload: Any) -> Path:
    """Atomically write ``payload`` to ``path`` (temp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Unique per-writer temp name: concurrent writers (two sweep workers
    # racing on the same key) must not clobber each other's temp file.
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_temp_tickets)}.tmp")
    text = dumps(payload)
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass
    return path


def read_snapshot(path: Union[str, Path]) -> Any:
    """Read and verify a snapshot file, returning the decoded payload."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise SnapshotError(
            f"snapshot file {path} does not exist; nothing to restore") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        return loads(text)
    except SnapshotError as exc:
        raise type(exc)(f"{path}: {exc}") from None
