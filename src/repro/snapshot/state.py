"""Full-system state serialization: ``snapshot_system`` / ``restore_system``.

A snapshot is taken at a **safe point**: an inter-cycle engine boundary
(``SimulationEngine.run_until`` has returned, no cycle is mid-flight).  At
such a boundary the only state that is not a plain value is

* live burst plans (pure schedules) — settled-and-dropped first via
  ``cancel_burst(now, "checkpoint")``, which is exactly the per-cycle
  fallback every early wake already takes, so the continuing run stays
  bit-identical to the restored one;
* the engine wake calendar — derived, never serialized; both the
  checkpointed (continuing) system and the restored system rebuild it
  through ``invalidate_wakes()``;
* completion/launch closures — rebuilt at restore from the request's
  ``(core_id, is_write)`` discriminator, the NDA host's in-flight packet
  map, and each work item's ``operation_id``.

Everything else round-trips as numbers through the tagged-JSON codec
(:mod:`repro.snapshot.codec`), including the three global id counters
(requests, instructions, operations), which restore as watermarks so ids
never collide after resume.

The payload layout is versioned by the codec envelope's schema version;
adding a field to any serialized component requires bumping
``repro.snapshot.codec.SCHEMA_VERSION`` (see ARCHITECTURE.md
"Checkpointing" for the add-a-component recipe).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Dict, Optional, Tuple

from repro.config import (
    DramOrgConfig,
    DramTimingConfig,
    EnergyConfig,
    HostConfig,
    NdaConfig,
    SchedulerConfig,
    SystemConfig,
)
from repro.core.modes import AccessMode
from repro.dram.bank import BankState
from repro.dram.commands import DramAddress
from repro.host.core import _OutstandingMiss
from repro.memctrl.controller import _PendingCompletion
from repro.memctrl.request import (
    MemoryRequest,
    get_request_id_watermark,
    set_request_id_watermark,
)
from repro.nda.controller import RankWorkItem, _ExecutionState
from repro.nda.isa import (
    NdaInstruction,
    NdaOpcode,
    get_instruction_id_watermark,
    set_instruction_id_watermark,
)
from repro.nda.launch import (
    NdaOperation,
    get_operation_id_watermark,
    set_operation_id_watermark,
)
from repro.snapshot.codec import SnapshotError

#: Serialized slots of the scalar timing-state objects.  The bank slots are
#: restored through the named attributes (not the raw slot storage) so the
#: kernel backend's write-through array views receive the values.
_RANK_SLOTS = (
    "act_allowed", "act_allowed_bg", "faw_window",
    "last_read_cycle", "last_read_bg",
    "last_host_read_cycle", "last_nda_read_cycle",
    "last_write_cycle", "last_write_bg",
    "busy_until", "data_busy_from", "data_busy_until",
    "nda_bus_free", "refresh_due", "refreshing_until",
)
_BANK_SLOTS = ("act_allowed", "pre_allowed", "rd_allowed", "wr_allowed")
_CHANNEL_SLOTS = ("data_bus_free", "last_col_rank", "last_data_end",
                  "last_col_was_write", "last_col_cycle")
_FSM_FIELDS = ("current_instruction", "reads_remaining", "writes_remaining",
               "write_buffer_occupancy", "draining", "instructions_completed")
_PE_STAT_FIELDS = ("instructions_executed", "elements_processed",
                   "fma_operations", "buffer_accesses", "scratchpad_accesses",
                   "bytes_read", "bytes_written", "busy_cycles")
_CORE_FIELDS = ("_retired_fp", "_cpu_cycles_fp", "_stall_cycles",
                "_budget_fp", "_gap_fp", "event_count", "reads_issued",
                "writes_issued", "misses_completed")
_EXEC_FIELDS = ("reads_issued", "writes_staged", "writes_drained",
                "read_classified_idx", "write_classified_idx")
_RC_COUNTER_FIELDS = ("bursts_planned", "burst_commands_planned",
                      "burst_commands_settled", "bursts_completed",
                      "bytes_read", "bytes_written", "commands_issued",
                      "cycles_blocked_by_host", "cycles_blocked_by_throttle",
                      "instructions_completed")


# --------------------------------------------------------------------- #
# Snapshot
# --------------------------------------------------------------------- #


def _config_state(config: SystemConfig) -> Dict[str, Any]:
    return {
        "timing": dataclasses.asdict(config.timing),
        "org": dataclasses.asdict(config.org),
        "host": dataclasses.asdict(config.host),
        "nda": dataclasses.asdict(config.nda),
        "energy": dataclasses.asdict(config.energy),
        "scheduler": dataclasses.asdict(config.scheduler),
        "shared_banks_per_rank": config.shared_banks_per_rank,
        "seed": config.seed,
        "platform": config.platform,
    }


def _request_state(request: MemoryRequest) -> Dict[str, Any]:
    return {
        "addr": tuple(request.addr),
        "is_write": request.is_write,
        "phys": request.phys,
        "core_id": request.core_id,
        "arrival_cycle": request.arrival_cycle,
        "request_id": request.request_id,
        "outcome_recorded": request.outcome_recorded,
        "issued_cycle": request.issued_cycle,
        "completed_cycle": request.completed_cycle,
        "queue_seq": request.queue_seq,
    }


def _queue_state(queue) -> Dict[str, Any]:
    return {
        "ids": [request.request_id for request in queue],
        "next_seq": queue._next_seq,
        "version": queue.version,
    }


def _windowed_state(stat) -> Dict[str, Any]:
    return {"count": stat.count, "total": stat.total,
            "minimum": stat.minimum, "maximum": stat.maximum}


def _instruction_state(instruction: NdaInstruction) -> Dict[str, Any]:
    return {
        "opcode": instruction.opcode.value,
        "num_elements": instruction.num_elements,
        "element_bytes": instruction.element_bytes,
        "cache_blocks": instruction.cache_blocks,
        "scalars": tuple(instruction.scalars),
        "matrix_columns": instruction.matrix_columns,
        "instruction_id": instruction.instruction_id,
    }


def _work_state(work: RankWorkItem) -> Dict[str, Any]:
    if work.on_complete is not None and work.operation_id < 0:
        raise SnapshotError(
            "cannot snapshot a RankWorkItem with a custom on_complete hook "
            "(no operation_id to rebuild it from); complete directly "
            "enqueued test work before checkpointing")
    return {
        "instruction_id": work.instruction.instruction_id,
        "operand_banks": list(work.operand_banks),
        "operand_base_rows": list(work.operand_base_rows),
        "output_bank": work.output_bank,
        "output_base_row": work.output_base_row,
        "launched_cycle": work.launched_cycle,
        "completed_cycle": work.completed_cycle,
        "operation_id": work.operation_id,
        "has_on_complete": work.on_complete is not None,
    }


def _packet_state(packet) -> Dict[str, Any]:
    return {
        "channel": packet.channel,
        "rank": packet.rank,
        "work": _work_state(packet.work),
        "control_address": tuple(packet.control_address),
        "enqueued": packet.enqueued,
    }


def _operation_state(operation: NdaOperation) -> Dict[str, Any]:
    if operation.on_complete is not None:
        raise SnapshotError(
            f"cannot snapshot operation #{operation.operation_id}: it "
            "carries a runtime on_complete callback, which is not "
            "serializable — wait for it to finish before checkpointing")
    return {
        "opcode": operation.opcode.value,
        "total_elements": operation.total_elements,
        "cache_blocks": operation.cache_blocks,
        "element_bytes": operation.element_bytes,
        "scalars": tuple(operation.scalars),
        "matrix_columns": operation.matrix_columns,
        "async_launch": operation.async_launch,
        "operation_id": operation.operation_id,
        "launched_cycle": operation.launched_cycle,
        "completed_cycle": operation.completed_cycle,
        "outstanding_instructions": operation.outstanding_instructions,
    }


def _gather_nda_tables(system) -> Tuple[Dict[int, NdaInstruction],
                                        Dict[int, NdaOperation]]:
    """Collect every live instruction and operation, keyed by id.

    Operations are reachable from the NDA host's queue/active slot and —
    for in-flight pieces — only through work-item completion closures;
    those are recovered from the closure's bound ``op=`` default (see
    ``NdaHostController._piece_completion_callback``).
    """
    instructions: Dict[int, NdaInstruction] = {}
    operations: Dict[int, NdaOperation] = {}
    nda = system.nda_host

    def note_work(work: RankWorkItem) -> None:
        instructions[work.instruction.instruction_id] = work.instruction
        hook = work.on_complete
        if hook is not None and work.operation_id >= 0:
            op = hook.__defaults__[0]
            operations[op.operation_id] = op

    if nda is not None:
        for op in nda._operation_queue:
            operations[op.operation_id] = op
        if nda._active_blocking is not None:
            operations[nda._active_blocking.operation_id] = nda._active_blocking
        for packet in nda._pending_packets:
            note_work(packet.work)
        for packet in nda._inflight.values():
            note_work(packet.work)
    for controller in system.rank_controllers.values():
        for work in controller._queue:
            note_work(work)
        if controller._active is not None:
            note_work(controller._active.work)
        for pe in controller.pes:
            if pe._current is not None:
                instructions[pe._current.instruction_id] = pe._current
    return instructions, operations


def _throttle_state(system) -> Optional[Dict[str, Any]]:
    policy = getattr(system, "throttle_policy", None)
    if policy is None:
        return None
    state: Dict[str, Any] = {"name": policy.name}
    if policy.name == "stochastic_issue":
        state.update(attempts=policy.attempts, allowed=policy.allowed,
                     rng=policy.rng.getstate())
    elif policy.name == "next_rank_prediction":
        state.update(inhibits=policy.inhibits, checks=policy.checks)
    return state


def snapshot_system(system) -> Dict[str, Any]:
    """Serialize the full state of ``system`` at an inter-cycle safe point.

    Mutates the running system in two benign ways that the restored system
    mirrors exactly: live burst plans are settled-and-cancelled (cause
    ``"checkpoint"`` — the standard early-wake fallback), and every cached
    wake is invalidated.  The continuing run therefore stays bit-identical
    to a restore of the returned payload.
    """
    if system.cores and system.mix is None:
        raise SnapshotError(
            "cannot snapshot a system built from custom benchmark profiles "
            "(profiles=...): the build spec records only named mixes")
    for controller in system.rank_controllers.values():
        controller.cancel_burst(system.now, "checkpoint")

    timing = system.dram.timing
    requests: Dict[int, Dict[str, Any]] = {}

    def note_request(request: MemoryRequest) -> int:
        requests[request.request_id] = _request_state(request)
        return request.request_id

    channels: Dict[int, Dict[str, Any]] = {}
    for ch, mc in system.channel_controllers.items():
        for request in mc.read_queue:
            note_request(request)
        for request in mc.write_queue:
            note_request(request)
        channels[ch] = {
            "read_queue": _queue_state(mc.read_queue),
            "write_queue": _queue_state(mc.write_queue),
            "counters": dict(mc.counters._counts),
            "read_latency": _windowed_state(mc.read_latency),
            "completions": [(p.cycle, note_request(p.request))
                            for p in mc._completions],
            "completions_min": mc._completions_min,
            "inflight_completions": mc.inflight_completions,
            "draining_writes": mc._draining_writes,
            "last_issue_was_write": mc._last_issue_was_write,
            "last_issue_cycle": mc.last_issue_cycle,
            "last_issue_rank": mc.last_issue_rank,
            "last_tick_cycle": mc.last_tick_cycle,
            "published_wake": mc.published_wake,
            "issue_hint": mc._issue_hint,
        }

    host = system._host_component
    host_state = {
        "cursors": list(host._cursors),
        "completions": [(cycle, seq, note_request(request),
                         controller.channel)
                        for cycle, seq, request, controller
                        in host._completions],
        "completion_seq": host._completion_seq,
        "completion_bound": host.completion_bound,
        "backlog_requests": host.backlog_requests,
        "core_backlog": [[note_request(request) for request in backlog]
                         for backlog in system._core_backlog],
    }

    cores = []
    for core in system.cores:
        state = {field: getattr(core, field) for field in _CORE_FIELDS}
        state["outstanding"] = [(m.phys, m.issued_at_instruction_fp,
                                 m.is_blocking) for m in core._outstanding]
        state["pending_requests"] = [tuple(p) for p in core._pending_requests]
        state["rng"] = core.rng.getstate()
        traffic = core.traffic
        state["traffic"] = {
            "current_line": traffic._current_line,
            "recent_lines": deque(traffic._recent_lines,
                                  maxlen=traffic._recent_lines.maxlen),
            "generated_reads": traffic.generated_reads,
            "generated_writes": traffic.generated_writes,
            "rng": traffic.rng.getstate(),
        }
        cores.append(state)

    instructions, operations = _gather_nda_tables(system)

    nda = system.nda_host
    nda_state: Optional[Dict[str, Any]] = None
    if nda is not None:
        nda_state = {
            "operation_queue": [op.operation_id for op in nda._operation_queue],
            "active_blocking": (nda._active_blocking.operation_id
                                if nda._active_blocking is not None else None),
            "placers": {key: {"row_cursor": dict(placer._row_cursor),
                              "next_bank": placer._next_bank}
                        for key, placer in nda._placers.items()},
            "control_column": nda._control_column,
            "pending_packets": [_packet_state(p) for p in nda._pending_packets],
            "inflight": [(request_id, _packet_state(packet))
                         for request_id, packet in nda._inflight.items()],
            "operations_launched": nda.operations_launched,
            "operations_completed": nda.operations_completed,
            "packets_sent": nda.packets_sent,
        }

    rank_controllers: Dict[Tuple[int, int], Dict[str, Any]] = {}
    for key, rc in system.rank_controllers.items():
        active = None
        if rc._active is not None:
            active = {"work": _work_state(rc._active.work)}
            active.update({field: getattr(rc._active, field)
                           for field in _EXEC_FIELDS})
        wb = rc.write_buffer
        fsm = rc.fsm
        state = {
            "queue": [_work_state(work) for work in rc._queue],
            "active": active,
            "write_buffer": {
                "entries": [tuple(addr) for addr in wb._entries],
                "draining": wb._draining,
                "total_enqueued": wb.total_enqueued,
                "total_drained": wb.total_drained,
                "stall_cycles": wb.stall_cycles,
            },
            "fsm": {
                "device": {f: getattr(fsm._device, f) for f in _FSM_FIELDS},
                "host": {f: getattr(fsm._host, f) for f in _FSM_FIELDS},
                "events_applied": fsm.events_applied,
                "log": deque(fsm._log, maxlen=fsm._log.maxlen),
            },
            "pes": [{"stats": {f: getattr(pe.stats, f)
                               for f in _PE_STAT_FIELDS},
                     "current": (pe._current.instruction_id
                                 if pe._current is not None else None)}
                    for pe in rc.pes],
            "burst_truncations": dict(rc.burst_truncations),
        }
        state.update({field: getattr(rc, field)
                      for field in _RC_COUNTER_FIELDS})
        rank_controllers[key] = state

    stats = system.stats
    payload: Dict[str, Any] = {
        "kind": "chopim-system",
        "build": {
            "config": _config_state(system.config),
            "mode": system.mode.value,
            "mix": system.mix,
            "throttle": system._throttle_name,
            "stochastic_probability": system._stochastic_probability,
            "launch_packets_use_channel": system._launch_packets_use_channel,
            "collect_energy": system.collect_energy,
            "engine": system.engine_kind,
            "backend": system.backend,
            "burst_enabled": system.burst_enabled,
            "stepper_enabled": system.stepper_enabled,
        },
        "now": system.now,
        "measure_start": system._measure_start,
        "run_end": getattr(system, "_run_end", None),
        "run_cycles": getattr(system, "_run_cycles", None),
        "watermarks": {
            "request": get_request_id_watermark(),
            "instruction": get_instruction_id_watermark(),
            "operation": get_operation_id_watermark(),
        },
        "rng": system.rng.getstate(),
        "requests": requests,
        "instructions": {iid: _instruction_state(instruction)
                         for iid, instruction in instructions.items()},
        "operations": {oid: _operation_state(op)
                       for oid, op in operations.items()},
        "dram": {
            "counts": dataclasses.asdict(system.dram.counts),
            "channel_issue_version": list(system.dram.channel_issue_version),
            "banks": [{
                "state": bank.state.value,
                "open_row": bank.open_row,
                "row_hits": bank.row_hits,
                "row_misses": bank.row_misses,
                "row_conflicts": bank.row_conflicts,
                "activates": bank.activates,
                "precharges": bank.precharges,
                "reads": bank.reads,
                "writes": bank.writes,
                "nda_reads": bank.nda_reads,
                "nda_writes": bank.nda_writes,
            } for bank in system.dram._banks],
        },
        "timing": {
            "ranks": [_rank_timing_state(rt) for rt in timing._ranks],
            "banks": [[getattr(bt, slot) for slot in _BANK_SLOTS]
                      for bt in timing._banks],
            "channels": [{slot: getattr(ct, slot) for slot in _CHANNEL_SLOTS}
                         for ct in timing._channels],
            "channel_refresh_due": list(timing._channel_refresh_due),
            "issue_versions": list(timing._issue_versions),
            "row_versions": list(timing._row_versions),
        },
        "channels": channels,
        "host": host_state,
        "cores": cores,
        "nda_host": nda_state,
        "rank_controllers": rank_controllers,
        "throttle": _throttle_state(system),
        "scheduler": {
            "nda_issue_opportunities": system.scheduler.nda_issue_opportunities,
            "nda_blocked_cycles": system.scheduler.nda_blocked_cycles,
        },
        "stats_component": {
            "cursor": system._stats_component._cursor,
            "rank_cursors": dict(system._stats_component._rank_cursors),
        },
        "stats": {
            "counters": dict(stats.counters._counts),
            "cycles_observed": stats.cycles_observed,
            "trackers": {key: {
                "weights": list(tracker.histogram.weights),
                "counts": list(tracker.histogram.counts),
                "busy_cycles": tracker.busy_cycles,
                "idle_cycles": tracker.idle_cycles,
                "idle_run": tracker._idle_run,
            } for key, tracker in stats.rank_trackers.items()},
        },
        "workload": _workload_state(system),
    }
    # Cancelled plans and (possibly) settled timing left stale calendar
    # entries behind; the continuing run re-derives every wake, exactly as
    # the restored system will.
    system.engine.invalidate_wakes()
    return payload


def _rank_timing_state(rt) -> Dict[str, Any]:
    # Copy the mutable containers so the payload stays frozen while the
    # checkpointed system keeps running.
    state = {slot: getattr(rt, slot) for slot in _RANK_SLOTS}
    state["act_allowed_bg"] = list(rt.act_allowed_bg)
    state["faw_window"] = deque(rt.faw_window, maxlen=rt.faw_window.maxlen)
    return state


def _workload_state(system) -> Dict[str, Any]:
    spec = system._nda_workload
    sequence = system._nda_sequence
    return {
        "spec": None if spec is None else {
            "opcode": spec.opcode.value,
            "elements_per_rank": spec.elements_per_rank,
            "cache_blocks": spec.cache_blocks,
            "async_launch": spec.async_launch,
            "matrix_columns": spec.matrix_columns,
            "continuous": spec.continuous,
            "launches": spec.launches,
        },
        "sequence": None if sequence is None else [{
            "opcode": kernel.opcode.value,
            "elements_per_rank": kernel.elements_per_rank,
            "matrix_columns": kernel.matrix_columns,
            "cache_blocks": kernel.cache_blocks,
            "async_launch": kernel.async_launch,
        } for kernel in sequence],
        "sequence_index": system._nda_sequence_index,
        "sequence_continuous": system._nda_sequence_continuous,
    }


# --------------------------------------------------------------------- #
# Restore
# --------------------------------------------------------------------- #


def _restore_config(state: Dict[str, Any]) -> SystemConfig:
    return SystemConfig(
        timing=DramTimingConfig(**state["timing"]),
        org=DramOrgConfig(**state["org"]),
        host=HostConfig(**state["host"]),
        nda=NdaConfig(**state["nda"]),
        energy=EnergyConfig(**state["energy"]),
        scheduler=SchedulerConfig(**state["scheduler"]),
        shared_banks_per_rank=state["shared_banks_per_rank"],
        seed=state["seed"],
        platform=state["platform"],
    )


def _restore_request(state: Dict[str, Any], system) -> MemoryRequest:
    request = MemoryRequest(
        addr=DramAddress._make(state["addr"]),
        is_write=state["is_write"],
        phys=state["phys"],
        core_id=state["core_id"],
        arrival_cycle=state["arrival_cycle"],
        request_id=state["request_id"],
    )
    request.outcome_recorded = state["outcome_recorded"]
    request.issued_cycle = state["issued_cycle"]
    request.completed_cycle = state["completed_cycle"]
    request.queue_seq = state["queue_seq"]
    if request.core_id >= 0 and not request.is_write:
        # Demand read: the completion routes through the host unit (lazy
        # core sync), exactly as ChopimSystem._make_host_request wires it.
        request.on_complete = (
            lambda cycle, h=system._host_component, i=request.core_id,
            p=request.phys: h.deliver_completion(i, p, cycle))
    # Launch-packet writes (core_id == -2) get their on_complete attached
    # when the NDA host's in-flight map restores; plain writebacks have none.
    return request


def _restore_queue(queue, state: Dict[str, Any], registry) -> None:
    for request_id in state["ids"]:
        request = registry[request_id]
        # push stamps queue_seq from _next_seq and fires on_push, keeping
        # the kernel backend's slot arrays in lock-step; pre-seeding
        # _next_seq per request reproduces the original stamps.
        queue._next_seq = request.queue_seq
        if not queue.push(request):  # pragma: no cover - capacity matches
            raise SnapshotError("queue overflow during restore")
    queue._next_seq = state["next_seq"]
    queue.version = state["version"]


def _restore_instruction(state: Dict[str, Any]) -> NdaInstruction:
    return NdaInstruction(
        opcode=NdaOpcode(state["opcode"]),
        num_elements=state["num_elements"],
        element_bytes=state["element_bytes"],
        cache_blocks=state["cache_blocks"],
        scalars=tuple(state["scalars"]),
        matrix_columns=state["matrix_columns"],
        instruction_id=state["instruction_id"],
    )


def _restore_operation(state: Dict[str, Any]) -> NdaOperation:
    operation = NdaOperation(
        opcode=NdaOpcode(state["opcode"]),
        total_elements=state["total_elements"],
        cache_blocks=state["cache_blocks"],
        element_bytes=state["element_bytes"],
        scalars=tuple(state["scalars"]),
        matrix_columns=state["matrix_columns"],
        async_launch=state["async_launch"],
        operation_id=state["operation_id"],
    )
    operation.launched_cycle = state["launched_cycle"]
    operation.completed_cycle = state["completed_cycle"]
    operation.outstanding_instructions = state["outstanding_instructions"]
    return operation


def _restore_work(state: Dict[str, Any], instructions, operations,
                  nda_host) -> RankWorkItem:
    work = RankWorkItem(
        instruction=instructions[state["instruction_id"]],
        operand_banks=list(state["operand_banks"]),
        operand_base_rows=list(state["operand_base_rows"]),
        output_bank=state["output_bank"],
        output_base_row=state["output_base_row"],
        launched_cycle=state["launched_cycle"],
        completed_cycle=state["completed_cycle"],
        operation_id=state["operation_id"],
    )
    if state["has_on_complete"]:
        work.on_complete = nda_host._piece_completion_callback(
            operations[work.operation_id])
    return work


def _restore_packet(state: Dict[str, Any], instructions, operations,
                    nda_host):
    from repro.nda.launch import NdaPacket

    return NdaPacket(
        channel=state["channel"],
        rank=state["rank"],
        work=_restore_work(state["work"], instructions, operations, nda_host),
        control_address=DramAddress._make(state["control_address"]),
        enqueued=state["enqueued"],
    )


def restore_system(payload: Dict[str, Any]):
    """Rebuild a :class:`ChopimSystem` from a ``snapshot_system`` payload.

    The system is constructed fresh from the recorded build spec, then
    every serialized component is overwritten in place; derived state
    (wake calendar, scan caches, probe caches) is left cold and recomputes
    to identical values on first use.
    """
    from repro.core.system import ChopimSystem, NdaKernelSpec, _NdaWorkloadSpec

    if payload.get("kind") != "chopim-system":
        raise SnapshotError(
            f"payload kind {payload.get('kind')!r} is not a chopim-system "
            "snapshot")
    build = payload["build"]
    config = _restore_config(build["config"])
    system = ChopimSystem(
        config=config,
        mode=AccessMode(build["mode"]),
        mix=build["mix"],
        throttle=build["throttle"],
        stochastic_probability=build["stochastic_probability"],
        launch_packets_use_channel=build["launch_packets_use_channel"],
        collect_energy=build["collect_energy"],
        engine=build["engine"],
        backend=build["backend"],
    )
    if system.burst_enabled != build["burst_enabled"]:
        raise SnapshotError(
            f"burst-issue mismatch: snapshot taken with burst_enabled="
            f"{build['burst_enabled']}, this process resolves it to "
            f"{system.burst_enabled} (check REPRO_DISABLE_BURST); resumes "
            "must run under the same burst configuration to stay bit-exact")
    if system.stepper_enabled != build["stepper_enabled"]:
        raise SnapshotError(
            f"stepper mismatch: snapshot taken with stepper_enabled="
            f"{build['stepper_enabled']}, this process resolves it to "
            f"{system.stepper_enabled} (check REPRO_DISABLE_STEPPER); "
            "resumes must run under the same stepper configuration")

    watermarks = payload["watermarks"]
    set_request_id_watermark(watermarks["request"])
    set_instruction_id_watermark(watermarks["instruction"])
    set_operation_id_watermark(watermarks["operation"])

    system.now = payload["now"]
    system._measure_start = payload["measure_start"]
    if payload["run_end"] is not None:
        system._run_end = payload["run_end"]
        system._run_cycles = payload["run_cycles"]
    system.rng.setstate(payload["rng"])

    # ---- DRAM device + timing ---------------------------------------- #
    dram = payload["dram"]
    system.dram.counts = type(system.dram.counts)(**dram["counts"])
    system.dram.channel_issue_version[:] = dram["channel_issue_version"]
    for bank, state in zip(system.dram._banks, dram["banks"]):
        bank.state = BankState(state["state"])
        bank.open_row = state["open_row"]
        bank.row_hits = state["row_hits"]
        bank.row_misses = state["row_misses"]
        bank.row_conflicts = state["row_conflicts"]
        bank.activates = state["activates"]
        bank.precharges = state["precharges"]
        bank.reads = state["reads"]
        bank.writes = state["writes"]
        bank.nda_reads = state["nda_reads"]
        bank.nda_writes = state["nda_writes"]
    timing = system.dram.timing
    timing_state = payload["timing"]
    for rt, state in zip(timing._ranks, timing_state["ranks"]):
        for slot in _RANK_SLOTS:
            value = state[slot]
            if slot == "act_allowed_bg":
                value = list(value)
            elif slot == "faw_window":
                value = deque(value, maxlen=value.maxlen)
            setattr(rt, slot, value)
    for bt, values in zip(timing._banks, timing_state["banks"]):
        # Through the named attributes: on the kernel backend these are
        # write-through views into the horizon arrays.
        for slot, value in zip(_BANK_SLOTS, values):
            setattr(bt, slot, value)
    for ct, state in zip(timing._channels, timing_state["channels"]):
        for slot in _CHANNEL_SLOTS:
            setattr(ct, slot, state[slot])
    timing._channel_refresh_due[:] = timing_state["channel_refresh_due"]
    timing._issue_versions[:] = timing_state["issue_versions"]
    timing._row_versions[:] = timing_state["row_versions"]
    if system.backend == "kernel":
        # Rebuild the kernel's open-row mirror from the restored bank state.
        from repro.platform.packing import NO_OPEN_ROW

        for index, bank in enumerate(system.dram._banks):
            timing.open_row[index] = (bank.open_row
                                      if bank.state is BankState.OPEN
                                      else NO_OPEN_ROW)

    # ---- requests ------------------------------------------------------ #
    registry = {request_id: _restore_request(state, system)
                for request_id, state in payload["requests"].items()}

    # ---- channel controllers ------------------------------------------- #
    for ch, state in payload["channels"].items():
        mc = system.channel_controllers[ch]
        _restore_queue(mc.read_queue, state["read_queue"], registry)
        _restore_queue(mc.write_queue, state["write_queue"], registry)
        mc.counters._counts = dict(state["counters"])
        latency = state["read_latency"]
        mc.read_latency.count = latency["count"]
        mc.read_latency.total = latency["total"]
        mc.read_latency.minimum = latency["minimum"]
        mc.read_latency.maximum = latency["maximum"]
        mc._completions = [_PendingCompletion(cycle, registry[request_id])
                           for cycle, request_id in state["completions"]]
        mc._completions_min = state["completions_min"]
        mc.inflight_completions = state["inflight_completions"]
        mc._draining_writes = state["draining_writes"]
        mc._last_issue_was_write = state["last_issue_was_write"]
        mc.last_issue_cycle = state["last_issue_cycle"]
        mc.last_issue_rank = state["last_issue_rank"]
        mc.last_tick_cycle = state["last_tick_cycle"]
        mc.published_wake = state["published_wake"]
        mc._issue_hint = state["issue_hint"]

    # ---- host unit + cores --------------------------------------------- #
    host = system._host_component
    host_state = payload["host"]
    host._cursors[:] = host_state["cursors"]
    host._completions = [
        (cycle, seq, registry[request_id],
         system.channel_controllers[channel])
        for cycle, seq, request_id, channel in host_state["completions"]]
    host._completion_seq = host_state["completion_seq"]
    host.completion_bound = host_state["completion_bound"]
    host.backlog_requests = host_state["backlog_requests"]
    for backlog, ids in zip(system._core_backlog,
                            host_state["core_backlog"]):
        backlog.extend(registry[request_id] for request_id in ids)

    for core, state in zip(system.cores, payload["cores"]):
        for field in _CORE_FIELDS:
            setattr(core, field, state[field])
        core._outstanding = [_OutstandingMiss(phys, issued_fp, blocking)
                             for phys, issued_fp, blocking
                             in state["outstanding"]]
        core._pending_requests = [tuple(p)
                                  for p in state["pending_requests"]]
        core.rng.setstate(state["rng"])
        traffic_state = state["traffic"]
        traffic = core.traffic
        traffic._current_line = traffic_state["current_line"]
        traffic._recent_lines = deque(
            traffic_state["recent_lines"],
            maxlen=traffic._recent_lines.maxlen)
        traffic.generated_reads = traffic_state["generated_reads"]
        traffic.generated_writes = traffic_state["generated_writes"]
        traffic.rng.setstate(traffic_state["rng"])

    # ---- NDA instruction/operation tables ------------------------------- #
    instructions = {iid: _restore_instruction(state)
                    for iid, state in payload["instructions"].items()}
    operations = {oid: _restore_operation(state)
                  for oid, state in payload["operations"].items()}

    nda = system.nda_host
    nda_state = payload["nda_host"]
    if nda is not None and nda_state is not None:
        nda._operation_queue = deque(operations[oid]
                                     for oid in nda_state["operation_queue"])
        active = nda_state["active_blocking"]
        nda._active_blocking = operations[active] if active is not None else None
        for key, placer_state in nda_state["placers"].items():
            placer = nda._placers[key]
            placer._row_cursor = dict(placer_state["row_cursor"])
            placer._next_bank = placer_state["next_bank"]
        nda._control_column = nda_state["control_column"]
        nda._pending_packets = deque(
            _restore_packet(state, instructions, operations, nda)
            for state in nda_state["pending_packets"])
        for request_id, packet_state in nda_state["inflight"]:
            packet = _restore_packet(packet_state, instructions, operations,
                                     nda)
            nda._inflight[request_id] = packet
            # The in-flight control write delivers this exact packet object
            # on completion (identity: _deliver pops the map by it).
            registry[request_id].on_complete = (
                lambda cycle, p=packet, n=nda: n._deliver(p, cycle))
        nda.operations_launched = nda_state["operations_launched"]
        nda.operations_completed = nda_state["operations_completed"]
        nda.packets_sent = nda_state["packets_sent"]

    # ---- rank controllers ----------------------------------------------- #
    for key, state in payload["rank_controllers"].items():
        rc = system.rank_controllers[key]
        # Direct appends: NdaRankController.enqueue would overwrite
        # launched_cycle and fire the wake listener.
        rc._queue = deque(_restore_work(work, instructions, operations, nda)
                          for work in state["queue"])
        if state["active"] is not None:
            work = _restore_work(state["active"]["work"], instructions,
                                 operations, nda)
            exec_state = _ExecutionState(work,
                                         system.dram.org.columns_per_row)
            for field in _EXEC_FIELDS:
                setattr(exec_state, field, state["active"][field])
            rc._active = exec_state
        wb_state = state["write_buffer"]
        wb = rc.write_buffer
        wb._entries = deque(DramAddress._make(addr)
                            for addr in wb_state["entries"])
        wb._draining = wb_state["draining"]
        wb.total_enqueued = wb_state["total_enqueued"]
        wb.total_drained = wb_state["total_drained"]
        wb.stall_cycles = wb_state["stall_cycles"]
        fsm_state = state["fsm"]
        for field in _FSM_FIELDS:
            setattr(rc.fsm._device, field, fsm_state["device"][field])
            setattr(rc.fsm._host, field, fsm_state["host"][field])
        rc.fsm.events_applied = fsm_state["events_applied"]
        rc.fsm._log = deque(fsm_state["log"],
                            maxlen=rc.fsm._log.maxlen)
        for pe, pe_state in zip(rc.pes, state["pes"]):
            for field in _PE_STAT_FIELDS:
                setattr(pe.stats, field, pe_state["stats"][field])
            current = pe_state["current"]
            pe._current = instructions[current] if current is not None else None
        rc.burst_truncations = dict(state["burst_truncations"])
        for field in _RC_COUNTER_FIELDS:
            setattr(rc, field, state[field])

    # ---- throttle policy ------------------------------------------------- #
    throttle_state = payload["throttle"]
    if throttle_state is not None:
        policy = system.throttle_policy
        if policy.name != throttle_state["name"]:  # pragma: no cover
            raise SnapshotError(
                f"throttle mismatch: snapshot has {throttle_state['name']!r},"
                f" rebuilt system has {policy.name!r}")
        if policy.name == "stochastic_issue":
            policy.attempts = throttle_state["attempts"]
            policy.allowed = throttle_state["allowed"]
            policy.rng.setstate(throttle_state["rng"])
        elif policy.name == "next_rank_prediction":
            policy.inhibits = throttle_state["inhibits"]
            policy.checks = throttle_state["checks"]

    # ---- scheduler / statistics ------------------------------------------ #
    scheduler_state = payload["scheduler"]
    system.scheduler.nda_issue_opportunities = (
        scheduler_state["nda_issue_opportunities"])
    system.scheduler.nda_blocked_cycles = scheduler_state["nda_blocked_cycles"]
    sc_state = payload["stats_component"]
    system._stats_component._cursor = sc_state["cursor"]
    system._stats_component._rank_cursors = dict(sc_state["rank_cursors"])
    stats_state = payload["stats"]
    system.stats.counters._counts = dict(stats_state["counters"])
    system.stats.cycles_observed = stats_state["cycles_observed"]
    for key, tracker_state in stats_state["trackers"].items():
        tracker = system.stats.rank_trackers[key]
        tracker.histogram.weights[:] = tracker_state["weights"]
        tracker.histogram.counts[:] = tracker_state["counts"]
        tracker.busy_cycles = tracker_state["busy_cycles"]
        tracker.idle_cycles = tracker_state["idle_cycles"]
        tracker._idle_run = tracker_state["idle_run"]

    # ---- workload --------------------------------------------------------- #
    workload = payload["workload"]
    spec_state = workload["spec"]
    if spec_state is not None:
        system._nda_workload = _NdaWorkloadSpec(
            opcode=NdaOpcode(spec_state["opcode"]),
            elements_per_rank=spec_state["elements_per_rank"],
            cache_blocks=spec_state["cache_blocks"],
            async_launch=spec_state["async_launch"],
            matrix_columns=spec_state["matrix_columns"],
            continuous=spec_state["continuous"],
            launches=spec_state["launches"],
        )
    sequence_state = workload["sequence"]
    if sequence_state is not None:
        system._nda_sequence = [NdaKernelSpec(
            opcode=NdaOpcode(kernel["opcode"]),
            elements_per_rank=kernel["elements_per_rank"],
            matrix_columns=kernel["matrix_columns"],
            cache_blocks=kernel["cache_blocks"],
            async_launch=kernel["async_launch"],
        ) for kernel in sequence_state]
    system._nda_sequence_index = workload["sequence_index"]
    system._nda_sequence_continuous = workload["sequence_continuous"]

    system.engine.invalidate_wakes()
    return system
