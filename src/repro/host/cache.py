"""Set-associative cache hierarchy (L1/L2/LLC) with MSHRs.

The paper's host has a three-level hierarchy (Table II): 32 KiB 8-way L1,
256 KiB 4-way L2, 8 MiB 16-way shared LLC with 48 MSHRs and a stride
prefetcher.  The hierarchy here is a functional + occupancy model: it tracks
tag state (LRU), classifies hits/misses, produces memory-side traffic
(fills and dirty writebacks) and limits outstanding misses via MSHRs.  It can
be placed in front of the DRAM model for trace-driven studies; the fast
experiment path models post-LLC traffic directly (see DESIGN.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.host.prefetcher import StridePrefetcher


@dataclass
class AccessResult:
    """Outcome of a cache-hierarchy access."""

    hit_level: Optional[str]              # "L1", "L2", "LLC" or None (memory)
    memory_reads: List[int] = field(default_factory=list)
    memory_writebacks: List[int] = field(default_factory=list)
    mshr_blocked: bool = False

    @property
    def is_memory_miss(self) -> bool:
        return self.hit_level is None and not self.mshr_blocked


class Cache:
    """One level of set-associative, write-back, write-allocate cache."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int = 64, mshrs: int = 12) -> None:
        if size_bytes % (assoc * line_bytes) != 0:
            raise ValueError(f"{name}: size must be a multiple of assoc * line size")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        self.mshrs = mshrs
        # Each set is an OrderedDict tag -> dirty flag; order is LRU->MRU.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self._outstanding: set = set()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.mshr_rejects = 0

    # ------------------------------------------------------------------ #

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def lookup(self, addr: int) -> bool:
        """Whether the line is present (does not update LRU)."""
        set_idx, tag = self._index(addr)
        return tag in self._sets[set_idx]

    def access(self, addr: int, is_write: bool) -> bool:
        """Access the cache; returns True on hit.  Updates LRU and dirty bits."""
        set_idx, tag = self._index(addr)
        cache_set = self._sets[set_idx]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Install a line; returns the writeback address of an evicted dirty line."""
        set_idx, tag = self._index(addr)
        cache_set = self._sets[set_idx]
        victim_addr: Optional[int] = None
        if tag not in cache_set and len(cache_set) >= self.assoc:
            victim_tag, victim_dirty = cache_set.popitem(last=False)
            if victim_dirty:
                self.writebacks += 1
                victim_addr = (victim_tag * self.num_sets + set_idx) * self.line_bytes
        cache_set[tag] = dirty or cache_set.get(tag, False)
        cache_set.move_to_end(tag)
        return victim_addr

    def invalidate(self, addr: int) -> bool:
        """Drop a line if present (cache bypassing / fence flush support)."""
        set_idx, tag = self._index(addr)
        return self._sets[set_idx].pop(tag, None) is not None

    # -- MSHR tracking ---------------------------------------------------- #

    def mshr_available(self) -> bool:
        return len(self._outstanding) < self.mshrs

    def allocate_mshr(self, addr: int) -> bool:
        line = addr // self.line_bytes
        if line in self._outstanding:
            return True  # merged with an in-flight miss
        if not self.mshr_available():
            self.mshr_rejects += 1
            return False
        self._outstanding.add(line)
        return True

    def release_mshr(self, addr: int) -> None:
        self._outstanding.discard(addr // self.line_bytes)

    @property
    def outstanding_misses(self) -> int:
        return len(self._outstanding)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """Three-level hierarchy with an LLC stride prefetcher."""

    def __init__(self, l1_kib: int = 32, l1_assoc: int = 8,
                 l2_kib: int = 256, l2_assoc: int = 4,
                 llc_mib: int = 8, llc_assoc: int = 16,
                 line_bytes: int = 64, llc_mshrs: int = 48,
                 prefetch: bool = True) -> None:
        self.l1 = Cache("L1", l1_kib * 1024, l1_assoc, line_bytes, mshrs=12)
        self.l2 = Cache("L2", l2_kib * 1024, l2_assoc, line_bytes, mshrs=12)
        self.llc = Cache("LLC", llc_mib * 1024 * 1024, llc_assoc, line_bytes,
                         mshrs=llc_mshrs)
        self.line_bytes = line_bytes
        self.prefetcher = StridePrefetcher() if prefetch else None
        self.accesses = 0

    def access(self, addr: int, is_write: bool, stream_id: int = 0,
               bypass: bool = False) -> AccessResult:
        """Perform one demand access and report the resulting memory traffic.

        ``bypass`` models the cache-bypassing loads/stores used for
        host↔NDA data exchange (Section IV): the access goes straight to
        memory and any stale copies are invalidated.
        """
        self.accesses += 1
        addr = (addr // self.line_bytes) * self.line_bytes
        if bypass:
            for level in (self.l1, self.l2, self.llc):
                level.invalidate(addr)
            result = AccessResult(hit_level=None)
            if is_write:
                result.memory_writebacks.append(addr)
            else:
                result.memory_reads.append(addr)
            return result

        if self.l1.access(addr, is_write):
            return AccessResult(hit_level="L1")
        if self.l2.access(addr, is_write):
            self._fill(self.l1, addr, is_write)
            return AccessResult(hit_level="L2")
        if self.llc.access(addr, is_write):
            self._fill(self.l2, addr, False)
            self._fill(self.l1, addr, is_write)
            result = AccessResult(hit_level="LLC")
            self._prefetch(addr, stream_id, result)
            return result

        # Memory miss.
        if not self.llc.allocate_mshr(addr):
            return AccessResult(hit_level=None, mshr_blocked=True)
        result = AccessResult(hit_level=None)
        result.memory_reads.append(addr)
        for wb in (self._fill(self.llc, addr, False),
                   self._fill(self.l2, addr, False),
                   self._fill(self.l1, addr, is_write)):
            if wb is not None:
                result.memory_writebacks.append(wb)
        self._prefetch(addr, stream_id, result)
        return result

    def _prefetch(self, addr: int, stream_id: int, result: AccessResult) -> None:
        """Train the LLC stride prefetcher and issue its candidate fetches."""
        if self.prefetcher is None:
            return
        for pf_addr in self.prefetcher.observe(stream_id, addr):
            pf_line = (pf_addr // self.line_bytes) * self.line_bytes
            if not self.llc.lookup(pf_line) and self.llc.mshr_available():
                self.llc.allocate_mshr(pf_line)
                wb = self._fill(self.llc, pf_line, False)
                result.memory_reads.append(pf_line)
                if wb is not None:
                    result.memory_writebacks.append(wb)

    @staticmethod
    def _fill(cache: Cache, addr: int, dirty: bool) -> Optional[int]:
        return cache.fill(addr, dirty)

    def complete_fill(self, addr: int) -> None:
        """Signal that the memory read for ``addr`` returned (frees the MSHR)."""
        self.llc.release_mshr(addr)

    def stats(self) -> Dict[str, float]:
        return {
            "l1_hit_rate": self.l1.hit_rate(),
            "l2_hit_rate": self.l2.hit_rate(),
            "llc_hit_rate": self.llc.hit_rate(),
            "llc_writebacks": self.llc.writebacks,
            "accesses": self.accesses,
        }
