"""Host-processor model: cores, caches, benchmark profiles and mixes.

The paper drives its evaluation with SPEC2006/2017 multi-programmed mixes run
on gem5 out-of-order cores.  This package substitutes a limited-outstanding-
miss (ROB/MLP) core model driven by per-benchmark synthetic memory profiles
calibrated to the same H/M/L memory-intensity classes (Table II); see
DESIGN.md for why the substitution preserves the studied interference
behaviour.  A full set-associative cache hierarchy (L1/L2/LLC with MSHRs and
a stride prefetcher) is also provided and can be placed in front of the
traffic generators for trace-driven studies.
"""

from repro.host.profiles import BenchmarkProfile, SPEC_PROFILES, profile_by_name
from repro.host.traffic import AddressStreamGenerator
from repro.host.core import CoreModel
from repro.host.cache import Cache, CacheHierarchy
from repro.host.prefetcher import StridePrefetcher
from repro.host.mixes import MIXES, mix_profiles, mix_names

__all__ = [
    "BenchmarkProfile",
    "SPEC_PROFILES",
    "profile_by_name",
    "AddressStreamGenerator",
    "CoreModel",
    "Cache",
    "CacheHierarchy",
    "StridePrefetcher",
    "MIXES",
    "mix_profiles",
    "mix_names",
]
