"""The nine multi-programmed application mixes of Table II.

mix0 runs eight benchmarks on eight cores (the under-provisioned-bandwidth
extreme); mix1–mix8 run four benchmarks on four cores, ordered from highest
to lowest aggregate memory intensity.
"""

from __future__ import annotations

from typing import Dict, List

from repro.host.profiles import BenchmarkProfile, profile_by_name

#: Benchmark names per mix, exactly as listed in Table II.
MIXES: Dict[str, List[str]] = {
    "mix0": ["mcf_r", "lbm_r", "omnetpp_r", "gemsFDTD",
             "bwaves_r", "milc", "soplex", "leslie3d"],
    "mix1": ["mcf_r", "lbm_r", "omnetpp_r", "gemsFDTD"],
    "mix2": ["mcf_r", "lbm_r", "gemsFDTD", "soplex"],
    "mix3": ["lbm_r", "omnetpp_r", "gemsFDTD", "soplex"],
    "mix4": ["omnetpp_r", "gemsFDTD", "soplex", "milc"],
    "mix5": ["gemsFDTD", "soplex", "milc", "bwaves_r"],
    "mix6": ["soplex", "milc", "bwaves_r", "leslie3d"],
    "mix7": ["milc", "bwaves_r", "astar", "cactusBSSN_r"],
    "mix8": ["leslie3d", "leela_r", "deepsjeng_r", "xchange2_r"],
}

#: Intensity-class string per mix, as reported in Table II.
MIX_INTENSITY: Dict[str, str] = {
    "mix0": "H:H:H:H + H:M:M:M",
    "mix1": "H:H:H:H",
    "mix2": "H:H:H:H",
    "mix3": "H:H:H:H",
    "mix4": "H:H:H:M",
    "mix5": "H:H:M:M",
    "mix6": "H:M:M:M",
    "mix7": "M:M:M:M",
    "mix8": "M:L:L:L",
}


def mix_names() -> List[str]:
    """All mix identifiers, mix0 through mix8."""
    return list(MIXES.keys())


def mix_profiles(mix: str) -> List[BenchmarkProfile]:
    """The benchmark profiles composing a mix (one per core)."""
    if mix not in MIXES:
        raise KeyError(f"unknown mix {mix!r}; valid mixes: {', '.join(MIXES)}")
    return [profile_by_name(name) for name in MIXES[mix]]


def mix_core_count(mix: str) -> int:
    """Cores used by a mix (8 for mix0, 4 otherwise, per Table II)."""
    return len(MIXES[mix])


def mix_aggregate_mpki(mix: str) -> float:
    """Sum of the constituent benchmarks' MPKI (a mix-intensity proxy)."""
    return sum(p.mpki for p in mix_profiles(mix))
