"""Stride prefetcher (the paper's LLC uses one, Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class _StrideEntry:
    last_addr: int
    stride: int
    confidence: int


class StridePrefetcher:
    """A per-PC (here: per-stream-id) stride prefetcher.

    Tracks the stride between successive accesses of each stream; once the
    same stride repeats ``threshold`` times, it emits prefetch candidates
    ``degree`` strides ahead.
    """

    def __init__(self, table_entries: int = 64, threshold: int = 2,
                 degree: int = 2) -> None:
        if table_entries <= 0 or threshold <= 0 or degree <= 0:
            raise ValueError("prefetcher parameters must be positive")
        self.table_entries = table_entries
        self.threshold = threshold
        self.degree = degree
        self._table: Dict[int, _StrideEntry] = {}
        self.issued_prefetches = 0
        self.trained_streams = 0

    def observe(self, stream_id: int, addr: int) -> List[int]:
        """Record an access and return prefetch candidate addresses."""
        entry = self._table.get(stream_id)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[stream_id] = _StrideEntry(addr, 0, 0)
            return []
        stride = addr - entry.last_addr
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.threshold + 2)
        else:
            if entry.confidence > 0:
                entry.confidence -= 1
            entry.stride = stride
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride != 0:
            if entry.confidence == self.threshold:
                self.trained_streams += 1
            prefetches = [addr + entry.stride * (i + 1) for i in range(self.degree)]
            self.issued_prefetches += len(prefetches)
            return [p for p in prefetches if p >= 0]
        return []

    def reset(self) -> None:
        self._table.clear()
