"""Synthetic memory-behaviour profiles for the SPEC benchmarks of Table II.

Each profile characterizes a benchmark's post-LLC memory traffic: how many
misses per kilo-instruction it produces, the read/write split, how much
spatial locality the miss stream has, how large its footprint is, and how
much memory-level parallelism the core can extract.  The MPKI values follow
the intensity classes reported in Table II (H/M/L); the remaining parameters
are representative values for each benchmark's well-known behaviour
(pointer-chasing mcf vs. streaming lbm/bwaves, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BenchmarkProfile:
    """Post-LLC memory traffic profile of one benchmark."""

    name: str
    #: LLC misses per kilo-instruction (memory intensity class of Table II).
    mpki: float
    #: Memory-intensity class label: "H", "M" or "L".
    intensity: str
    #: Fraction of memory traffic that is a demand read (vs. writeback).
    read_fraction: float
    #: Probability that a miss continues a sequential (next-line) run.
    sequential_fraction: float
    #: Resident footprint in bytes that misses are spread over.
    footprint_bytes: int
    #: Cycles per instruction assuming a perfect (zero-latency) memory system.
    base_cpi: float
    #: Maximum outstanding LLC misses the core sustains (MSHR/MLP limit).
    mlp: int

    def misses_per_instruction(self) -> float:
        return self.mpki / 1000.0

    def instructions_per_miss(self) -> float:
        if self.mpki <= 0:
            return float("inf")
        return 1000.0 / self.mpki


_MIB = 1 << 20

#: Profiles for every benchmark named in Table II's mixes.
SPEC_PROFILES: Dict[str, BenchmarkProfile] = {
    # High memory intensity
    "mcf_r": BenchmarkProfile("mcf_r", 32.0, "H", 0.78, 0.15, 512 * _MIB, 0.9, 10),
    "lbm_r": BenchmarkProfile("lbm_r", 28.0, "H", 0.62, 0.80, 384 * _MIB, 0.7, 12),
    "omnetpp_r": BenchmarkProfile("omnetpp_r", 23.0, "H", 0.80, 0.25, 160 * _MIB, 0.8, 8),
    "gemsFDTD": BenchmarkProfile("gemsFDTD", 24.0, "H", 0.70, 0.70, 512 * _MIB, 0.7, 12),
    "soplex": BenchmarkProfile("soplex", 22.0, "H", 0.75, 0.45, 256 * _MIB, 0.8, 10),
    # Medium memory intensity
    "milc": BenchmarkProfile("milc", 10.0, "M", 0.72, 0.60, 384 * _MIB, 0.6, 8),
    "bwaves_r": BenchmarkProfile("bwaves_r", 9.0, "M", 0.68, 0.85, 512 * _MIB, 0.6, 10),
    "leslie3d": BenchmarkProfile("leslie3d", 11.0, "M", 0.70, 0.75, 256 * _MIB, 0.6, 10),
    "astar": BenchmarkProfile("astar", 6.0, "M", 0.82, 0.30, 128 * _MIB, 0.7, 6),
    "cactusBSSN_r": BenchmarkProfile("cactusBSSN_r", 7.0, "M", 0.70, 0.70, 384 * _MIB, 0.7, 8),
    # Low memory intensity
    "leela_r": BenchmarkProfile("leela_r", 1.0, "L", 0.85, 0.40, 32 * _MIB, 0.6, 4),
    "deepsjeng_r": BenchmarkProfile("deepsjeng_r", 1.2, "L", 0.85, 0.35, 64 * _MIB, 0.6, 4),
    "xchange2_r": BenchmarkProfile("xchange2_r", 0.6, "L", 0.85, 0.40, 32 * _MIB, 0.6, 4),
}


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a profile, accepting SPEC suffix variations (``_r``)."""
    if name in SPEC_PROFILES:
        return SPEC_PROFILES[name]
    for candidate in (name + "_r", name.rstrip("_r"), name.replace("_r", "")):
        if candidate in SPEC_PROFILES:
            return SPEC_PROFILES[candidate]
    raise KeyError(f"unknown benchmark profile {name!r}")


def make_synthetic_profile(name: str, mpki: float, read_fraction: float = 0.7,
                           sequential_fraction: float = 0.5,
                           footprint_bytes: int = 256 * _MIB,
                           base_cpi: float = 0.7, mlp: int = 10) -> BenchmarkProfile:
    """Create a custom profile (used by microbenchmarks and tests)."""
    if mpki < 0:
        raise ValueError("mpki must be non-negative")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    intensity = "H" if mpki >= 15 else ("M" if mpki >= 3 else "L")
    return BenchmarkProfile(name, mpki, intensity, read_fraction,
                            sequential_fraction, footprint_bytes, base_cpi, mlp)
