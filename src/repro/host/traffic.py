"""Synthetic post-LLC address stream generation.

Each core's miss stream is produced by an :class:`AddressStreamGenerator`
parameterized by its benchmark profile: misses either continue a sequential
(next cache line) run — giving row-buffer and channel-interleaving locality —
or jump to a random cache line inside the benchmark's footprint.  Writebacks
target lines touched recently, as an LLC eviction stream would.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.host.profiles import BenchmarkProfile
from repro.utils.rng import DeterministicRng


class AddressStreamGenerator:
    """Generates physical cache-line addresses for one benchmark instance.

    Parameters
    ----------
    profile:
        The benchmark's memory-behaviour profile.
    region_base, region_bytes:
        The contiguous physical region the benchmark's data occupies.  The
        footprint used is ``min(profile.footprint_bytes, region_bytes)``.
    rng:
        Deterministic random stream.
    """

    def __init__(self, profile: BenchmarkProfile, region_base: int,
                 region_bytes: int, rng: DeterministicRng,
                 cacheline_bytes: int = 64) -> None:
        if region_bytes < cacheline_bytes:
            raise ValueError("region too small for a single cache line")
        self.profile = profile
        self.region_base = region_base
        self.cacheline_bytes = cacheline_bytes
        self.footprint_bytes = min(profile.footprint_bytes, region_bytes)
        self.footprint_lines = max(1, self.footprint_bytes // cacheline_bytes)
        self.rng = rng
        self._current_line = rng.randrange(self.footprint_lines)
        self._recent_lines: Deque[int] = deque(maxlen=64)
        self.generated_reads = 0
        self.generated_writes = 0

    # ------------------------------------------------------------------ #

    def _line_to_phys(self, line: int) -> int:
        return self.region_base + (line % self.footprint_lines) * self.cacheline_bytes

    def next_read_address(self) -> int:
        """Physical address of the next demand miss."""
        if self.rng.coin(self.profile.sequential_fraction):
            self._current_line = (self._current_line + 1) % self.footprint_lines
        else:
            self._current_line = self.rng.randrange(self.footprint_lines)
        self._recent_lines.append(self._current_line)
        self.generated_reads += 1
        return self._line_to_phys(self._current_line)

    def next_writeback_address(self) -> int:
        """Physical address of a writeback (an LLC dirty eviction)."""
        self.generated_writes += 1
        if self._recent_lines and self.rng.coin(0.8):
            line = self.rng.choice(list(self._recent_lines))
        else:
            line = self.rng.randrange(self.footprint_lines)
        return self._line_to_phys(line)

    def next_access(self) -> Tuple[int, bool]:
        """(physical address, is_write) of the next memory transaction."""
        if self.rng.coin(1.0 - self.profile.read_fraction):
            return self.next_writeback_address(), True
        return self.next_read_address(), False

    # ------------------------------------------------------------------ #

    @property
    def total_generated(self) -> int:
        return self.generated_reads + self.generated_writes
