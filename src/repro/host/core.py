"""Limited-outstanding-miss out-of-order core model.

The model captures the two first-order ways an OoO core interacts with main
memory:

* **Memory-level parallelism** — up to ``profile.mlp`` misses may be in
  flight; the core keeps retiring instructions underneath them.
* **ROB-limited tolerance** — once the oldest outstanding miss is more than
  ``rob_entries`` instructions old, the reorder buffer has filled and
  retirement stalls until that miss returns.

Instruction throughput when not memory-bound is ``fetch_width``-limited and
scaled by the profile's ``base_cpi``.  The miss stream itself comes from an
:class:`~repro.host.traffic.AddressStreamGenerator`.  IPC (the paper's host
metric) is ``instructions_retired / cpu_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import HostConfig
from repro.host.profiles import BenchmarkProfile
from repro.host.traffic import AddressStreamGenerator
from repro.utils.rng import DeterministicRng


@dataclass
class _OutstandingMiss:
    phys: int
    issued_at_instruction: float
    is_blocking: bool = False


class CoreModel:
    """One host core running one benchmark profile."""

    def __init__(self, core_id: int, profile: BenchmarkProfile,
                 traffic: AddressStreamGenerator, host_config: HostConfig,
                 rng: DeterministicRng) -> None:
        self.core_id = core_id
        self.profile = profile
        self.traffic = traffic
        self.host_config = host_config
        self.rng = rng

        self.instructions_retired = 0.0
        self.cpu_cycles = 0.0
        self.stall_cycles = 0.0
        self._cycle_budget = 0.0
        self._instructions_to_next_miss = self._draw_miss_gap()
        self._outstanding: List[_OutstandingMiss] = []
        self._pending_requests: List[Tuple[int, bool]] = []
        self.reads_issued = 0
        self.writes_issued = 0
        self.misses_completed = 0

    # ------------------------------------------------------------------ #
    # Miss-stream plumbing
    # ------------------------------------------------------------------ #

    def _draw_miss_gap(self) -> float:
        """Instructions until the next LLC miss (exponential around 1000/MPKI)."""
        mean = self.profile.instructions_per_miss()
        if mean == float("inf"):
            return float("inf")
        return max(1.0, self.rng.expovariate(1.0 / mean))

    def _issue_miss(self) -> None:
        phys, is_write = self.traffic.next_access()
        self._pending_requests.append((phys, is_write))
        if is_write:
            self.writes_issued += 1
            # Posted writebacks do not occupy the core's miss window.
        else:
            self.reads_issued += 1
            self._outstanding.append(
                _OutstandingMiss(phys, self.instructions_retired)
            )
        self._instructions_to_next_miss = self._draw_miss_gap()

    def notify_completion(self, phys: int) -> None:
        """Called by the system when a demand read for this core returns."""
        for i, miss in enumerate(self._outstanding):
            if miss.phys == phys:
                del self._outstanding[i]
                self.misses_completed += 1
                return
        # Completion for a request we no longer track (e.g. after reset).

    # ------------------------------------------------------------------ #
    # Stall conditions
    # ------------------------------------------------------------------ #

    def _rob_blocked(self) -> bool:
        if not self._outstanding:
            return False
        oldest = self._outstanding[0]
        age = self.instructions_retired - oldest.issued_at_instruction
        return age >= self.host_config.rob_entries

    def _mlp_blocked(self) -> bool:
        return len(self._outstanding) >= self.profile.mlp

    @property
    def stalled(self) -> bool:
        return self._rob_blocked()

    # ------------------------------------------------------------------ #
    # Cycle advance
    # ------------------------------------------------------------------ #

    def tick(self, cpu_cycles: float) -> List[Tuple[int, bool]]:
        """Advance the core by ``cpu_cycles`` CPU cycles.

        Returns the (physical address, is_write) memory transactions the core
        generated during this interval; the caller is responsible for sending
        them to the memory controllers (and may apply back-pressure by simply
        re-presenting the core's requests next cycle — see the system model).
        """
        self.cpu_cycles += cpu_cycles
        self._cycle_budget += cpu_cycles
        max_ipc = min(float(self.host_config.fetch_width),
                      1.0 / max(self.profile.base_cpi, 1e-6))

        while self._cycle_budget >= 1.0:
            self._cycle_budget -= 1.0
            if self._rob_blocked():
                self.stall_cycles += 1.0
                continue
            retire = max_ipc
            if self._mlp_blocked():
                # The core can still retire underneath outstanding misses but
                # cannot expose new ones; model the issue-bandwidth loss.
                retire *= 0.5
            # Stop retirement at the next miss point.
            if (self._instructions_to_next_miss <= retire
                    and not self._mlp_blocked()):
                self.instructions_retired += self._instructions_to_next_miss
                self._issue_miss()
            else:
                self.instructions_retired += retire
                if self._instructions_to_next_miss != float("inf"):
                    self._instructions_to_next_miss -= retire

        issued = self._pending_requests
        self._pending_requests = []
        return issued

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    @property
    def ipc(self) -> float:
        if self.cpu_cycles <= 0:
            return 0.0
        return self.instructions_retired / self.cpu_cycles

    @property
    def outstanding_misses(self) -> int:
        return len(self._outstanding)

    def stats(self) -> Dict[str, float]:
        return {
            "ipc": self.ipc,
            "instructions": self.instructions_retired,
            "cpu_cycles": self.cpu_cycles,
            "stall_cycles": self.stall_cycles,
            "reads": self.reads_issued,
            "writes": self.writes_issued,
            "outstanding": float(len(self._outstanding)),
        }
