"""Limited-outstanding-miss out-of-order core model.

The model captures the two first-order ways an OoO core interacts with main
memory:

* **Memory-level parallelism** — up to ``profile.mlp`` misses may be in
  flight; the core keeps retiring instructions underneath them.
* **ROB-limited tolerance** — once the oldest outstanding miss is more than
  ``rob_entries`` instructions old, the reorder buffer has filled and
  retirement stalls until that miss returns.

Instruction throughput when not memory-bound is ``fetch_width``-limited and
scaled by the profile's ``base_cpi``.  The miss stream itself comes from an
:class:`~repro.host.traffic.AddressStreamGenerator`.  IPC (the paper's host
metric) is ``instructions_retired / cpu_cycles``.

All internal accounting uses fixed-point integers (``_FP_ONE`` units per
instruction / CPU cycle) so that advancing the core by ``n`` DRAM cycles in
one batched call is **bit-identical** to ``n`` single-cycle calls.  This is
the contract the event-driven simulation engine relies on when it
fast-forwards over idle regions: cores are caught up lazily in closed form
without any floating-point drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import HostConfig
from repro.host.profiles import BenchmarkProfile
from repro.host.traffic import AddressStreamGenerator
from repro.utils.rng import DeterministicRng

#: Fixed-point scale for instruction and CPU-cycle accounting.
_FP_ONE = 1 << 32


@dataclass
class _OutstandingMiss:
    phys: int
    issued_at_instruction_fp: int
    is_blocking: bool = False


class CoreModel:
    """One host core running one benchmark profile."""

    def __init__(self, core_id: int, profile: BenchmarkProfile,
                 traffic: AddressStreamGenerator, host_config: HostConfig,
                 rng: DeterministicRng) -> None:
        self.core_id = core_id
        self.profile = profile
        self.traffic = traffic
        self.host_config = host_config
        self.rng = rng

        self._retired_fp = 0
        self._cpu_cycles_fp = 0
        self._stall_cycles = 0
        self._budget_fp = 0
        self._cpd_fp = int(round(host_config.cycles_per_dram_cycle * _FP_ONE))
        self._rob_limit_fp = host_config.rob_entries * _FP_ONE
        max_ipc = min(float(host_config.fetch_width),
                      1.0 / max(profile.base_cpi, 1e-6))
        self._max_ipc_fp = max(1, int(round(max_ipc * _FP_ONE)))
        self._gap_fp: Optional[int] = self._draw_miss_gap_fp()
        self._outstanding: List[_OutstandingMiss] = []
        self._pending_requests: List[Tuple[int, bool]] = []
        #: Bumped whenever the core's event-relevant state changes (miss
        #: issued, completion delivered, measurement reset).  Between bumps
        #: the core evolves deterministically, so a cached absolute
        #: next-request cycle stays valid.  (Completion deliveries reach the
        #: engine through the host unit's completion calendar, not through a
        #: per-core listener — see HostComponent.)
        self.event_count = 0
        self.reads_issued = 0
        self.writes_issued = 0
        self.misses_completed = 0

    # ------------------------------------------------------------------ #
    # Miss-stream plumbing
    # ------------------------------------------------------------------ #

    def _draw_miss_gap_fp(self) -> Optional[int]:
        """Instructions until the next LLC miss (exponential around 1000/MPKI)."""
        mean = self.profile.instructions_per_miss()
        if mean == float("inf"):
            return None
        gap = self.rng.expovariate(1.0 / mean)
        return max(_FP_ONE, int(round(gap * _FP_ONE)))

    def _issue_miss(self) -> None:
        self.event_count += 1
        phys, is_write = self.traffic.next_access()
        self._pending_requests.append((phys, is_write))
        if is_write:
            self.writes_issued += 1
            # Posted writebacks do not occupy the core's miss window.
        else:
            self.reads_issued += 1
            self._outstanding.append(
                _OutstandingMiss(phys, self._retired_fp)
            )
        self._gap_fp = self._draw_miss_gap_fp()

    def notify_completion(self, phys: int) -> None:
        """Called by the system when a demand read for this core returns."""
        for i, miss in enumerate(self._outstanding):
            if miss.phys == phys:
                del self._outstanding[i]
                self.misses_completed += 1
                self.event_count += 1
                return
        # Completion for a request we no longer track (e.g. after reset).

    # ------------------------------------------------------------------ #
    # Stall conditions
    # ------------------------------------------------------------------ #

    def _rob_blocked(self) -> bool:
        if not self._outstanding:
            return False
        oldest = self._outstanding[0]
        age = self._retired_fp - oldest.issued_at_instruction_fp
        return age >= self._rob_limit_fp

    def _mlp_blocked(self) -> bool:
        return len(self._outstanding) >= self.profile.mlp

    @property
    def stalled(self) -> bool:
        return self._rob_blocked()

    # ------------------------------------------------------------------ #
    # Cycle advance
    # ------------------------------------------------------------------ #

    def tick(self, cpu_cycles: float) -> List[Tuple[int, bool]]:
        """Advance the core by ``cpu_cycles`` CPU cycles.

        Returns the (physical address, is_write) memory transactions the core
        generated during this interval; the caller is responsible for sending
        them to the memory controllers (and may apply back-pressure by simply
        re-presenting the core's requests next cycle — see the system model).
        """
        return self._advance_fp(int(round(cpu_cycles * _FP_ONE)))

    def tick_dram(self, dram_cycles: int) -> List[Tuple[int, bool]]:
        """Advance the core by ``dram_cycles`` DRAM command-clock cycles.

        ``tick_dram(a); tick_dram(b)`` is bit-identical to ``tick_dram(a+b)``
        as long as no completion is delivered in between; the simulation
        engines rely on this to batch idle stretches.
        """
        return self._advance_fp(dram_cycles * self._cpd_fp)

    def _advance_fp(self, increment_fp: int) -> List[Tuple[int, bool]]:
        self._cpu_cycles_fp += increment_fp
        self._budget_fp += increment_fp
        self._consume()
        issued = self._pending_requests
        self._pending_requests = []
        return issued

    def _consume(self) -> None:
        """Process whole CPU cycles from the budget.

        Equivalent to a cycle-by-cycle loop; runs of identical cycles
        (plain retirement, stall) are advanced in closed form with integer
        arithmetic, which keeps the batched result exact.
        """
        budget = self._budget_fp
        while budget >= _FP_ONE:
            if self._rob_blocked():
                # The oldest miss can only return between ticks, so every
                # remaining whole cycle in this batch stalls.
                whole = budget // _FP_ONE
                self._stall_cycles += whole
                budget -= whole * _FP_ONE
                break
            retire = self._max_ipc_fp
            mlp = self._mlp_blocked()
            if mlp:
                # The core can still retire underneath outstanding misses but
                # cannot expose new ones; model the issue-bandwidth loss.
                retire //= 2
            gap = self._gap_fp
            if gap is not None and gap <= retire and not mlp:
                # Stop retirement at the miss point and expose the miss.
                budget -= _FP_ONE
                self._retired_fp += gap
                self._issue_miss()
                continue
            # Plain retirement: jump over the cycles before the next
            # boundary (budget exhaustion, ROB fill, or miss point).
            n = budget // _FP_ONE
            if self._outstanding:
                age = self._retired_fp - self._outstanding[0].issued_at_instruction_fp
                to_block = -(-(self._rob_limit_fp - age) // retire)
                if to_block < n:
                    n = to_block
            if gap is not None and not mlp:
                to_miss = -(-gap // retire) - 1
                if to_miss < n:
                    n = to_miss
            if n <= 0:
                n = 1
            budget -= n * _FP_ONE
            self._retired_fp += n * retire
            if gap is not None:
                self._gap_fp = gap - n * retire
        self._budget_fp = budget

    def next_request_dram_cycles(self) -> Optional[int]:
        """DRAM cycles until ``tick_dram`` would generate a memory request.

        Returns ``None`` when no request can appear without an external
        completion first (ROB/MLP blocked, or a miss-free profile).  The
        value ``d`` means: the request is generated during the ``d``-th
        DRAM-cycle tick from now, so ticking strictly fewer than ``d`` cycles
        is guaranteed request-free.  Used by the event engine to bound
        fast-forwarding.
        """
        gap = self._gap_fp
        if gap is None or self._rob_blocked() or self._mlp_blocked():
            return None
        retire = self._max_ipc_fp
        to_miss = max(1, -(-gap // retire))
        if self._outstanding:
            age = self._retired_fp - self._outstanding[0].issued_at_instruction_fp
            to_block = -(-(self._rob_limit_fp - age) // retire)
            if to_miss > to_block:
                return None  # the ROB fills before the miss point is reached
        need_fp = to_miss * _FP_ONE - self._budget_fp
        return max(1, -(-need_fp // self._cpd_fp))

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #

    @property
    def instructions_retired(self) -> float:
        return self._retired_fp / _FP_ONE

    @property
    def cpu_cycles(self) -> float:
        return self._cpu_cycles_fp / _FP_ONE

    @property
    def stall_cycles(self) -> float:
        return float(self._stall_cycles)

    def reset_measurement(self) -> None:
        """Zero the measurement counters at the warmup boundary."""
        self.event_count += 1
        self._retired_fp = 0
        self._cpu_cycles_fp = 0
        self._stall_cycles = 0
        # Re-anchor outstanding-miss ages so ROB accounting stays consistent
        # with the zeroed retirement counter.
        for miss in self._outstanding:
            miss.issued_at_instruction_fp = 0

    @property
    def ipc(self) -> float:
        if self._cpu_cycles_fp <= 0:
            return 0.0
        return self._retired_fp / self._cpu_cycles_fp

    @property
    def outstanding_misses(self) -> int:
        return len(self._outstanding)

    def stats(self) -> Dict[str, float]:
        return {
            "ipc": self.ipc,
            "instructions": self.instructions_retired,
            "cpu_cycles": self.cpu_cycles,
            "stall_cycles": self.stall_cycles,
            "reads": self.reads_issued,
            "writes": self.writes_issued,
            "outstanding": float(len(self._outstanding)),
        }
