"""Host-side NDA controller: launching and tracking NDA operations.

NDA operations are launched as in Farmahini et al.: a memory region is
reserved for NDA control registers and each launch is a packet (one host
write transaction) carrying the operation type, operand base addresses,
vector length and scalars (Section V).  The host-side NDA controller

* splits an API-level operation into per-rank instructions at the configured
  coarse-grain granularity (cache blocks per instruction),
* issues launch packets to the ranks round-robin, consuming host channel
  bandwidth — the contention that Figure 10 quantifies,
* tracks completion and supports blocking and asynchronous (macro-operation)
  launches, and
* maintains the replicated FSMs through its rank controllers.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.config import NdaConfig
from repro.dram.commands import DramAddress
from repro.dram.device import DramSystem
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import MemoryRequest
from repro.nda.controller import NdaRankController, RankWorkItem
from repro.nda.isa import NdaInstruction, NdaOpcode, OPCODE_TRAITS

_operation_ids = itertools.count()


def get_operation_id_watermark() -> int:
    """Next operation id the global counter would hand out (checkpointing)."""
    global _operation_ids
    value = next(_operation_ids)
    _operation_ids = itertools.count(value)
    return value


def set_operation_id_watermark(value: int) -> None:
    """Restore the global operation-id counter (checkpoint restore)."""
    global _operation_ids
    _operation_ids = itertools.count(value)


@dataclass
class NdaPacket:
    """A launch packet written to a rank's NDA control registers."""

    channel: int
    rank: int
    work: RankWorkItem
    control_address: DramAddress
    enqueued: bool = False


@dataclass
class NdaOperation:
    """An API-level NDA operation spanning all ranks.

    ``total_elements`` counts elements across the whole system; the host
    controller splits the work evenly over ranks.  ``cache_blocks`` is the
    per-instruction granularity (Figure 10); ``async_launch`` marks macro
    operations that do not block subsequent launches (Section V,
    "Optimization for Load-Imbalance").
    """

    opcode: NdaOpcode
    total_elements: int
    cache_blocks: Optional[int] = None
    element_bytes: int = 4
    scalars: Tuple[float, ...] = ()
    matrix_columns: int = 0
    async_launch: bool = False
    on_complete: Optional[Callable[[int], None]] = None
    operation_id: int = field(default_factory=lambda: next(_operation_ids))

    launched_cycle: Optional[int] = None
    completed_cycle: Optional[int] = None
    outstanding_instructions: int = 0


class _OperandPlacer:
    """Assigns banks and base rows for synthetic NDA operand placement.

    Operands of one operation rotate over the allowed banks of the rank and
    occupy consecutive rows starting at a per-bank cursor, mirroring the
    sequential shared-region allocation performed by the runtime.
    """

    def __init__(self, allowed_banks: List[int], rows_per_bank: int) -> None:
        self.allowed_banks = allowed_banks
        self.rows_per_bank = rows_per_bank
        self._row_cursor: Dict[int, int] = {b: 0 for b in allowed_banks}
        self._next_bank = 0

    def place(self, rows_needed: int) -> Tuple[int, int]:
        """(flat bank, base row) for an operand needing ``rows_needed`` rows."""
        bank = self.allowed_banks[self._next_bank % len(self.allowed_banks)]
        self._next_bank += 1
        base = self._row_cursor[bank]
        self._row_cursor[bank] = (base + max(1, rows_needed)) % self.rows_per_bank
        return bank, base


class NdaHostController:
    """Accepts NDA operations, launches them to ranks and tracks completion."""

    def __init__(self, dram: DramSystem,
                 channel_controllers: Dict[int, ChannelController],
                 rank_controllers: Dict[Tuple[int, int], NdaRankController],
                 config: Optional[NdaConfig] = None,
                 launch_packets_use_channel: bool = True) -> None:
        self.dram = dram
        self.channel_controllers = channel_controllers
        self.rank_controllers = rank_controllers
        self.config = config or NdaConfig()
        self.launch_packets_use_channel = launch_packets_use_channel
        self._operation_queue: Deque[NdaOperation] = deque()
        self._pending_packets: Deque[NdaPacket] = deque()
        self._active_blocking: Optional[NdaOperation] = None
        self._placers: Dict[Tuple[int, int], _OperandPlacer] = {
            key: _OperandPlacer(rc.allowed_banks, dram.org.rows_per_bank)
            for key, rc in rank_controllers.items()
        }
        self._control_column = 0
        #: Launch-packet writes currently in flight in a channel write queue,
        #: keyed by the carrying request's id.  Maintained so checkpointing
        #: can serialize the packet an in-flight control write delivers (the
        #: request's ``on_complete`` closure is rebuilt from this at restore).
        self._inflight: Dict[int, NdaPacket] = {}
        self.operations_launched = 0
        self.operations_completed = 0
        self.packets_sent = 0
        #: Selective-wake notification: invoked when a new operation is
        #: submitted, so the engine re-polls this controller's unit instead
        #: of polling it every cycle.
        self.wake_listener: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(self, operation: NdaOperation) -> NdaOperation:
        """Queue an operation for launch."""
        self._operation_queue.append(operation)
        listener = self.wake_listener
        if listener is not None:
            listener()
        return operation

    def submit_kernel(self, opcode: NdaOpcode, total_elements: int,
                      cache_blocks: Optional[int] = None,
                      async_launch: bool = False,
                      matrix_columns: int = 0,
                      on_complete: Optional[Callable[[int], None]] = None,
                      ) -> NdaOperation:
        """Convenience wrapper used by experiments and the runtime."""
        op = NdaOperation(
            opcode=opcode,
            total_elements=total_elements,
            cache_blocks=cache_blocks or self.config.default_cache_blocks_per_instruction,
            async_launch=async_launch,
            matrix_columns=matrix_columns,
            on_complete=on_complete,
        )
        return self.submit(op)

    @property
    def idle(self) -> bool:
        return (not self._operation_queue and not self._pending_packets
                and self._active_blocking is None
                and all(not rc.busy for rc in self.rank_controllers.values()))

    @property
    def outstanding_operations(self) -> int:
        count = len(self._operation_queue) + len(self._pending_packets)
        if self._active_blocking is not None:
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # Cycle advance
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        """Advance launch processing by one DRAM cycle."""
        self._drain_packets(now)
        self._maybe_launch_next(now)

    def _maybe_launch_next(self, now: int) -> None:
        if self._active_blocking is not None:
            return
        if not self._operation_queue:
            return
        operation = self._operation_queue.popleft()
        self._launch(operation, now)
        if not operation.async_launch:
            self._active_blocking = operation

    def _launch(self, operation: NdaOperation, now: int) -> None:
        operation.launched_cycle = now
        total_ranks = list(self.rank_controllers.keys())
        if not total_ranks:
            raise RuntimeError("no NDA rank controllers configured")
        per_rank = max(1, operation.total_elements // len(total_ranks))
        granularity = operation.cache_blocks or self.config.default_cache_blocks_per_instruction
        for key in total_ranks:
            rank_instruction = NdaInstruction(
                opcode=operation.opcode,
                num_elements=per_rank,
                element_bytes=operation.element_bytes,
                cache_blocks=granularity,
                scalars=operation.scalars,
                matrix_columns=operation.matrix_columns,
            )
            pieces = rank_instruction.split(granularity)
            operation.outstanding_instructions += len(pieces)
            for piece in pieces:
                work = self._bind(key, piece, operation)
                packet = NdaPacket(
                    channel=key[0], rank=key[1], work=work,
                    control_address=self._control_register_address(key),
                )
                self._pending_packets.append(packet)
        self.operations_launched += 1
        self._drain_packets(now)

    def _bind(self, key: Tuple[int, int], instruction: NdaInstruction,
              operation: NdaOperation) -> RankWorkItem:
        placer = self._placers[key]
        columns_per_row = self.dram.org.columns_per_row
        rows_per_operand = max(1, (instruction.total_cache_blocks
                                   + columns_per_row - 1) // columns_per_row)
        traits = OPCODE_TRAITS[instruction.opcode]
        operand_banks: List[int] = []
        operand_rows: List[int] = []
        num_inputs = 2 if instruction.opcode is NdaOpcode.GEMV else max(1, traits.input_vectors)
        for _ in range(num_inputs):
            bank, row = placer.place(rows_per_operand)
            operand_banks.append(bank)
            operand_rows.append(row)
        output_bank: Optional[int] = None
        output_row: Optional[int] = None
        if traits.output_vectors:
            output_bank, output_row = placer.place(rows_per_operand)

        return RankWorkItem(
            instruction=instruction,
            operand_banks=operand_banks,
            operand_base_rows=operand_rows,
            output_bank=output_bank,
            output_base_row=output_row,
            on_complete=self._piece_completion_callback(operation),
            operation_id=operation.operation_id,
        )

    def _piece_completion_callback(self, operation: NdaOperation):
        """The per-piece completion hook bound to ``operation``.

        A named constructor (rather than an inline closure in ``_bind``) so
        checkpoint restore can rebuild the hook for a deserialized work item
        from its ``operation_id`` alone.
        """

        def _on_piece_complete(cycle: int, op=operation) -> None:
            op.outstanding_instructions -= 1
            if op.outstanding_instructions <= 0 and op.completed_cycle is None:
                op.completed_cycle = cycle
                self.operations_completed += 1
                if self._active_blocking is op:
                    self._active_blocking = None
                if op.on_complete is not None:
                    op.on_complete(cycle)

        return _on_piece_complete

    def _control_register_address(self, key: Tuple[int, int]) -> DramAddress:
        """Address of the rank's NDA control registers (a reserved row)."""
        channel, rank = key
        rc = self.rank_controllers[key]
        bank = rc.allowed_banks[0]
        self._control_column = (self._control_column + 1) % self.dram.org.columns_per_row
        return DramAddress(
            channel=channel,
            rank=rank,
            bank_group=bank // self.dram.org.banks_per_group,
            bank=bank % self.dram.org.banks_per_group,
            row=self.dram.org.rows_per_bank - 1,
            column=self._control_column,
        )

    def _drain_packets(self, now: int) -> None:
        """Send pending launch packets as host write transactions."""
        remaining: Deque[NdaPacket] = deque()
        while self._pending_packets:
            packet = self._pending_packets.popleft()
            if not self.launch_packets_use_channel:
                self._deliver(packet, now)
                continue
            controller = self.channel_controllers[packet.channel]
            request = MemoryRequest(
                addr=packet.control_address,
                is_write=True,
                core_id=-2,  # NDA control traffic
                on_complete=lambda cycle, p=packet: self._deliver(p, cycle),
            )
            if controller.enqueue(request, now):
                self.packets_sent += 1
                self._inflight[request.request_id] = packet
            else:
                remaining.append(packet)
                break  # preserve order; retry next cycle
        while remaining:
            self._pending_packets.appendleft(remaining.pop())

    def _deliver(self, packet: NdaPacket, cycle: int) -> None:
        """The packet write completed: hand the work to the rank controller."""
        for request_id, inflight in self._inflight.items():
            if inflight is packet:
                del self._inflight[request_id]
                break
        self.rank_controllers[(packet.channel, packet.rank)].enqueue(packet.work, cycle)

    # ------------------------------------------------------------------ #
    # Event-engine interface
    # ------------------------------------------------------------------ #

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``tick`` could do anything.

        Launches are self-paced (next cycle once an operation is queued and
        nothing blocks).  Stuck launch packets only unblock when a channel
        write queue frees an entry — the issuing channel unit dirties this
        controller's unit, so a full queue contributes no wake-up here.
        Operation completions (which clear ``_active_blocking`` and can make
        the controller idle for a relaunch) arrive as dirty notifications
        from the rank units.
        """
        if self._operation_queue and self._active_blocking is None:
            return now
        if self._pending_packets:
            packet = self._pending_packets[0]
            controller = self.channel_controllers[packet.channel]
            if not controller.write_queue.full:
                return now
        return 1 << 62

    def reset_measurement(self) -> None:
        """Zero measurement counters at the warmup boundary."""
        self.operations_launched = 0
        self.operations_completed = 0
        self.packets_sent = 0

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, float]:
        return {
            "operations_launched": self.operations_launched,
            "operations_completed": self.operations_completed,
            "packets_sent": self.packets_sent,
            "pending_packets": len(self._pending_packets),
        }
