"""NDA write buffer.

Result cache lines produced by a PE are staged in a per-rank write buffer
(128 entries in Table II) and drained to DRAM opportunistically.  Draining is
what produces the read/write-turnaround interference with host reads that the
throttling mechanisms of Section III-B manage, so buffer occupancy and drain
phases are modelled explicitly and mirrored by the replicated FSM
(Section III-D).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.dram.commands import DramAddress


class NdaWriteBuffer:
    """Bounded FIFO of pending NDA write transactions for one rank."""

    def __init__(self, capacity: int = 128,
                 drain_high_watermark: float = 0.5,
                 drain_low_watermark: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= drain_low_watermark <= drain_high_watermark <= 1.0:
            raise ValueError("watermarks must satisfy 0 <= low <= high <= 1")
        self.capacity = capacity
        self.drain_high_watermark = drain_high_watermark
        self.drain_low_watermark = drain_low_watermark
        self._entries: Deque[DramAddress] = deque()
        self._draining = False
        self.total_enqueued = 0
        self.total_drained = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.capacity

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def draining(self) -> bool:
        """Whether the buffer is currently in its drain (write) phase."""
        return self._draining

    # ------------------------------------------------------------------ #

    def push(self, addr: DramAddress) -> bool:
        """Stage a write; returns False when the buffer is full (PE stalls)."""
        if self.full:
            self.stall_cycles += 1
            return False
        self._entries.append(addr)
        self.total_enqueued += 1
        if self.occupancy >= self.drain_high_watermark:
            self._draining = True
        return True

    def peek(self) -> Optional[DramAddress]:
        return self._entries[0] if self._entries else None

    def pop(self) -> DramAddress:
        if not self._entries:
            raise IndexError("write buffer is empty")
        addr = self._entries.popleft()
        self.total_drained += 1
        if self.occupancy <= self.drain_low_watermark:
            self._draining = False
        return addr

    def pop_bulk(self, count: int) -> None:
        """Drain ``count`` entries in one step (burst-issue settlement).

        State-identical to ``count`` :meth:`pop` calls; the caller has
        already consumed the popped addresses via :meth:`peek`/iteration
        (burst plans snapshot the address run up front).  The low-watermark
        check runs once on the final occupancy — intermediate occupancies
        are strictly higher, so no drain-phase exit is skipped.
        """
        if count <= 0:
            return
        if count > len(self._entries):
            raise IndexError("pop_bulk beyond buffer occupancy")
        for _ in range(count):
            self._entries.popleft()
        self.total_drained += count
        if self.occupancy <= self.drain_low_watermark:
            self._draining = False

    def force_drain(self) -> None:
        """Enter the drain phase regardless of occupancy (end of instruction)."""
        if self._entries:
            self._draining = True

    def state_tuple(self) -> Tuple[int, bool]:
        """(occupancy, draining) — the state mirrored by the replicated FSM."""
        return (len(self._entries), self._draining)
