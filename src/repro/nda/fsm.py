"""Replicated NDA finite-state machines (paper Section III-D).

When the host directly controls the DRAM devices (a non-packetized DDR4
interface), both the host memory controller and the per-rank NDA memory
controllers must agree on bank and timing state.  Chopim achieves this
without any NDA-to-host signaling by replicating the NDA controller FSM on
the host side: because every NDA access is a deterministic function of the
launched NDA operation and of the host's own traffic, the two copies evolve
identically once synchronized at launch.

The :class:`ReplicatedFsm` here holds two :class:`NdaFsmState` copies — the
"device side" and the "host side" — applies every event to both through the
same transition function, and can verify they never diverge (the property the
paper relies on, checked by our tests every cycle in debug mode).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

#: Events retained for post-mortem debugging; bounded so multi-billion-cycle
#: runs do not grow memory without limit.
_EVENT_LOG_LIMIT = 64


@dataclass(frozen=True)
class NdaFsmState:
    """The architectural state mirrored between the NDA and host controllers.

    The paper reports this as a 40-byte microcode store plus 20 bytes of
    state registers per rank; the fields here correspond to those registers.
    """

    current_instruction: Optional[int] = None   # instruction id, None when idle
    reads_remaining: int = 0
    writes_remaining: int = 0
    write_buffer_occupancy: int = 0
    draining: bool = False
    instructions_completed: int = 0

    @property
    def idle(self) -> bool:
        return self.current_instruction is None

    def as_tuple(self) -> Tuple:
        return (self.current_instruction, self.reads_remaining,
                self.writes_remaining, self.write_buffer_occupancy,
                self.draining, self.instructions_completed)


class _FsmCopy:
    """One mutable FSM replica (device side or host side).

    Transitions mutate in place: the transition runs once per NDA command on
    *both* copies, and constructing a (frozen-dataclass) state object per
    event dominated the FSM cost on the hot path.  The immutable
    :class:`NdaFsmState` view is materialized on demand only.
    """

    __slots__ = ("current_instruction", "reads_remaining", "writes_remaining",
                 "write_buffer_occupancy", "draining", "instructions_completed")

    def __init__(self) -> None:
        self.current_instruction: Optional[int] = None
        self.reads_remaining = 0
        self.writes_remaining = 0
        self.write_buffer_occupancy = 0
        self.draining = False
        self.instructions_completed = 0

    def snapshot(self) -> NdaFsmState:
        return NdaFsmState(self.current_instruction, self.reads_remaining,
                           self.writes_remaining, self.write_buffer_occupancy,
                           self.draining, self.instructions_completed)


def _apply_to(copy: _FsmCopy, event: str, instruction_id: Optional[int],
              reads: int, writes: int) -> None:
    """The deterministic FSM transition function (shared by both copies)."""
    if event == "read_issued":
        if copy.reads_remaining > 0:
            copy.reads_remaining -= 1
    elif event == "write_drained":
        occ = copy.write_buffer_occupancy
        copy.write_buffer_occupancy = occ = occ - 1 if occ > 0 else 0
        if copy.writes_remaining > 0:
            copy.writes_remaining -= 1
        copy.draining = copy.draining and occ > 0
    elif event == "write_buffered":
        copy.write_buffer_occupancy += 1
    elif event == "launch":
        copy.current_instruction = instruction_id
        copy.reads_remaining = reads
        copy.writes_remaining = writes
        copy.draining = False
    elif event == "drain_start":
        copy.draining = True
    elif event == "drain_end":
        copy.draining = False
    elif event == "complete":
        copy.current_instruction = None
        copy.reads_remaining = 0
        copy.writes_remaining = 0
        copy.draining = False
        copy.instructions_completed += 1
    else:
        raise ValueError(f"unknown FSM event {event!r}")


class FsmDivergenceError(Exception):
    """Raised when the host-side and NDA-side FSM copies disagree."""


class ReplicatedFsm:
    """Two synchronized copies of one rank's NDA controller FSM."""

    def __init__(self, channel: int, rank: int, check_every_event: bool = True) -> None:
        self.channel = channel
        self.rank = rank
        self.check_every_event = check_every_event
        self._device = _FsmCopy()
        self._host = _FsmCopy()
        self.events_applied = 0
        self._log: Deque[str] = deque(maxlen=_EVENT_LOG_LIMIT)

    # ------------------------------------------------------------------ #

    def apply(self, event: str, instruction_id: Optional[int] = None,
              reads: int = 0, writes: int = 0) -> None:
        """Apply an event to both copies (as the hardware would) and verify."""
        _apply_to(self._device, event, instruction_id, reads, writes)
        _apply_to(self._host, event, instruction_id, reads, writes)
        self.events_applied += 1
        self._log.append(event)
        if self.check_every_event:
            self.verify()

    def apply_bulk(self, event: str, count: int) -> None:
        """Apply ``count`` repetitions of a streaming event in closed form.

        Only the per-command streaming events (``read_issued``,
        ``write_drained``, ``write_buffered``) are bulk-applicable: their
        transition functions are monotone counter updates, so ``count``
        single applications and one closed-form application reach the same
        state on both copies.  The burst-issue fast path uses this to settle
        a whole command burst without one transition call per command; the
        bounded event log keeps its per-event tail (only the last
        ``_EVENT_LOG_LIMIT`` entries are retained either way).
        """
        if count <= 0:
            return
        if count == 1:
            self.apply(event)
            return
        for copy in (self._device, self._host):
            if event == "read_issued":
                copy.reads_remaining = max(0, copy.reads_remaining - count)
            elif event == "write_drained":
                occ = max(0, copy.write_buffer_occupancy - count)
                copy.write_buffer_occupancy = occ
                copy.writes_remaining = max(0, copy.writes_remaining - count)
                copy.draining = copy.draining and occ > 0
            elif event == "write_buffered":
                copy.write_buffer_occupancy += count
            else:
                raise ValueError(f"event {event!r} is not bulk-applicable")
        self.events_applied += count
        self._log.extend((event,) * min(count, _EVENT_LOG_LIMIT))
        if self.check_every_event:
            self.verify()

    def apply_device_only(self, event: str, instruction_id: Optional[int] = None,
                          reads: int = 0, writes: int = 0) -> None:
        """Apply an event to the device copy only (used to *test* divergence
        detection; real hardware never does this)."""
        _apply_to(self._device, event, instruction_id, reads, writes)
        self.events_applied += 1

    def verify(self) -> None:
        """Raise :class:`FsmDivergenceError` if the two copies differ."""
        device, host = self._device, self._host
        # Field-by-field comparison (no snapshot allocations): this runs
        # after every FSM event.
        if (device.current_instruction != host.current_instruction
                or device.reads_remaining != host.reads_remaining
                or device.writes_remaining != host.writes_remaining
                or device.write_buffer_occupancy != host.write_buffer_occupancy
                or device.draining != host.draining
                or device.instructions_completed != host.instructions_completed):
            raise FsmDivergenceError(
                f"FSM divergence on ch{self.channel} rk{self.rank}: "
                f"device={device.snapshot()} host={host.snapshot()}"
            )

    @property
    def in_sync(self) -> bool:
        return self._device.snapshot() == self._host.snapshot()

    @property
    def device_state(self) -> NdaFsmState:
        return self._device.snapshot()

    @property
    def host_state(self) -> NdaFsmState:
        return self._host.snapshot()

    @property
    def state(self) -> NdaFsmState:
        """The (verified) shared state."""
        return self._device.snapshot()

    def recent_events(self, count: int = 16) -> List[str]:
        events = list(self._log)
        return events[-count:]

    @staticmethod
    def storage_overhead_bytes() -> Tuple[int, int]:
        """(microcode store, state registers) bytes per rank, from the paper."""
        return (40, 20)
