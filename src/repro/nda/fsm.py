"""Replicated NDA finite-state machines (paper Section III-D).

When the host directly controls the DRAM devices (a non-packetized DDR4
interface), both the host memory controller and the per-rank NDA memory
controllers must agree on bank and timing state.  Chopim achieves this
without any NDA-to-host signaling by replicating the NDA controller FSM on
the host side: because every NDA access is a deterministic function of the
launched NDA operation and of the host's own traffic, the two copies evolve
identically once synchronized at launch.

The :class:`ReplicatedFsm` here holds two :class:`NdaFsmState` copies — the
"device side" and the "host side" — applies every event to both through the
same transition function, and can verify they never diverge (the property the
paper relies on, checked by our tests every cycle in debug mode).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

#: Events retained for post-mortem debugging; bounded so multi-billion-cycle
#: runs do not grow memory without limit.
_EVENT_LOG_LIMIT = 64


@dataclass(frozen=True)
class NdaFsmState:
    """The architectural state mirrored between the NDA and host controllers.

    The paper reports this as a 40-byte microcode store plus 20 bytes of
    state registers per rank; the fields here correspond to those registers.
    """

    current_instruction: Optional[int] = None   # instruction id, None when idle
    reads_remaining: int = 0
    writes_remaining: int = 0
    write_buffer_occupancy: int = 0
    draining: bool = False
    instructions_completed: int = 0

    @property
    def idle(self) -> bool:
        return self.current_instruction is None

    def as_tuple(self) -> Tuple:
        return (self.current_instruction, self.reads_remaining,
                self.writes_remaining, self.write_buffer_occupancy,
                self.draining, self.instructions_completed)


def _transition(state: NdaFsmState, event: str, **kwargs) -> NdaFsmState:
    """The deterministic FSM transition function (shared by both copies).

    States are built directly (positionally) rather than via
    ``dataclasses.replace`` — the transition runs once per NDA command on
    both FSM copies, and ``replace`` pays field-introspection cost per call.
    """
    if event == "launch":
        return NdaFsmState(kwargs["instruction_id"], kwargs["reads"],
                           kwargs["writes"], state.write_buffer_occupancy,
                           False, state.instructions_completed)
    if event == "read_issued":
        return NdaFsmState(state.current_instruction,
                           max(0, state.reads_remaining - 1),
                           state.writes_remaining,
                           state.write_buffer_occupancy,
                           state.draining, state.instructions_completed)
    if event == "write_buffered":
        return NdaFsmState(state.current_instruction, state.reads_remaining,
                           state.writes_remaining,
                           state.write_buffer_occupancy + 1,
                           state.draining, state.instructions_completed)
    if event == "write_drained":
        occ = max(0, state.write_buffer_occupancy - 1)
        return NdaFsmState(state.current_instruction, state.reads_remaining,
                           max(0, state.writes_remaining - 1), occ,
                           state.draining and occ > 0,
                           state.instructions_completed)
    if event == "drain_start":
        return NdaFsmState(state.current_instruction, state.reads_remaining,
                           state.writes_remaining,
                           state.write_buffer_occupancy,
                           True, state.instructions_completed)
    if event == "drain_end":
        return NdaFsmState(state.current_instruction, state.reads_remaining,
                           state.writes_remaining,
                           state.write_buffer_occupancy,
                           False, state.instructions_completed)
    if event == "complete":
        return NdaFsmState(None, 0, 0, state.write_buffer_occupancy, False,
                           state.instructions_completed + 1)
    raise ValueError(f"unknown FSM event {event!r}")


class FsmDivergenceError(Exception):
    """Raised when the host-side and NDA-side FSM copies disagree."""


class ReplicatedFsm:
    """Two synchronized copies of one rank's NDA controller FSM."""

    def __init__(self, channel: int, rank: int, check_every_event: bool = True) -> None:
        self.channel = channel
        self.rank = rank
        self.check_every_event = check_every_event
        self.device_state = NdaFsmState()
        self.host_state = NdaFsmState()
        self.events_applied = 0
        self._log: Deque[str] = deque(maxlen=_EVENT_LOG_LIMIT)

    # ------------------------------------------------------------------ #

    def apply(self, event: str, **kwargs) -> NdaFsmState:
        """Apply an event to both copies (as the hardware would) and verify."""
        self.device_state = _transition(self.device_state, event, **kwargs)
        self.host_state = _transition(self.host_state, event, **kwargs)
        self.events_applied += 1
        self._log.append(event)
        if self.check_every_event:
            self.verify()
        return self.device_state

    def apply_device_only(self, event: str, **kwargs) -> None:
        """Apply an event to the device copy only (used to *test* divergence
        detection; real hardware never does this)."""
        self.device_state = _transition(self.device_state, event, **kwargs)
        self.events_applied += 1

    def verify(self) -> None:
        """Raise :class:`FsmDivergenceError` if the two copies differ."""
        device, host = self.device_state, self.host_state
        # Field-by-field comparison (no as_tuple allocations): this runs
        # after every FSM event.
        if (device.current_instruction != host.current_instruction
                or device.reads_remaining != host.reads_remaining
                or device.writes_remaining != host.writes_remaining
                or device.write_buffer_occupancy != host.write_buffer_occupancy
                or device.draining != host.draining
                or device.instructions_completed != host.instructions_completed):
            raise FsmDivergenceError(
                f"FSM divergence on ch{self.channel} rk{self.rank}: "
                f"device={device} host={host}"
            )

    @property
    def in_sync(self) -> bool:
        return self.device_state.as_tuple() == self.host_state.as_tuple()

    @property
    def state(self) -> NdaFsmState:
        """The (verified) shared state."""
        return self.device_state

    def recent_events(self, count: int = 16) -> List[str]:
        events = list(self._log)
        return events[-count:]

    @staticmethod
    def storage_overhead_bytes() -> Tuple[int, int]:
        """(microcode store, state registers) bytes per rank, from the paper."""
        return (40, 20)
