"""Near-data accelerator hardware model.

One processing element (PE) per DRAM chip sits on the logic die of each
3DS-style chip stack; a per-rank NDA memory controller gives the PEs access
to their local rank without using the host channel (paper Figures 1 and 7).
This package models the NDA ISA (Table I), the PE execution flow (Figure 9),
the per-rank NDA memory controller with its write buffer, the write-throttle
policies of Section III-B and the replicated-FSM state tracking of
Section III-D.
"""

from repro.nda.isa import NdaOpcode, NdaInstruction, OPCODE_TRAITS, OpcodeTraits
from repro.nda.pe import ProcessingElement
from repro.nda.write_buffer import NdaWriteBuffer
from repro.nda.throttle import (
    WriteThrottlePolicy,
    IssueIfIdlePolicy,
    StochasticIssuePolicy,
    NextRankPredictionPolicy,
)
from repro.nda.fsm import NdaFsmState, ReplicatedFsm
from repro.nda.controller import NdaRankController
from repro.nda.launch import NdaPacket, NdaHostController

__all__ = [
    "NdaOpcode",
    "NdaInstruction",
    "OPCODE_TRAITS",
    "OpcodeTraits",
    "ProcessingElement",
    "NdaWriteBuffer",
    "WriteThrottlePolicy",
    "IssueIfIdlePolicy",
    "StochasticIssuePolicy",
    "NextRankPredictionPolicy",
    "NdaFsmState",
    "ReplicatedFsm",
    "NdaRankController",
    "NdaPacket",
    "NdaHostController",
]
