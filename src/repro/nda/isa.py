"""NDA instruction set (paper Table I).

Every operation is a coarse-grain vector/matrix kernel whose operands must be
local to one rank (one PE group).  The traits table records, per element
processed, how many operand cache lines are read, how many result cache lines
are written and how many fused multiply-add operations are executed — which
is all the timing and energy models need.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class NdaOpcode(enum.Enum):
    """The NDA operations of Table I."""

    AXPBY = "axpby"          # z = a*x + b*y
    AXPBYPCZ = "axpbypcz"    # w = a*x + b*y + c*z
    AXPY = "axpy"            # y = a*y + x   (paper's Table I form)
    COPY = "copy"            # y = x
    XMY = "xmy"              # z = x (*) y   (element-wise multiply)
    DOT = "dot"              # c = x . y
    NRM2 = "nrm2"            # c = sqrt(x . x)
    SCAL = "scal"            # x = a*x
    GEMV = "gemv"            # y = A x


@dataclass(frozen=True)
class OpcodeTraits:
    """Static per-element resource usage of one opcode."""

    #: Vector operands streamed from DRAM per output element.
    input_vectors: int
    #: Result vectors written back to DRAM (0 for reductions).
    output_vectors: int
    #: FMA operations per element.
    fmas_per_element: float
    #: Whether the result is a scalar reduction returned through the host.
    is_reduction: bool = False
    #: Whether the operation reads a matrix row per output element (GEMV).
    is_matrix: bool = False

    @property
    def reads_per_element(self) -> int:
        return self.input_vectors

    @property
    def writes_per_element(self) -> int:
        return self.output_vectors

    @property
    def write_intensity(self) -> float:
        """Fraction of DRAM traffic that is writes (used by Figures 11-13)."""
        total = self.input_vectors + self.output_vectors
        return self.output_vectors / total if total else 0.0


#: Per-opcode traits; elements are 4-byte floats.
OPCODE_TRAITS: Dict[NdaOpcode, OpcodeTraits] = {
    NdaOpcode.AXPBY: OpcodeTraits(input_vectors=2, output_vectors=1, fmas_per_element=2),
    NdaOpcode.AXPBYPCZ: OpcodeTraits(input_vectors=3, output_vectors=1, fmas_per_element=3),
    NdaOpcode.AXPY: OpcodeTraits(input_vectors=2, output_vectors=1, fmas_per_element=1),
    NdaOpcode.COPY: OpcodeTraits(input_vectors=1, output_vectors=1, fmas_per_element=0),
    NdaOpcode.XMY: OpcodeTraits(input_vectors=2, output_vectors=1, fmas_per_element=1),
    NdaOpcode.DOT: OpcodeTraits(input_vectors=2, output_vectors=0, fmas_per_element=1,
                                is_reduction=True),
    NdaOpcode.NRM2: OpcodeTraits(input_vectors=1, output_vectors=0, fmas_per_element=1,
                                 is_reduction=True),
    NdaOpcode.SCAL: OpcodeTraits(input_vectors=1, output_vectors=1, fmas_per_element=1),
    NdaOpcode.GEMV: OpcodeTraits(input_vectors=1, output_vectors=0, fmas_per_element=1,
                                 is_reduction=False, is_matrix=True),
}

_instruction_ids = itertools.count()


def get_instruction_id_watermark() -> int:
    """Next instruction id the global counter would hand out (checkpointing)."""
    global _instruction_ids
    value = next(_instruction_ids)
    _instruction_ids = itertools.count(value)
    return value


def set_instruction_id_watermark(value: int) -> None:
    """Restore the global instruction-id counter (checkpoint restore)."""
    global _instruction_ids
    _instruction_ids = itertools.count(value)


@dataclass
class NdaInstruction:
    """One NDA instruction targeting the portion of its operands in one rank.

    ``num_elements`` is the per-rank element count this instruction covers;
    ``cache_blocks`` is the coarse-grain granularity (the N-way vector width
    of Section III, swept by Figure 10): the number of 64-byte cache blocks
    of *each operand* processed by this single instruction.
    """

    opcode: NdaOpcode
    num_elements: int
    element_bytes: int = 4
    cache_blocks: Optional[int] = None
    scalars: Tuple[float, ...] = ()
    #: GEMV only: number of matrix columns per output row.
    matrix_columns: int = 0
    instruction_id: int = field(default_factory=lambda: next(_instruction_ids))

    def __post_init__(self) -> None:
        if self.num_elements <= 0:
            raise ValueError("num_elements must be positive")
        if self.element_bytes <= 0:
            raise ValueError("element_bytes must be positive")
        if self.opcode is NdaOpcode.GEMV and self.matrix_columns <= 0:
            raise ValueError("GEMV requires matrix_columns")

    @property
    def traits(self) -> OpcodeTraits:
        return OPCODE_TRAITS[self.opcode]

    @property
    def elements_per_cache_block(self) -> int:
        return max(1, 64 // self.element_bytes)

    @property
    def total_cache_blocks(self) -> int:
        """Cache blocks of one operand covered by this instruction."""
        if self.opcode is NdaOpcode.GEMV:
            elems = self.num_elements * self.matrix_columns
        else:
            elems = self.num_elements
        return max(1, (elems * self.element_bytes + 63) // 64)

    @property
    def read_cache_blocks(self) -> int:
        if self.opcode is NdaOpcode.GEMV:
            # The matrix is streamed once; the input vector is reused from
            # the scratchpad (Figure 9) and counted once.
            vec_blocks = max(1, (self.matrix_columns * self.element_bytes + 63) // 64)
            return self.total_cache_blocks + vec_blocks
        return self.total_cache_blocks * self.traits.input_vectors

    @property
    def write_cache_blocks(self) -> int:
        if self.opcode is NdaOpcode.GEMV:
            return max(1, (self.num_elements * self.element_bytes + 63) // 64)
        return self.total_cache_blocks * self.traits.output_vectors

    @property
    def fma_operations(self) -> float:
        if self.opcode is NdaOpcode.GEMV:
            return self.num_elements * self.matrix_columns
        return self.num_elements * self.traits.fmas_per_element

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic (read + write) of this instruction in bytes."""
        return (self.read_cache_blocks + self.write_cache_blocks) * 64

    def split(self, cache_blocks: int) -> "list[NdaInstruction]":
        """Split into instructions of at most ``cache_blocks`` granularity each."""
        if cache_blocks <= 0:
            raise ValueError("cache_blocks must be positive")
        elems_per_piece = cache_blocks * self.elements_per_cache_block
        pieces = []
        remaining = self.num_elements
        while remaining > 0:
            take = min(elems_per_piece, remaining)
            pieces.append(NdaInstruction(
                opcode=self.opcode,
                num_elements=take,
                element_bytes=self.element_bytes,
                cache_blocks=cache_blocks,
                scalars=self.scalars,
                matrix_columns=self.matrix_columns,
            ))
            remaining -= take
        return pieces
