"""NDA write-throttling policies (paper Section III-B).

NDA read transactions barely disturb the host, but NDA writes interleaved
with host reads force frequent write-to-read turnarounds on the shared rank
and degrade host performance.  Chopim throttles NDA writes with one of:

* **issue-if-idle** — no throttling beyond waiting for the rank to be idle
  (the aggressive baseline in Figure 12);
* **stochastic issue** — each write is issued with a configurable
  probability, trading NDA progress against host impact without any extra
  signaling;
* **next-rank prediction** — the host-side controller inhibits NDA writes to
  a rank while the oldest outstanding host request in that channel is a read
  to the same rank, requiring only a single early signal per decision.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol

from repro.utils.rng import DeterministicRng


class _HostQueueView(Protocol):
    """The slice of the host memory controller the predictor may observe."""

    def oldest_pending_read_rank(self) -> Optional[int]: ...


class WriteThrottlePolicy:
    """Base class: decides whether an NDA write may issue this cycle."""

    name = "base"
    #: Whether the decision is a pure function of observable state (no RNG
    #: consumption).  Deterministic policies can be peeked by the event
    #: engine via :meth:`would_allow` without perturbing the simulation;
    #: non-deterministic ones force the engine to attempt the write on every
    #: issue-eligible cycle so the RNG stream matches the cycle-by-cycle
    #: baseline.
    deterministic = True

    def allow_write(self, channel: int, rank: int, now: int) -> bool:
        raise NotImplementedError

    def would_allow(self, channel: int, rank: int, now: int) -> bool:
        """Side-effect-free preview of :meth:`allow_write`.

        Only meaningful for deterministic policies; must not touch counters
        or RNG state.
        """
        raise NotImplementedError

    def observe_host_issue(self, channel: int, rank: int, is_read: bool,
                           now: int) -> None:
        """Hook for policies that adapt to observed host traffic."""

    def describe(self) -> str:
        return self.name


class IssueIfIdlePolicy(WriteThrottlePolicy):
    """No write throttling: issue whenever the rank is idle from the host."""

    name = "issue_if_idle"

    def allow_write(self, channel: int, rank: int, now: int) -> bool:
        return True

    def would_allow(self, channel: int, rank: int, now: int) -> bool:
        return True


class StochasticIssuePolicy(WriteThrottlePolicy):
    """Issue each NDA write with a fixed probability (no signaling needed)."""

    name = "stochastic_issue"
    deterministic = False

    def __init__(self, probability: float, rng: DeterministicRng) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.probability = probability
        self.rng = rng
        self.attempts = 0
        self.allowed = 0

    def allow_write(self, channel: int, rank: int, now: int) -> bool:
        self.attempts += 1
        allowed = self.rng.coin(self.probability)
        if allowed:
            self.allowed += 1
        return allowed

    def describe(self) -> str:
        return f"{self.name}(p={self.probability:g})"


class NextRankPredictionPolicy(WriteThrottlePolicy):
    """Inhibit NDA writes to the rank the host is about to read.

    The predictor examines the oldest outstanding request in the host
    controller's transaction queue for the rank's channel; if that request is
    a read targeting this rank, NDA writes to the rank are stalled
    (Section III-B).  The signal is communicated ahead of the host
    transaction (modelled as available in the same cycle).
    """

    name = "next_rank_prediction"

    def __init__(self, host_controllers: Dict[int, _HostQueueView]) -> None:
        self.host_controllers = host_controllers
        self.inhibits = 0
        self.checks = 0

    def allow_write(self, channel: int, rank: int, now: int) -> bool:
        self.checks += 1
        if not self.would_allow(channel, rank, now):
            self.inhibits += 1
            return False
        return True

    def would_allow(self, channel: int, rank: int, now: int) -> bool:
        controller = self.host_controllers.get(channel)
        if controller is None:
            return True
        predicted = controller.oldest_pending_read_rank()
        return predicted is None or predicted != rank

    def inhibit_rate(self) -> float:
        return self.inhibits / self.checks if self.checks else 0.0


def make_policy(name: str, rng: Optional[DeterministicRng] = None,
                probability: float = 0.25,
                host_controllers: Optional[Dict[int, _HostQueueView]] = None,
                ) -> WriteThrottlePolicy:
    """Factory used by experiments: ``issue_if_idle``, ``stochastic``, ``next_rank``."""
    if name in ("issue_if_idle", "none"):
        return IssueIfIdlePolicy()
    if name in ("stochastic", "stochastic_issue"):
        if rng is None:
            raise ValueError("stochastic issue requires an rng")
        return StochasticIssuePolicy(probability, rng)
    if name in ("next_rank", "next_rank_prediction", "predict_next_rank"):
        return NextRankPredictionPolicy(host_controllers or {})
    raise ValueError(f"unknown throttle policy {name!r}")
