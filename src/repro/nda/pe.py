"""Processing-element model (paper Figure 9).

Each PE has two floating-point fused multiply-add units, five scalar
registers, a 1 KiB streaming buffer and a 1 KiB scratchpad.  The FMA
throughput matches the 8-byte-per-access local memory bandwidth, so PE
execution is memory-bound; the PE model therefore tracks occupancy and
operation counts (for the energy model) rather than simulating the datapath
cycle by cycle.  Functional results are computed by the runtime with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import NdaConfig
from repro.nda.isa import NdaInstruction, NdaOpcode


@dataclass
class PeStatistics:
    """Operation counts accumulated by one PE."""

    instructions_executed: int = 0
    elements_processed: int = 0
    fma_operations: float = 0.0
    buffer_accesses: int = 0
    scratchpad_accesses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_cycles: int = 0


class ProcessingElement:
    """One PE on the logic die of a DRAM chip stack."""

    def __init__(self, chip_id: int, config: Optional[NdaConfig] = None) -> None:
        self.chip_id = chip_id
        self.config = config or NdaConfig()
        self.stats = PeStatistics()
        self._current: Optional[NdaInstruction] = None

    # ------------------------------------------------------------------ #

    @property
    def busy(self) -> bool:
        return self._current is not None

    def start(self, instruction: NdaInstruction) -> None:
        if self.busy:
            raise RuntimeError(f"PE {self.chip_id} is already executing an instruction")
        self._current = instruction

    def finish(self) -> NdaInstruction:
        if self._current is None:
            raise RuntimeError(f"PE {self.chip_id} has no instruction to finish")
        instruction = self._current
        self._current = None
        self._account(instruction)
        return instruction

    def _account(self, instruction: NdaInstruction) -> None:
        per_chip_share = 1.0 / max(1, self.config.pes_per_chip)
        self.stats.instructions_executed += 1
        self.stats.elements_processed += instruction.num_elements
        self.stats.fma_operations += instruction.fma_operations * per_chip_share
        read_bytes = instruction.read_cache_blocks * 64
        write_bytes = instruction.write_cache_blocks * 64
        self.stats.bytes_read += read_bytes
        self.stats.bytes_written += write_bytes
        # Every byte streamed from DRAM passes through the 1 KiB buffer; the
        # result batch is staged there as well (Figure 9).
        buffer_bytes = read_bytes + write_bytes
        self.stats.buffer_accesses += max(1, buffer_bytes // self.config.access_granularity_bytes)
        if instruction.traits.is_reduction or instruction.opcode is NdaOpcode.GEMV:
            self.stats.scratchpad_accesses += max(
                1, instruction.num_elements // self.config.scalar_registers
            )

    # ------------------------------------------------------------------ #

    def batch_count(self, instruction: NdaInstruction) -> int:
        """Number of 1 KiB batches the instruction is processed in (Figure 9)."""
        operand_bytes = instruction.num_elements * instruction.element_bytes
        per_chip = operand_bytes / 8.0  # the rank's 8 chips each hold 1/8th
        return max(1, int((per_chip + self.config.buffer_bytes - 1)
                          // self.config.buffer_bytes))

    def compute_cycles(self, instruction: NdaInstruction) -> int:
        """PE-side compute cycles, fully overlapped with memory streaming.

        Two FMAs per cycle per chip match the 8 B/cycle access granularity,
        so this only becomes the bottleneck for arithmetically dense kernels
        (none of the Table I operations are).
        """
        fma_per_cycle = self.config.fpfma_per_pe
        return int(instruction.fma_operations / 8.0 / max(1, fma_per_cycle)) + 1

    def stats_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.stats.instructions_executed,
            "elements": self.stats.elements_processed,
            "fmas": self.stats.fma_operations,
            "buffer_accesses": self.stats.buffer_accesses,
            "scratchpad_accesses": self.stats.scratchpad_accesses,
            "bytes_read": self.stats.bytes_read,
            "bytes_written": self.stats.bytes_written,
        }
