"""Per-rank NDA memory controller.

Each rank's NDA controller executes coarse-grain NDA instructions by
streaming their operands through the rank's banks (PE execution flow of
Figure 9): per 1 KiB-per-chip batch it reads each input operand's row,
stages the result cache lines in the write buffer, and drains the buffer
opportunistically.  The controller issues DRAM commands *locally* (they use
rank-internal bandwidth, not the channel), always defers to host traffic on
its rank, never issues a row command against a bank with pending host
requests, and applies the configured write-throttle policy to drains
(Sections III-B and V).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.config import NdaConfig
from repro.dram.bank import BankState
from repro.dram.commands import Command, CommandType, DramAddress, RequestSource
from repro.dram.device import DramSystem
from repro.nda.fsm import ReplicatedFsm
from repro.nda.isa import NdaInstruction
from repro.nda.pe import ProcessingElement
from repro.nda.throttle import IssueIfIdlePolicy, WriteThrottlePolicy
from repro.nda.write_buffer import NdaWriteBuffer

#: Sentinel for "no wake-up needed" horizons (matches the engine's INFINITY).
_NO_EVENT = 1 << 62


class _BurstPlan:
    """A planned steady-state command burst: K column commands at a fixed
    cadence, applied lazily ("settled") in closed form.

    A plan is a pure *schedule* — no simulation state changes when it is
    created.  Commands are applied by :meth:`NdaRankController.settle_burst`
    when (a) an external reader needs the rank's timing state (the owning
    channel settles before every FR-FCFS scan and command issue), (b) the
    engine flushes at a run boundary, or (c) the plan is truncated.  The
    command at index ``i`` issues at cycle ``start + i * step``; ``idx`` is
    the first unsettled index.  ``end`` (one past the last command's cycle)
    is the owning unit's calendar wake while the plan is live.
    """

    __slots__ = ("is_write", "start", "step", "count", "idx", "acc_idx",
                 "end", "bank", "bank_index", "bank_group", "stages",
                 "skip_first")

    def __init__(self, is_write: bool, start: int, step: int, count: int,
                 bank, bank_index: int, bank_group: int, stages: bool,
                 skip_first: bool) -> None:
        self.is_write = is_write
        self.start = start
        self.step = step
        self.count = count
        self.idx = 0
        #: Commands whose *accounting* (counters, FSM, staging) has been
        #: applied; timing settlement (``idx``) runs ahead of it — scans
        #: only read timing state, so accounting defers to plan boundaries.
        self.acc_idx = 0
        self.end = start + (count - 1) * step + 1
        self.bank = bank
        self.bank_index = bank_index
        self.bank_group = bank_group
        self.stages = stages
        #: The first command's access was already classified (its PRE/ACT
        #: issued earlier and recorded the row miss/conflict); classification
        #: is per access, so settlement must not re-record it as a hit.
        self.skip_first = skip_first


@dataclass
class RankWorkItem:
    """An NDA instruction bound to concrete banks/rows of one rank.

    ``operand_banks``/``operand_base_rows`` give, for every streamed input
    operand, the flat bank index and the starting row; ``output_bank`` and
    ``output_base_row`` locate the result vector (``None`` for reductions).
    ``on_complete`` is invoked with the completion cycle.
    """

    instruction: NdaInstruction
    operand_banks: List[int]
    operand_base_rows: List[int]
    output_bank: Optional[int] = None
    output_base_row: Optional[int] = None
    on_complete: Optional[Callable[[int], None]] = None
    launched_cycle: int = 0
    completed_cycle: Optional[int] = None
    #: Id of the owning :class:`~repro.nda.launch.NdaOperation` (``-1`` for
    #: directly enqueued test work).  Checkpoint restore uses it to rebuild
    #: ``on_complete`` from the operation table.
    operation_id: int = -1


class _ExecutionState:
    """Progress of the work item currently executing on a rank."""

    def __init__(self, work: RankWorkItem, columns_per_row: int) -> None:
        self.work = work
        self.columns_per_row = columns_per_row
        instruction = work.instruction
        self.total_read_columns = instruction.read_cache_blocks
        self.total_write_columns = instruction.write_cache_blocks
        self.reads_issued = 0
        self.writes_staged = 0
        self.writes_drained = 0
        # Index of the last read / drained write whose row-buffer outcome has
        # been classified.  Each access is classified exactly once, at the
        # moment its first DRAM command issues (so the hit/miss/conflict
        # outcome reflects the bank state the access found).
        self.read_classified_idx = -1
        self.write_classified_idx = -1
        # Read phase bookkeeping: operands are streamed one row (batch) at a
        # time, operand after operand within a batch.
        self.num_operands = max(1, len(work.operand_banks))
        per_operand = (self.total_read_columns + self.num_operands - 1) // self.num_operands
        self.columns_per_operand = max(1, per_operand)
        # Memo of write_stage_allowed keyed on its inputs: the predicate is
        # probed every cycle per rank but its inputs only move on progress.
        self._stage_memo = (-1, -1, False)
        # Decoded target of the next read access, keyed by the read cursor:
        # recomputed only when the cursor moves; blocked attempts and wake
        # probes reuse the immutable address.
        self._read_addr_idx = -1
        self._read_addr: Optional[DramAddress] = None

    # -- reads ------------------------------------------------------------ #

    @property
    def reads_done(self) -> bool:
        return self.reads_issued >= self.total_read_columns

    def next_read(self) -> Tuple[int, int, int]:
        """(flat bank, row, column) of the next read access."""
        # Column index within the whole instruction, mapped to operand and
        # then to (row, column) within the operand's row sequence.
        idx = self.reads_issued
        batch_cols = self.columns_per_row
        batch = idx // (self.num_operands * batch_cols)
        within = idx % (self.num_operands * batch_cols)
        operand = within // batch_cols
        column = within % batch_cols
        operand = min(operand, self.num_operands - 1)
        bank = self.work.operand_banks[operand]
        row = self.work.operand_base_rows[operand] + batch
        return bank, row, column

    def advance_read(self) -> None:
        self.reads_issued += 1

    # -- writes ------------------------------------------------------------ #

    @property
    def writes_all_staged(self) -> bool:
        return self.writes_staged >= self.total_write_columns

    @property
    def writes_done(self) -> bool:
        return self.writes_drained >= self.total_write_columns

    def next_write(self) -> Tuple[int, int, int]:
        idx = self.writes_staged
        column = idx % self.columns_per_row
        row_offset = idx // self.columns_per_row
        bank = self.work.output_bank if self.work.output_bank is not None else 0
        base_row = self.work.output_base_row or 0
        return bank, base_row + row_offset, column

    def advance_write_staged(self) -> None:
        self.writes_staged += 1

    def advance_write_drained(self) -> None:
        self.writes_drained += 1

    @property
    def complete(self) -> bool:
        return self.reads_done and self.writes_done

    def write_stage_allowed(self) -> bool:
        """Results may only be staged for data that has been read (pipelined)."""
        if self.total_write_columns == 0:
            return False
        memo = self._stage_memo
        if memo[0] == self.reads_issued and memo[1] == self.writes_staged:
            return memo[2]
        read_progress = self.reads_issued / max(1, self.total_read_columns)
        write_progress = self.writes_staged / max(1, self.total_write_columns)
        allowed = write_progress < read_progress or self.reads_done
        self._stage_memo = (self.reads_issued, self.writes_staged, allowed)
        return allowed


class NdaRankController:
    """NDA memory controller and PE group of one rank."""

    def __init__(self, channel: int, rank: int, dram: DramSystem,
                 config: Optional[NdaConfig] = None,
                 allowed_banks: Optional[List[int]] = None,
                 throttle: Optional[WriteThrottlePolicy] = None,
                 host_pending_to_bank: Optional[Callable[[int, int, int], bool]] = None,
                 issue_horizon: Optional[Callable[[int, int, int], int]] = None,
                 ) -> None:
        self.channel = channel
        self.rank = rank
        self.dram = dram
        # Dense indices of this rank, matching the stamps the timing engine
        # and DRAM device use for their flat state arrays.
        self._rank_index = channel * dram.org.ranks_per_channel + rank
        self._bank_index_base = self._rank_index * dram.org.banks_per_rank
        # Bound hot probes (timing-only semantics, as the command path used),
        # plus direct references to the bank list and the timing engine's
        # rank-local probe caches (lists mutated in place, never
        # reassigned): every local address is stamped, so the required
        # command and — on cache hits — its earliest issue cycle are read
        # inline without a call (see _required_earliest).
        self._timing_earliest_issue_at = dram.timing.earliest_issue_at
        self._banks = dram._banks
        self._timing_versions = dram.timing._issue_versions
        self._timing_row_versions = dram.timing._row_versions
        self._act_cache = dram.timing._act_cache
        self._pre_cache = dram.timing._pre_cache
        self._nda_rd_cache = dram.timing._nda_rd_cache
        self._nda_wr_cache = dram.timing._nda_wr_cache
        self.config = config or NdaConfig()
        self.allowed_banks = allowed_banks or list(range(dram.org.banks_per_rank))
        self.throttle = throttle or IssueIfIdlePolicy()
        self._host_pending_to_bank = host_pending_to_bank
        # Host-free horizon: injected override, or an inline walk over this
        # rank's (stable) timing-state object — called once or twice per
        # wake probe, where the generic rank_state lookup is measurable.
        self._rank_timing = dram.timing.rank_state(channel, rank)
        self._issue_horizon = issue_horizon or self._host_free_from
        #: Whether the owning system runs refresh (SchedulerConfig); burst
        #: plans then stop short of the rank's refresh-due cycle, mirroring
        #: the concurrent-access gate's refresh deference.  Set by the
        #: system at construction.
        self.refresh_enabled = True
        self.write_buffer = NdaWriteBuffer(self.config.write_buffer_entries)
        self.fsm = ReplicatedFsm(channel, rank)
        self.pes = [ProcessingElement(chip, self.config)
                    for chip in range(dram.org.chips_per_rank)]
        self._queue: Deque[RankWorkItem] = deque()
        self._active: Optional[_ExecutionState] = None
        #: Selective-wake notification: invoked whenever work is delivered,
        #: so the engine re-polls (and, when eligible, runs) this rank's
        #: unit on the delivery cycle.  The engine re-polls after every run
        #: and on host-issue notifications, so :meth:`next_event_cycle` is
        #: only ever called when its inputs actually changed — the old
        #: issue-version-tagged wake cache is gone.
        self.wake_listener: Optional[Callable[[], None]] = None
        # ---- burst-issue fast path ------------------------------------- #
        # The active plan (None outside steady-state streaming), the fixed
        # column cadence, and the write-buffer watermark thresholds as
        # integer lengths (computed with the buffer's own float comparisons
        # so plan-time trajectory prediction matches push/pop bit-exactly).
        self._plan: Optional[_BurstPlan] = None
        timing = dram.timing.timing
        self._burst_step = max(timing.tCCDS, timing.tBL)
        wb_cap = self.write_buffer.capacity
        self._wb_flip_len = next(
            (k for k in range(wb_cap + 1)
             if k / wb_cap >= self.write_buffer.drain_high_watermark),
            wb_cap + 1)
        self._wb_low_len = max(
            (k for k in range(wb_cap + 1)
             if k / wb_cap <= self.write_buffer.drain_low_watermark),
            default=0)
        #: Optional scheduler whose ``nda_issue_opportunities`` counter is
        #: advanced per settled command (one per issuing cycle, as the
        #: per-cycle selective engine counts).
        self.gate_stats = None
        # Burst diagnostics (cumulative; recorded by bench_engine).
        self.bursts_planned = 0
        self.burst_commands_planned = 0
        self.burst_commands_settled = 0
        self.bursts_completed = 0
        self.burst_truncations: Dict[str, int] = {}
        # Statistics
        self.bytes_read = 0
        self.bytes_written = 0
        self.commands_issued = 0
        self.cycles_blocked_by_host = 0
        self.cycles_blocked_by_throttle = 0
        self.instructions_completed = 0

    # ------------------------------------------------------------------ #
    # Work submission
    # ------------------------------------------------------------------ #

    def enqueue(self, work: RankWorkItem, now: int = 0) -> None:
        work.launched_cycle = now
        self._queue.append(work)
        listener = self.wake_listener
        if listener is not None:
            listener()

    @property
    def pending_instructions(self) -> int:
        return len(self._queue) + (1 if self._active is not None else 0)

    @property
    def busy(self) -> bool:
        return self._active is not None or bool(self._queue)

    def set_throttle(self, policy: WriteThrottlePolicy) -> None:
        # A planned write burst embeds the old policy's decisions; a planned
        # read burst embeds the absence of drain attempts.  Policy swaps
        # happen between engine runs, where the run-boundary flush has
        # already settled every elapsed command — the unsettled remainder
        # lies in the future and is simply dropped (settle boundary 0).
        self.cancel_burst(0, "throttle_change")
        self.throttle = policy
        # Throttle behaviour feeds the wake computation; re-poll.
        listener = self.wake_listener
        if listener is not None:
            listener()

    # ------------------------------------------------------------------ #
    # Cycle advance: called by the system when the rank may issue an NDA
    # command (the host did not use the rank this cycle).
    # ------------------------------------------------------------------ #

    def try_issue(self, now: int) -> bool:
        """Attempt to issue one NDA DRAM command; returns True on issue."""
        state = self._active
        if state is None:
            if not self._queue:
                return False
            self._refill(now)
            state = self._active

        # Drain has priority when the buffer asks for it or reads are done.
        if not self.write_buffer.empty and (self.write_buffer.draining
                                            or state.reads_done):
            if self._try_drain_write(now, state):
                return True
            # A blocked drain should not starve remaining reads forever.
        if not state.reads_done:
            if self._try_read(now, state):
                return True
        # Stage produced results into the write buffer (no DRAM command) and
        # retry the drain path if reads cannot make progress.
        self._stage_writes(state)
        if not self.write_buffer.empty and state.reads_done:
            return self._try_drain_write(now, state)
        return False

    def post_cycle(self, now: int) -> None:
        """End-of-cycle bookkeeping: staging, completion detection."""
        state = self._active
        if state is None:
            return
        self._stage_writes(state)
        if state.reads_done and self.write_buffer.empty and state.writes_done:
            self._complete_active(now)

    # ------------------------------------------------------------------ #
    # Burst-issue fast path
    #
    # In steady-state streaming phases the controller's next K commands are
    # same-bank column commands at a provably fixed cadence:
    #
    # * a **read streak** — the remaining row-hit RDs of the current
    #   (operand, row) run, while drains have no priority (buffer empty or
    #   not draining, reads not done); and
    # * a **drain tail** — consecutive row-hit WRs to the buffered output
    #   row once reads are done, everything is staged and the (deterministic)
    #   throttle allows writes.
    #
    # Within such a streak, each command's earliest-issue cycle is exactly
    # ``prev + max(tCCD_S, tBL)``: all other timing terms are *frozen*
    # absolute horizons already cleared by the first command, and only the
    # streak's own commands move the rank-local spacing/bus terms — by the
    # fixed cadence.  :meth:`plan_burst` captures the streak as a
    # :class:`_BurstPlan` (a pure schedule), the engine parks the unit's
    # wake at the burst horizon, and :meth:`settle_burst` applies elapsed
    # prefixes in closed form.  Any event that could perturb the schedule
    # (a host command to this rank, a read-queue change under next-rank
    # throttling, a throttle swap, broadcast ``step`` driving) truncates the
    # plan through :meth:`cancel_burst`, falling back to the per-cycle path
    # — the same routes that already carry the engine's dirty notifications.
    # ------------------------------------------------------------------ #

    def plan_burst(self, now: int) -> None:
        """Plan the next command streak starting strictly after ``now``.

        Called by the engine component at the end of a processed wake.  A
        plan is only created when the streak is provably regular for at
        least two commands; otherwise the per-cycle path continues.
        """
        state = self._active
        if state is None or self._plan is not None:
            return
        wb = self.write_buffer
        if not state.reads_done:
            # Read streak.  Drain priority (buffer draining) interleaves
            # drain attempts — and, under a stochastic throttle, RNG draws —
            # with reads; streaks are only planned while reads run alone.
            if not wb.empty and wb.draining:
                return
            # Exclude the instruction's final read: its post-cycle triggers
            # force-drain / completion, which the per-cycle path handles.
            remaining = state.total_read_columns - 1 - state.reads_issued
            if remaining < 2:
                return
            batch_cols = state.columns_per_row
            column = (state.reads_issued
                      % (state.num_operands * batch_cols)) % batch_cols
            run = batch_cols - column  # rest of the (operand, row) run
            count = run if run < remaining else remaining
            # After the plan: a row command (next operand's ACT/PRE) when
            # the row run ends first, otherwise the instruction's final read
            # — a column command whose cycle the horizon gives exactly.
            row_end = run < remaining
            addr = self._next_read_addr(state)
            kind, earliest = self._required_earliest(addr, False, now + 1)
            if kind is not CommandType.RD:
                return
            is_write = False
            stages = state.total_write_columns > 0
            skip_first = state.read_classified_idx >= state.reads_issued
        else:
            # Drain tail.  Staging must be quiescent (everything staged) and
            # the throttle deterministic and currently permissive — both are
            # frozen while the plan lives (read-queue changes and throttle
            # swaps truncate it).
            if wb.empty or not state.writes_all_staged:
                return
            throttle = self.throttle
            if not throttle.deterministic:
                return
            if not throttle.would_allow(self.channel, self.rank, now + 1):
                return
            entries = wb._entries
            # Exclude the final drain (completion detection) and any pop
            # that would cross the low watermark (drain-phase exit).
            limit = min(len(entries) - 1,
                        len(entries) - self._wb_low_len - 1)
            if limit < 2:
                return
            addr = entries[0]
            kind, earliest = self._required_earliest(addr, True, now + 1)
            if kind is not CommandType.WR:
                return
            bank_index = addr.bank_index
            row = addr.row
            count = 1
            while count < limit:
                nxt = entries[count]
                if nxt.bank_index != bank_index or nxt.row != row:
                    break
                count += 1
            # Row change in the buffered run -> a row command follows;
            # otherwise the final (completion-detecting) drain, a column
            # command at exactly one cadence step past the plan.
            row_end = count < limit
            is_write = True
            stages = False
            skip_first = state.write_classified_idx >= state.writes_drained
        start = self._issue_horizon(self.channel, self.rank, earliest)
        step = self._burst_step
        # A host data burst scheduled to occupy the rank later on blocks the
        # concurrent-access gate mid-streak; plan only up to its start (the
        # window's own end is handled by the per-cycle wake logic).
        rt = self._rank_timing
        data_from = rt.data_busy_from
        if data_from > start:
            window_cap = (data_from - start - 1) // step + 1
            if count > window_cap:
                count = window_cap
                row_end = False  # the stream resumes past the host window
        if not is_write and stages:
            bound, flipped = self._read_plan_stage_bound(state, count)
            if flipped:
                count = bound
                # Drains gain priority right after the flip (and, under a
                # stochastic throttle, start drawing RNG every host-free
                # cycle): resume per-cycle processing immediately.
                row_end = True
        if self.refresh_enabled:
            # The concurrent-access gate blocks NDA issue from the rank's
            # refresh-due cycle onward (the NDA defers to refresh), so no
            # planned command may land at or past it.  ``refresh_due`` is
            # frozen while the plan lives: only a REF moves it, and every
            # host issue to the rank truncates the plan first.
            due = rt.refresh_due
            if due <= start:
                return  # refresh imminent: per-cycle path defers to it
            refresh_cap = (due - 1 - start) // step + 1
            if count > refresh_cap:
                count = refresh_cap
                row_end = True  # the gate blocks the continuation
        if count < 2:
            return
        plan = _BurstPlan(is_write, start, step, count,
                          self._banks[addr.bank_index],
                          addr.bank_index, addr.bank_group, stages,
                          skip_first)
        if not row_end:
            # The next command after the plan is another column command of
            # the streak: it cannot issue before one cadence step past the
            # last planned command composed with the (frozen) host-free
            # windows — park the wake exactly there instead of paying a
            # provable no-op wake at the horizon.
            last = plan.end - 1
            plan.end = self._issue_horizon(self.channel, self.rank,
                                           last + step)
        self._plan = plan
        self.bursts_planned += 1
        self.burst_commands_planned += count

    def _read_plan_stage_bound(self, state: _ExecutionState,
                               count: int) -> Tuple[int, bool]:
        """Truncate a read plan at the first drain-phase flip.

        Replays the per-cycle staging trajectory (the exact float
        comparisons of ``write_stage_allowed`` and the buffer watermarks)
        without mutating state: once a staged push crosses the drain-high
        watermark, drains gain priority on the following cycle, so the
        flipping read must be the plan's last command.  Returns
        ``(command bound, flipped)``.
        """
        tw = state.total_write_columns
        tr = max(1, state.total_read_columns)
        w = state.writes_staged
        drained = state.writes_drained
        cap = self.write_buffer.capacity
        flip_len = self._wb_flip_len
        r = state.reads_issued
        for k in range(1, count + 1):
            rr = r + k
            while w < tw and (w / tw < rr / tr) and (w - drained) < cap:
                w += 1
                if (w - drained) >= flip_len:
                    return k, True
        return count, False

    def settle_burst(self, upto: int) -> None:
        """Apply the timing effects of commands at cycles before ``upto``.

        The hot settlement path: the owning channel calls it (through the
        system's settle hook) before every FR-FCFS scan or command issue, so
        it updates exactly the state a scan can read — rank/bank timing
        horizons (last-command absolute values; all updates are monotone, so
        applying the aggregate is order-safe) and the probe-cache versions.
        Counters, the replicated FSM and staging are deferred to
        :meth:`_account_burst`: nothing reads them mid-plan, and one bulk
        update per plan beats one per elapsed boundary.
        """
        plan = self._plan
        done = plan.idx
        if upto <= plan.start + done * plan.step:
            return
        j = (upto - 1 - plan.start) // plan.step + 1
        if j > plan.count:
            j = plan.count
        if j <= done:
            return
        self._apply_settlement(plan, j)

    def _apply_settlement(self, plan: _BurstPlan, j: int) -> None:
        """Apply the state effects of settling ``plan`` through index ``j``.

        The single writer for settlement effects: :meth:`settle_burst`
        computes ``j`` scalar-wise, the kernel backend's
        :class:`~repro.kernel.settle.KernelBurstSettler` computes it as
        array arithmetic over all of a channel's plans — both apply through
        here, so the two backends cannot diverge on settlement state.
        ``j`` must be a settled-command count in ``(plan.idx, plan.count]``.
        """
        plan.idx = j
        c_last = plan.start + (j - 1) * plan.step
        timing = self.dram.timing
        t = timing.timing
        rt = self._rank_timing
        bank_timing = timing._banks[plan.bank_index]
        if plan.is_write:
            if c_last > rt.last_write_cycle:
                rt.last_write_cycle = c_last
                rt.last_write_bg = plan.bank_group
            bus = c_last + t.tCWL + t.tBL
            if bus > rt.nda_bus_free:
                rt.nda_bus_free = bus
            wtp = c_last + timing._write_to_precharge
            if wtp > bank_timing.pre_allowed:
                bank_timing.pre_allowed = wtp
        else:
            if c_last > rt.last_read_cycle:
                rt.last_read_cycle = c_last
                rt.last_read_bg = plan.bank_group
            if c_last > rt.last_nda_read_cycle:
                rt.last_nda_read_cycle = c_last
            bus = c_last + t.tCL + t.tBL
            if bus > rt.nda_bus_free:
                rt.nda_bus_free = bus
            rtp = c_last + t.tRTP
            if rtp > bank_timing.pre_allowed:
                bank_timing.pre_allowed = rtp
        # Version-keyed memo invalidation (equality-compared keys: one bump
        # per settlement batch suffices), plus the point-wise precharge-
        # horizon kill a column command performs on its own bank.
        timing._issue_versions[self._rank_index] += 1
        timing._pre_cache[plan.bank_index] = (-1, 0)
        self.dram.channel_issue_version[self.channel] += 1

    def _account_burst(self, plan: _BurstPlan) -> None:
        """Apply the deferred accounting for the plan's settled commands.

        Counters and FSM transitions are additive and staging's fixed point
        depends only on the final read cursor, so one bulk application per
        plan boundary is state-identical to per-command application.
        """
        done = plan.acc_idx
        dj = plan.idx - done
        if dj <= 0:
            return
        plan.acc_idx = plan.idx
        dram = self.dram
        counts = dram.counts
        bank = plan.bank
        # Every streak command is a row-buffer hit, classified (once per
        # access) at its issue — except a first command whose access was
        # already classified by its preceding row command.
        classified = dj - 1 if (done == 0 and plan.skip_first) else dj
        bank.row_hits += classified
        counts.nda_row_hits += classified
        cacheline = dram.org.cacheline_bytes
        state = self._active
        if plan.is_write:
            bank.nda_writes += classified
            counts.nda_writes += dj
            self.bytes_written += dj * cacheline
            self.write_buffer.pop_bulk(dj)
            state.writes_drained += dj
            state.write_classified_idx = state.writes_drained - 1
            self.fsm.apply_bulk("write_drained", dj)
            # One throttle decision per drained command, as the per-cycle
            # selective engine records (permissive by plan invariant).
            checks = getattr(self.throttle, "checks", None)
            if checks is not None:
                self.throttle.checks = checks + dj
        else:
            bank.nda_reads += classified
            counts.nda_reads += dj
            self.bytes_read += dj * cacheline
            state.reads_issued += dj
            state.read_classified_idx = state.reads_issued - 1
            self.fsm.apply_bulk("read_issued", dj)
            if plan.stages:
                self._stage_writes(state)
        self.commands_issued += dj
        self.burst_commands_settled += dj
        gate = self.gate_stats
        if gate is not None:
            gate.nda_issue_opportunities += dj

    def flush_burst(self, upto: int) -> None:
        """Settle timing *and* accounting up to ``upto`` (run-boundary
        flushes: results and measurement resets read the counters)."""
        plan = self._plan
        if plan is None:
            return
        self.settle_burst(upto)
        self._account_burst(plan)

    def cancel_burst(self, upto: int, cause: str) -> None:
        """Settle the elapsed prefix (< ``upto``) and drop the remainder.

        ``cause`` labels the truncation source in the burst diagnostics; a
        plan whose commands had all elapsed counts as completed instead.
        """
        plan = self._plan
        if plan is None:
            return
        self.settle_burst(upto)
        self._account_burst(plan)
        self._plan = None
        if plan.idx >= plan.count:
            self.bursts_completed += 1
        else:
            self.burst_truncations[cause] = (
                self.burst_truncations.get(cause, 0) + 1)

    def cancel_write_burst(self, upto: int, cause: str) -> None:
        """Truncate only a *write* plan (read-queue changes move the
        next-rank prediction but cannot perturb a read streak)."""
        plan = self._plan
        if plan is not None and plan.is_write:
            self.cancel_burst(upto, cause)
            listener = self.wake_listener
            if listener is not None:
                listener()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _refill(self, now: int) -> None:
        if self._active is not None or not self._queue:
            return
        work = self._queue.popleft()
        self._active = _ExecutionState(work, self.dram.org.columns_per_row)
        self.fsm.apply(
            "launch",
            instruction_id=work.instruction.instruction_id,
            reads=self._active.total_read_columns,
            writes=self._active.total_write_columns,
        )
        for pe in self.pes:
            if not pe.busy:
                pe.start(work.instruction)

    def _addr(self, flat_bank: int, row: int, column: int) -> DramAddress:
        org = self.dram.org
        banks_per_group = org.banks_per_group
        # _make (tuple.__new__) skips keyword/default processing; one address
        # is built per streamed access, which makes construction measurable.
        return DramAddress._make((
            self.channel,
            self.rank,
            flat_bank // banks_per_group,
            flat_bank % banks_per_group,
            row & (org.rows_per_bank - 1),
            column % org.columns_per_row,
            self._rank_index,
            self._bank_index_base + flat_bank,
        ))

    def _host_free_from(self, channel: int, rank: int, cycle: int) -> int:
        """Earliest host-free cycle >= ``cycle`` for this rank.

        Same walk as ``TimingEngine.next_host_free_cycle``, bound to this
        rank's timing-state object (signature kept for injected overrides).
        """
        state = self._rank_timing
        while True:
            if cycle < state.busy_until:
                cycle = state.busy_until
                continue
            if state.data_busy_from <= cycle < state.data_busy_until:
                cycle = state.data_busy_until
                continue
            return cycle

    def _host_wants_bank(self, addr: DramAddress) -> bool:
        if self._host_pending_to_bank is None:
            return False
        flat = addr.bank_group * self.dram.org.banks_per_group + addr.bank
        return self._host_pending_to_bank(self.channel, self.rank, flat)

    def _required_earliest(self, addr: DramAddress, is_write: bool,
                           now: int) -> Tuple[CommandType, int]:
        """(required command, its earliest issue cycle >= ``now``).

        Fused fast path of ``dram.required_command`` +
        ``timing.earliest_issue_at``: the bank state is read directly
        through the stamped index, and the rank-local horizon caches
        (ACT/PRE and NDA column commands) are consulted inline — probing
        these is the controller's single hottest operation, once per wake
        probe and once per issue attempt.
        """
        bank_index = addr.bank_index
        bank = self._banks[bank_index]
        if bank.state is BankState.CLOSED:
            kind = CommandType.ACT
            cache = self._act_cache
            versions = self._timing_row_versions
        elif bank.open_row == addr.row:
            if is_write:
                kind = CommandType.WR
                cache = self._nda_wr_cache
            else:
                kind = CommandType.RD
                cache = self._nda_rd_cache
            versions = self._timing_versions
        else:
            kind = CommandType.PRE
            cache = self._pre_cache
            versions = self._timing_row_versions
        cached = cache[bank_index]
        if cached[0] == versions[addr.rank_index]:
            earliest = cached[1]
            return kind, (earliest if earliest > now else now)
        return kind, self._timing_earliest_issue_at(kind, addr,
                                                    RequestSource.NDA, now)

    def _issue_toward(self, addr: DramAddress, is_write: bool, now: int,
                      classify: bool = False) -> Optional[CommandType]:
        """Issue the next command (PRE/ACT/column) needed for an access.

        Returns the issued command kind, or None when nothing could issue
        (the access is still pending and did not consume this cycle's issue
        slot).  ``classify`` records the row-buffer outcome of the access
        (hit/miss/conflict) just before its first command issues, so the
        outcome reflects the bank state the access found.
        """
        kind, earliest = self._required_earliest(addr, is_write, now)
        if kind.is_row and self._host_wants_bank(addr):
            # Host row commands take priority on contended banks.  The block
            # lifts when the host queue changes, which only happens at
            # engine-processed cycles — retry at the next opportunity.
            self.cycles_blocked_by_host += 1
            return None
        if earliest > now:
            return None
        if classify:
            self.dram.record_access_outcome(addr, is_write, is_nda=True)
        # required_command + the probe above are exactly the issue-time
        # legality checks; nothing issued in between.
        self.dram.issue_trusted(Command(kind, addr, RequestSource.NDA), now)
        self.commands_issued += 1
        return kind

    def _next_read_addr(self, state: _ExecutionState) -> DramAddress:
        idx = state.reads_issued
        if state._read_addr_idx == idx:
            return state._read_addr
        bank, row, column = state.next_read()
        addr = self._addr(bank, row, column)
        state._read_addr_idx = idx
        state._read_addr = addr
        return addr

    def _try_read(self, now: int, state: _ExecutionState) -> bool:
        addr = self._next_read_addr(state)
        classify = state.reads_issued > state.read_classified_idx
        issued = self._issue_toward(addr, is_write=False, now=now,
                                    classify=classify)
        if issued is None:
            return False
        if classify:
            state.read_classified_idx = state.reads_issued
        if issued.is_column:
            state.advance_read()
            self.bytes_read += self.dram.org.cacheline_bytes
            self.fsm.apply("read_issued")
            return True
        return False

    def _stage_writes(self, state: _ExecutionState) -> None:
        while (not state.writes_all_staged and state.write_stage_allowed()
               and not self.write_buffer.full):
            bank, row, column = state.next_write()
            if self.write_buffer.push(self._addr(bank, row, column)):
                state.advance_write_staged()
                self.fsm.apply("write_buffered")
            else:  # pragma: no cover - full buffer already checked
                break
        if state.reads_done and not self.write_buffer.empty:
            if not self.write_buffer.draining:
                self.write_buffer.force_drain()
                self.fsm.apply("drain_start")

    def _try_drain_write(self, now: int, state: _ExecutionState) -> bool:
        addr = self.write_buffer.peek()
        if addr is None:
            return False
        if not self.throttle.allow_write(self.channel, self.rank, now):
            self.cycles_blocked_by_throttle += 1
            return False
        classify = state.writes_drained > state.write_classified_idx
        issued = self._issue_toward(addr, is_write=True, now=now,
                                    classify=classify)
        if issued is None:
            return False
        if classify:
            state.write_classified_idx = state.writes_drained
        if issued.is_column:
            self.write_buffer.pop()
            state.advance_write_drained()
            self.bytes_written += self.dram.org.cacheline_bytes
            self.fsm.apply("write_drained")
            return True
        return False

    def _complete_active(self, now: int) -> None:
        state = self._active
        assert state is not None
        work = state.work
        work.completed_cycle = now
        self._active = None
        self.instructions_completed += 1
        self.fsm.apply("complete")
        for pe in self.pes:
            if pe.busy:
                pe.finish()
        if work.on_complete is not None:
            work.on_complete(now)

    # ------------------------------------------------------------------ #
    # Event-engine interface
    # ------------------------------------------------------------------ #

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which this controller may act.

        The contract (see ``engine/``): for every cycle strictly before the
        returned value, calling ``try_issue``/``post_cycle`` would neither
        issue a command, classify an access, consume throttle RNG, nor
        complete an instruction — so the event engine may skip those cycles.
        Drains under a non-deterministic throttle pin the wake-up to every
        host-free cycle so RNG draws land on exactly the same cycles as in
        the cycle-by-cycle loop.

        Access wake-ups combine the DRAM timing horizon of the required
        command with the rank's host-busy windows (the concurrent-access
        gate).  Exact under the fast-forward contract: both inputs are
        frozen until the next command issues to the rank — and every such
        issue either is this controller's own (the engine re-polls ran
        units) or arrives as a host-issue dirty notification, so the unit
        is re-polled in time.

        While a burst plan is live the unit's entire activity up to the
        burst horizon is the plan itself (settled lazily), so the wake is
        the horizon: the cycle after the plan's last command, where
        per-cycle processing resumes.
        """
        plan = self._plan
        if plan is not None:
            return plan.end if plan.end > now else now
        state = self._active
        if state is None:
            if not self._queue:
                # Idle ranks stay idle until new work arrives; delivery
                # fires wake_listener, so the engine re-polls in time.
                return _NO_EVENT
            # Refill (and the first command of the new work item) happens at
            # the next issue opportunity.
            return self._issue_horizon(self.channel, self.rank, now)
        wake = _NO_EVENT
        drain_pending = (not self.write_buffer.empty
                         and (self.write_buffer.draining or state.reads_done))
        if drain_pending:
            if not self.throttle.deterministic:
                wake = self._issue_horizon(self.channel, self.rank, now)
            elif self.throttle.would_allow(self.channel, self.rank, now):
                addr = self.write_buffer.peek()
                kind, earliest = self._required_earliest(addr, True, now)
                if kind.is_row and self._host_wants_bank(addr):
                    # Blocked on the host queue: poll at each opportunity.
                    wake = self._issue_horizon(self.channel, self.rank, now)
                else:
                    wake = self._issue_horizon(self.channel, self.rank, earliest)
            # else: throttled — the block only lifts when the host queue
            # changes: either a read to this rank issues (a host-issue
            # dirty notification re-polls this unit) or an enqueue makes
            # the prediction stricter (which can only delay the drain).
        if not state.reads_done:
            addr = self._next_read_addr(state)
            kind, earliest = self._required_earliest(addr, False, now)
            if kind.is_row and self._host_wants_bank(addr):
                candidate = self._issue_horizon(self.channel, self.rank, now)
            else:
                candidate = self._issue_horizon(self.channel, self.rank, earliest)
            if candidate < wake:
                wake = candidate
        return wake

    def reset_measurement(self) -> None:
        """Zero measurement counters at the warmup boundary."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.commands_issued = 0
        self.cycles_blocked_by_host = 0
        self.cycles_blocked_by_throttle = 0
        self.instructions_completed = 0
        for pe in self.pes:
            pe.stats = type(pe.stats)()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def burst_stats(self) -> Dict[str, object]:
        """Burst-issue diagnostics (cumulative; reported by bench_engine)."""
        return {
            "bursts_planned": self.bursts_planned,
            "commands_planned": self.burst_commands_planned,
            "commands_settled": self.burst_commands_settled,
            "bursts_completed": self.bursts_completed,
            "truncations": dict(self.burst_truncations),
        }

    def stats(self) -> Dict[str, float]:
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "commands": self.commands_issued,
            "instructions_completed": self.instructions_completed,
            "blocked_by_host": self.cycles_blocked_by_host,
            "blocked_by_throttle": self.cycles_blocked_by_throttle,
            "write_buffer_occupancy": len(self.write_buffer),
        }
