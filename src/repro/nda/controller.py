"""Per-rank NDA memory controller.

Each rank's NDA controller executes coarse-grain NDA instructions by
streaming their operands through the rank's banks (PE execution flow of
Figure 9): per 1 KiB-per-chip batch it reads each input operand's row,
stages the result cache lines in the write buffer, and drains the buffer
opportunistically.  The controller issues DRAM commands *locally* (they use
rank-internal bandwidth, not the channel), always defers to host traffic on
its rank, never issues a row command against a bank with pending host
requests, and applies the configured write-throttle policy to drains
(Sections III-B and V).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.config import NdaConfig
from repro.dram.bank import BankState
from repro.dram.commands import Command, CommandType, DramAddress, RequestSource
from repro.dram.device import DramSystem
from repro.nda.fsm import ReplicatedFsm
from repro.nda.isa import NdaInstruction
from repro.nda.pe import ProcessingElement
from repro.nda.throttle import IssueIfIdlePolicy, WriteThrottlePolicy
from repro.nda.write_buffer import NdaWriteBuffer

#: Sentinel for "no wake-up needed" horizons (matches the engine's INFINITY).
_NO_EVENT = 1 << 62


@dataclass
class RankWorkItem:
    """An NDA instruction bound to concrete banks/rows of one rank.

    ``operand_banks``/``operand_base_rows`` give, for every streamed input
    operand, the flat bank index and the starting row; ``output_bank`` and
    ``output_base_row`` locate the result vector (``None`` for reductions).
    ``on_complete`` is invoked with the completion cycle.
    """

    instruction: NdaInstruction
    operand_banks: List[int]
    operand_base_rows: List[int]
    output_bank: Optional[int] = None
    output_base_row: Optional[int] = None
    on_complete: Optional[Callable[[int], None]] = None
    launched_cycle: int = 0
    completed_cycle: Optional[int] = None


class _ExecutionState:
    """Progress of the work item currently executing on a rank."""

    def __init__(self, work: RankWorkItem, columns_per_row: int) -> None:
        self.work = work
        self.columns_per_row = columns_per_row
        instruction = work.instruction
        self.total_read_columns = instruction.read_cache_blocks
        self.total_write_columns = instruction.write_cache_blocks
        self.reads_issued = 0
        self.writes_staged = 0
        self.writes_drained = 0
        # Index of the last read / drained write whose row-buffer outcome has
        # been classified.  Each access is classified exactly once, at the
        # moment its first DRAM command issues (so the hit/miss/conflict
        # outcome reflects the bank state the access found).
        self.read_classified_idx = -1
        self.write_classified_idx = -1
        # Read phase bookkeeping: operands are streamed one row (batch) at a
        # time, operand after operand within a batch.
        self.num_operands = max(1, len(work.operand_banks))
        per_operand = (self.total_read_columns + self.num_operands - 1) // self.num_operands
        self.columns_per_operand = max(1, per_operand)
        # Memo of write_stage_allowed keyed on its inputs: the predicate is
        # probed every cycle per rank but its inputs only move on progress.
        self._stage_memo = (-1, -1, False)
        # Decoded target of the next read access, keyed by the read cursor:
        # recomputed only when the cursor moves; blocked attempts and wake
        # probes reuse the immutable address.
        self._read_addr_idx = -1
        self._read_addr: Optional[DramAddress] = None

    # -- reads ------------------------------------------------------------ #

    @property
    def reads_done(self) -> bool:
        return self.reads_issued >= self.total_read_columns

    def next_read(self) -> Tuple[int, int, int]:
        """(flat bank, row, column) of the next read access."""
        # Column index within the whole instruction, mapped to operand and
        # then to (row, column) within the operand's row sequence.
        idx = self.reads_issued
        batch_cols = self.columns_per_row
        batch = idx // (self.num_operands * batch_cols)
        within = idx % (self.num_operands * batch_cols)
        operand = within // batch_cols
        column = within % batch_cols
        operand = min(operand, self.num_operands - 1)
        bank = self.work.operand_banks[operand]
        row = self.work.operand_base_rows[operand] + batch
        return bank, row, column

    def advance_read(self) -> None:
        self.reads_issued += 1

    # -- writes ------------------------------------------------------------ #

    @property
    def writes_all_staged(self) -> bool:
        return self.writes_staged >= self.total_write_columns

    @property
    def writes_done(self) -> bool:
        return self.writes_drained >= self.total_write_columns

    def next_write(self) -> Tuple[int, int, int]:
        idx = self.writes_staged
        column = idx % self.columns_per_row
        row_offset = idx // self.columns_per_row
        bank = self.work.output_bank if self.work.output_bank is not None else 0
        base_row = self.work.output_base_row or 0
        return bank, base_row + row_offset, column

    def advance_write_staged(self) -> None:
        self.writes_staged += 1

    def advance_write_drained(self) -> None:
        self.writes_drained += 1

    @property
    def complete(self) -> bool:
        return self.reads_done and self.writes_done

    def write_stage_allowed(self) -> bool:
        """Results may only be staged for data that has been read (pipelined)."""
        if self.total_write_columns == 0:
            return False
        memo = self._stage_memo
        if memo[0] == self.reads_issued and memo[1] == self.writes_staged:
            return memo[2]
        read_progress = self.reads_issued / max(1, self.total_read_columns)
        write_progress = self.writes_staged / max(1, self.total_write_columns)
        allowed = write_progress < read_progress or self.reads_done
        self._stage_memo = (self.reads_issued, self.writes_staged, allowed)
        return allowed


class NdaRankController:
    """NDA memory controller and PE group of one rank."""

    def __init__(self, channel: int, rank: int, dram: DramSystem,
                 config: Optional[NdaConfig] = None,
                 allowed_banks: Optional[List[int]] = None,
                 throttle: Optional[WriteThrottlePolicy] = None,
                 host_pending_to_bank: Optional[Callable[[int, int, int], bool]] = None,
                 issue_horizon: Optional[Callable[[int, int, int], int]] = None,
                 ) -> None:
        self.channel = channel
        self.rank = rank
        self.dram = dram
        # Dense indices of this rank, matching the stamps the timing engine
        # and DRAM device use for their flat state arrays.
        self._rank_index = channel * dram.org.ranks_per_channel + rank
        self._bank_index_base = self._rank_index * dram.org.banks_per_rank
        # Bound hot probes (timing-only semantics, as the command path used),
        # plus direct references to the bank list and the timing engine's
        # rank-local probe caches (lists mutated in place, never
        # reassigned): every local address is stamped, so the required
        # command and — on cache hits — its earliest issue cycle are read
        # inline without a call (see _required_earliest).
        self._timing_earliest_issue_at = dram.timing.earliest_issue_at
        self._banks = dram._banks
        self._timing_versions = dram.timing._issue_versions
        self._act_cache = dram.timing._act_cache
        self._pre_cache = dram.timing._pre_cache
        self._nda_rd_cache = dram.timing._nda_rd_cache
        self._nda_wr_cache = dram.timing._nda_wr_cache
        self.config = config or NdaConfig()
        self.allowed_banks = allowed_banks or list(range(dram.org.banks_per_rank))
        self.throttle = throttle or IssueIfIdlePolicy()
        self._host_pending_to_bank = host_pending_to_bank
        # Host-free horizon: injected override, or an inline walk over this
        # rank's (stable) timing-state object — called once or twice per
        # wake probe, where the generic rank_state lookup is measurable.
        self._rank_timing = dram.timing.rank_state(channel, rank)
        self._issue_horizon = issue_horizon or self._host_free_from
        self.write_buffer = NdaWriteBuffer(self.config.write_buffer_entries)
        self.fsm = ReplicatedFsm(channel, rank)
        self.pes = [ProcessingElement(chip, self.config)
                    for chip in range(dram.org.chips_per_rank)]
        self._queue: Deque[RankWorkItem] = deque()
        self._active: Optional[_ExecutionState] = None
        #: Selective-wake notification: invoked whenever work is delivered,
        #: so the engine re-polls (and, when eligible, runs) this rank's
        #: unit on the delivery cycle.  The engine re-polls after every run
        #: and on host-issue notifications, so :meth:`next_event_cycle` is
        #: only ever called when its inputs actually changed — the old
        #: issue-version-tagged wake cache is gone.
        self.wake_listener: Optional[Callable[[], None]] = None
        # Statistics
        self.bytes_read = 0
        self.bytes_written = 0
        self.commands_issued = 0
        self.cycles_blocked_by_host = 0
        self.cycles_blocked_by_throttle = 0
        self.instructions_completed = 0

    # ------------------------------------------------------------------ #
    # Work submission
    # ------------------------------------------------------------------ #

    def enqueue(self, work: RankWorkItem, now: int = 0) -> None:
        work.launched_cycle = now
        self._queue.append(work)
        listener = self.wake_listener
        if listener is not None:
            listener()

    @property
    def pending_instructions(self) -> int:
        return len(self._queue) + (1 if self._active is not None else 0)

    @property
    def busy(self) -> bool:
        return self._active is not None or bool(self._queue)

    def set_throttle(self, policy: WriteThrottlePolicy) -> None:
        self.throttle = policy
        # Throttle behaviour feeds the wake computation; re-poll.
        listener = self.wake_listener
        if listener is not None:
            listener()

    # ------------------------------------------------------------------ #
    # Cycle advance: called by the system when the rank may issue an NDA
    # command (the host did not use the rank this cycle).
    # ------------------------------------------------------------------ #

    def try_issue(self, now: int) -> bool:
        """Attempt to issue one NDA DRAM command; returns True on issue."""
        state = self._active
        if state is None:
            if not self._queue:
                return False
            self._refill(now)
            state = self._active

        # Drain has priority when the buffer asks for it or reads are done.
        if not self.write_buffer.empty and (self.write_buffer.draining
                                            or state.reads_done):
            if self._try_drain_write(now, state):
                return True
            # A blocked drain should not starve remaining reads forever.
        if not state.reads_done:
            if self._try_read(now, state):
                return True
        # Stage produced results into the write buffer (no DRAM command) and
        # retry the drain path if reads cannot make progress.
        self._stage_writes(state)
        if not self.write_buffer.empty and state.reads_done:
            return self._try_drain_write(now, state)
        return False

    def post_cycle(self, now: int) -> None:
        """End-of-cycle bookkeeping: staging, completion detection."""
        state = self._active
        if state is None:
            return
        self._stage_writes(state)
        if state.reads_done and self.write_buffer.empty and state.writes_done:
            self._complete_active(now)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _refill(self, now: int) -> None:
        if self._active is not None or not self._queue:
            return
        work = self._queue.popleft()
        self._active = _ExecutionState(work, self.dram.org.columns_per_row)
        self.fsm.apply(
            "launch",
            instruction_id=work.instruction.instruction_id,
            reads=self._active.total_read_columns,
            writes=self._active.total_write_columns,
        )
        for pe in self.pes:
            if not pe.busy:
                pe.start(work.instruction)

    def _addr(self, flat_bank: int, row: int, column: int) -> DramAddress:
        org = self.dram.org
        banks_per_group = org.banks_per_group
        # _make (tuple.__new__) skips keyword/default processing; one address
        # is built per streamed access, which makes construction measurable.
        return DramAddress._make((
            self.channel,
            self.rank,
            flat_bank // banks_per_group,
            flat_bank % banks_per_group,
            row & (org.rows_per_bank - 1),
            column % org.columns_per_row,
            self._rank_index,
            self._bank_index_base + flat_bank,
        ))

    def _host_free_from(self, channel: int, rank: int, cycle: int) -> int:
        """Earliest host-free cycle >= ``cycle`` for this rank.

        Same walk as ``TimingEngine.next_host_free_cycle``, bound to this
        rank's timing-state object (signature kept for injected overrides).
        """
        state = self._rank_timing
        while True:
            if cycle < state.busy_until:
                cycle = state.busy_until
                continue
            if state.data_busy_from <= cycle < state.data_busy_until:
                cycle = state.data_busy_until
                continue
            return cycle

    def _host_wants_bank(self, addr: DramAddress) -> bool:
        if self._host_pending_to_bank is None:
            return False
        flat = addr.bank_group * self.dram.org.banks_per_group + addr.bank
        return self._host_pending_to_bank(self.channel, self.rank, flat)

    def _required_earliest(self, addr: DramAddress, is_write: bool,
                           now: int) -> Tuple[CommandType, int]:
        """(required command, its earliest issue cycle >= ``now``).

        Fused fast path of ``dram.required_command`` +
        ``timing.earliest_issue_at``: the bank state is read directly
        through the stamped index, and the rank-local horizon caches
        (ACT/PRE and NDA column commands) are consulted inline — probing
        these is the controller's single hottest operation, once per wake
        probe and once per issue attempt.
        """
        bank_index = addr.bank_index
        bank = self._banks[bank_index]
        if bank.state is BankState.CLOSED:
            kind = CommandType.ACT
            cache = self._act_cache
        elif bank.open_row == addr.row:
            if is_write:
                kind = CommandType.WR
                cache = self._nda_wr_cache
            else:
                kind = CommandType.RD
                cache = self._nda_rd_cache
        else:
            kind = CommandType.PRE
            cache = self._pre_cache
        cached = cache[bank_index]
        if cached[0] == self._timing_versions[addr.rank_index]:
            earliest = cached[1]
            return kind, (earliest if earliest > now else now)
        return kind, self._timing_earliest_issue_at(kind, addr,
                                                    RequestSource.NDA, now)

    def _issue_toward(self, addr: DramAddress, is_write: bool, now: int,
                      classify: bool = False) -> Optional[CommandType]:
        """Issue the next command (PRE/ACT/column) needed for an access.

        Returns the issued command kind, or None when nothing could issue
        (the access is still pending and did not consume this cycle's issue
        slot).  ``classify`` records the row-buffer outcome of the access
        (hit/miss/conflict) just before its first command issues, so the
        outcome reflects the bank state the access found.
        """
        kind, earliest = self._required_earliest(addr, is_write, now)
        if kind.is_row and self._host_wants_bank(addr):
            # Host row commands take priority on contended banks.  The block
            # lifts when the host queue changes, which only happens at
            # engine-processed cycles — retry at the next opportunity.
            self.cycles_blocked_by_host += 1
            return None
        if earliest > now:
            return None
        if classify:
            self.dram.record_access_outcome(addr, is_write, is_nda=True)
        # required_command + the probe above are exactly the issue-time
        # legality checks; nothing issued in between.
        self.dram.issue_trusted(Command(kind, addr, RequestSource.NDA), now)
        self.commands_issued += 1
        return kind

    def _next_read_addr(self, state: _ExecutionState) -> DramAddress:
        idx = state.reads_issued
        if state._read_addr_idx == idx:
            return state._read_addr
        bank, row, column = state.next_read()
        addr = self._addr(bank, row, column)
        state._read_addr_idx = idx
        state._read_addr = addr
        return addr

    def _try_read(self, now: int, state: _ExecutionState) -> bool:
        addr = self._next_read_addr(state)
        classify = state.reads_issued > state.read_classified_idx
        issued = self._issue_toward(addr, is_write=False, now=now,
                                    classify=classify)
        if issued is None:
            return False
        if classify:
            state.read_classified_idx = state.reads_issued
        if issued.is_column:
            state.advance_read()
            self.bytes_read += self.dram.org.cacheline_bytes
            self.fsm.apply("read_issued")
            return True
        return False

    def _stage_writes(self, state: _ExecutionState) -> None:
        while (not state.writes_all_staged and state.write_stage_allowed()
               and not self.write_buffer.full):
            bank, row, column = state.next_write()
            if self.write_buffer.push(self._addr(bank, row, column)):
                state.advance_write_staged()
                self.fsm.apply("write_buffered")
            else:  # pragma: no cover - full buffer already checked
                break
        if state.reads_done and not self.write_buffer.empty:
            if not self.write_buffer.draining:
                self.write_buffer.force_drain()
                self.fsm.apply("drain_start")

    def _try_drain_write(self, now: int, state: _ExecutionState) -> bool:
        addr = self.write_buffer.peek()
        if addr is None:
            return False
        if not self.throttle.allow_write(self.channel, self.rank, now):
            self.cycles_blocked_by_throttle += 1
            return False
        classify = state.writes_drained > state.write_classified_idx
        issued = self._issue_toward(addr, is_write=True, now=now,
                                    classify=classify)
        if issued is None:
            return False
        if classify:
            state.write_classified_idx = state.writes_drained
        if issued.is_column:
            self.write_buffer.pop()
            state.advance_write_drained()
            self.bytes_written += self.dram.org.cacheline_bytes
            self.fsm.apply("write_drained")
            return True
        return False

    def _complete_active(self, now: int) -> None:
        state = self._active
        assert state is not None
        work = state.work
        work.completed_cycle = now
        self._active = None
        self.instructions_completed += 1
        self.fsm.apply("complete")
        for pe in self.pes:
            if pe.busy:
                pe.finish()
        if work.on_complete is not None:
            work.on_complete(now)

    # ------------------------------------------------------------------ #
    # Event-engine interface
    # ------------------------------------------------------------------ #

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which this controller may act.

        The contract (see ``engine/``): for every cycle strictly before the
        returned value, calling ``try_issue``/``post_cycle`` would neither
        issue a command, classify an access, consume throttle RNG, nor
        complete an instruction — so the event engine may skip those cycles.
        Drains under a non-deterministic throttle pin the wake-up to every
        host-free cycle so RNG draws land on exactly the same cycles as in
        the cycle-by-cycle loop.

        Access wake-ups combine the DRAM timing horizon of the required
        command with the rank's host-busy windows (the concurrent-access
        gate).  Exact under the fast-forward contract: both inputs are
        frozen until the next command issues to the rank — and every such
        issue either is this controller's own (the engine re-polls ran
        units) or arrives as a host-issue dirty notification, so the unit
        is re-polled in time.
        """
        state = self._active
        if state is None:
            if not self._queue:
                # Idle ranks stay idle until new work arrives; delivery
                # fires wake_listener, so the engine re-polls in time.
                return _NO_EVENT
            # Refill (and the first command of the new work item) happens at
            # the next issue opportunity.
            return self._issue_horizon(self.channel, self.rank, now)
        wake = _NO_EVENT
        drain_pending = (not self.write_buffer.empty
                         and (self.write_buffer.draining or state.reads_done))
        if drain_pending:
            if not self.throttle.deterministic:
                wake = self._issue_horizon(self.channel, self.rank, now)
            elif self.throttle.would_allow(self.channel, self.rank, now):
                addr = self.write_buffer.peek()
                kind, earliest = self._required_earliest(addr, True, now)
                if kind.is_row and self._host_wants_bank(addr):
                    # Blocked on the host queue: poll at each opportunity.
                    wake = self._issue_horizon(self.channel, self.rank, now)
                else:
                    wake = self._issue_horizon(self.channel, self.rank, earliest)
            # else: throttled — the block only lifts when the host queue
            # changes: either a read to this rank issues (a host-issue
            # dirty notification re-polls this unit) or an enqueue makes
            # the prediction stricter (which can only delay the drain).
        if not state.reads_done:
            addr = self._next_read_addr(state)
            kind, earliest = self._required_earliest(addr, False, now)
            if kind.is_row and self._host_wants_bank(addr):
                candidate = self._issue_horizon(self.channel, self.rank, now)
            else:
                candidate = self._issue_horizon(self.channel, self.rank, earliest)
            if candidate < wake:
                wake = candidate
        return wake

    def reset_measurement(self) -> None:
        """Zero measurement counters at the warmup boundary."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.commands_issued = 0
        self.cycles_blocked_by_host = 0
        self.cycles_blocked_by_throttle = 0
        self.instructions_completed = 0
        for pe in self.pes:
            pe.stats = type(pe.stats)()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def stats(self) -> Dict[str, float]:
        return {
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "commands": self.commands_issued,
            "instructions_completed": self.instructions_completed,
            "blocked_by_host": self.cycles_blocked_by_host,
            "blocked_by_throttle": self.cycles_blocked_by_throttle,
            "write_buffer_occupancy": len(self.write_buffer),
        }
