"""Memory access modes compared in the paper's evaluation.

* ``SHARED`` — host and NDAs interleave accesses to the same banks with no
  partitioning (the "Shared" bars of Figure 11).
* ``BANK_PARTITIONED`` — Chopim's proposal: a small number of banks per rank
  is reserved for the shared host/NDA region; host-only data never touches
  them (Section III-C, the "Partitioned" bars of Figure 11).
* ``RANK_PARTITIONED`` — the prior-work baseline: ranks are statically split
  between host and NDAs (Figure 14).
* ``HOST_ONLY`` — no NDA activity (baselines of Figures 2 and 15).
* ``NDA_ONLY`` — no host traffic (idealized NDA bandwidth reference).
"""

from __future__ import annotations

import enum
from typing import List, Tuple


class AccessMode(enum.Enum):
    SHARED = "shared"
    BANK_PARTITIONED = "bank_partitioned"
    RANK_PARTITIONED = "rank_partitioned"
    HOST_ONLY = "host_only"
    NDA_ONLY = "nda_only"

    @property
    def has_host_traffic(self) -> bool:
        return self is not AccessMode.NDA_ONLY

    @property
    def has_nda_traffic(self) -> bool:
        return self is not AccessMode.HOST_ONLY

    @property
    def uses_bank_partitioning(self) -> bool:
        return self is AccessMode.BANK_PARTITIONED


def split_ranks_for_partitioning(ranks_per_channel: int) -> Tuple[List[int], List[int]]:
    """(host ranks, NDA ranks) for rank partitioning: an even static split.

    The paper assumes ranks are evenly partitioned between the host and NDAs;
    with an odd rank count the host receives the extra rank.
    """
    if ranks_per_channel <= 0:
        raise ValueError("ranks_per_channel must be positive")
    if ranks_per_channel == 1:
        return [0], []
    nda_count = ranks_per_channel // 2
    host_ranks = list(range(ranks_per_channel - nda_count))
    nda_ranks = list(range(ranks_per_channel - nda_count, ranks_per_channel))
    return host_ranks, nda_ranks
