"""Simulation statistics: host IPC, NDA bandwidth utilization, rank idleness.

The metrics mirror the paper's evaluation:

* **Host IPC** — aggregate instructions per CPU cycle over all cores
  (Figures 10-14 report this on the left axis).
* **NDA bandwidth utilization** — NDA bytes moved divided by the peak
  rank-internal bandwidth of all NDA-capable ranks over the run (right axis
  of the same figures), plus the *idealized* utilization: the fraction of
  rank-cycles the host left idle, which is the upper bound the paper
  compares against.
* **Rank idle-period histogram** — idle-gap durations bucketed as in
  Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.utils.histogram import BucketHistogram, IDLE_BUCKET_LABELS
from repro.utils.stats import Counter


class RankIdleTracker:
    """Tracks busy/idle periods of one rank from the host's perspective."""

    def __init__(self) -> None:
        self.histogram = BucketHistogram()
        self.busy_cycles = 0
        self.idle_cycles = 0
        self._idle_run = 0

    def observe(self, host_busy: bool) -> None:
        if host_busy:
            self.busy_cycles += 1
            if self._idle_run:
                self.histogram.add(self._idle_run)
                self._idle_run = 0
        else:
            self.idle_cycles += 1
            self._idle_run += 1

    def observe_run(self, host_busy: bool, cycles: int) -> None:
        """Observe ``cycles`` consecutive cycles with the same busy state.

        Bit-identical to calling :meth:`observe` ``cycles`` times; the event
        engine uses it to account for fast-forwarded windows in one step.
        """
        if cycles <= 0:
            return
        if host_busy:
            self.busy_cycles += cycles
            if self._idle_run:
                self.histogram.add(self._idle_run)
                self._idle_run = 0
        else:
            self.idle_cycles += cycles
            self._idle_run += cycles

    def finalize(self) -> None:
        if self._idle_run:
            self.histogram.add(self._idle_run)
            self._idle_run = 0

    def breakdown(self) -> Dict[str, float]:
        """Fractions of time busy / idle-by-bucket (the Figure 2 stack)."""
        self.finalize()
        total = self.busy_cycles + self.idle_cycles
        if total == 0:
            return {"Busy": 0.0, **{label: 0.0 for label in IDLE_BUCKET_LABELS}}
        result = {"Busy": self.busy_cycles / total}
        for label, weight in zip(self.histogram.labels, self.histogram.weights):
            result[label] = weight / total
        return result


@dataclass
class SimulationResult:
    """Summary of one simulation run."""

    cycles: int
    mode: str
    mix: Optional[str]
    host_ipc: float
    per_core_ipc: List[float]
    nda_bandwidth_gbs: float
    nda_bw_utilization: float
    idealized_bw_utilization: float
    nda_bytes: int
    host_reads: int
    host_writes: int
    nda_instructions_completed: int
    nda_operations_completed: int
    rank_idle_breakdown: Dict[str, Dict[str, float]]
    row_hit_rate_host: float
    row_hit_rate_nda: float
    avg_read_latency: float
    energy: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable one-run summary (used by the examples)."""
        lines = [
            f"mode={self.mode} mix={self.mix} cycles={self.cycles}",
            f"  host IPC (aggregate)      : {self.host_ipc:.3f}",
            f"  NDA bandwidth             : {self.nda_bandwidth_gbs:.2f} GB/s",
            f"  NDA BW utilization        : {self.nda_bw_utilization:.3f}"
            f" (idealized bound {self.idealized_bw_utilization:.3f})",
            f"  host row-hit rate         : {self.row_hit_rate_host:.3f}",
            f"  avg host read latency     : {self.avg_read_latency:.1f} cycles",
            f"  NDA instructions complete : {self.nda_instructions_completed}",
        ]
        if self.energy:
            lines.append(f"  memory power              : {self.energy.get('total_power_w', 0.0):.2f} W")
        return "\n".join(lines)


class SimulationStats:
    """Accumulates per-cycle observations during a run."""

    def __init__(self, config: SystemConfig, nda_rank_keys: List[Tuple[int, int]]) -> None:
        self.config = config
        self.counters = Counter()
        self.rank_trackers: Dict[Tuple[int, int], RankIdleTracker] = {}
        for ch in range(config.org.channels):
            for rk in range(config.org.ranks_per_channel):
                self.rank_trackers[(ch, rk)] = RankIdleTracker()
        self.nda_rank_keys = nda_rank_keys
        self.cycles_observed = 0

    def observe_cycle(self, rank_busy: Dict[Tuple[int, int], bool]) -> None:
        self.cycles_observed += 1
        for key, tracker in self.rank_trackers.items():
            tracker.observe(rank_busy.get(key, False))

    def observe_span(self, cycles: int,
                     runs_by_rank: Dict[Tuple[int, int], List[Tuple[bool, int]]],
                     ) -> None:
        """Observe a multi-cycle window in one call.

        ``runs_by_rank`` maps each rank to its (busy, cycle_count) runs over
        the window (see ``TimingEngine.host_busy_runs``).  Equivalent to
        ``cycles`` individual :meth:`observe_cycle` calls when the runs
        describe the same per-cycle busy states.
        """
        if cycles <= 0:
            return
        self.cycles_observed += cycles
        for key, tracker in self.rank_trackers.items():
            runs = runs_by_rank.get(key)
            if runs is None:
                tracker.observe_run(False, cycles)
                continue
            for busy, count in runs:
                tracker.observe_run(busy, count)

    # ------------------------------------------------------------------ #

    def idle_fraction(self, keys: Optional[List[Tuple[int, int]]] = None) -> float:
        keys = keys if keys is not None else list(self.rank_trackers)
        total_busy = 0
        total = 0
        for key in keys:
            tracker = self.rank_trackers[key]
            total_busy += tracker.busy_cycles
            total += tracker.busy_cycles + tracker.idle_cycles
        if total == 0:
            return 1.0
        return 1.0 - total_busy / total

    def rank_breakdowns(self) -> Dict[str, Dict[str, float]]:
        return {f"ch{ch}_rk{rk}": tracker.breakdown()
                for (ch, rk), tracker in self.rank_trackers.items()}

    def peak_rank_bytes_per_cycle(self) -> float:
        """Peak internal data-bus bytes per cycle of one rank."""
        org = self.config.org
        return org.cacheline_bytes / self.config.timing.tCCDS

    def nda_bw_utilization(self, nda_bytes: int) -> float:
        """NDA bytes relative to the peak bandwidth of the NDA-capable ranks."""
        if self.cycles_observed == 0 or not self.nda_rank_keys:
            return 0.0
        peak = (self.peak_rank_bytes_per_cycle() * len(self.nda_rank_keys)
                * self.cycles_observed)
        return nda_bytes / peak if peak > 0 else 0.0

    def idealized_bw_utilization(self) -> float:
        """Upper bound: the fraction of NDA-rank cycles the host left idle."""
        if not self.nda_rank_keys:
            return 0.0
        return self.idle_fraction(self.nda_rank_keys)

    def nda_bandwidth_gbs(self, nda_bytes: int) -> float:
        if self.cycles_observed == 0:
            return 0.0
        seconds = self.cycles_observed / (self.config.org.dram_clock_ghz * 1e9)
        return nda_bytes / seconds / 1e9 if seconds > 0 else 0.0
