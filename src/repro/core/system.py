"""Full-system Chopim simulator.

:class:`ChopimSystem` assembles the DDR4 device model, per-channel host
memory controllers, the multi-programmed host cores, the per-rank NDA
controllers, the host-side NDA controller and the statistics/energy models,
and advances them together in the DRAM command-clock domain.  The main loop
is driven by a simulation engine (see :mod:`repro.engine`): the default
event-driven engine fast-forwards over provably idle cycles, while
``engine="cycle"`` processes every cycle (the bit-exact regression
baseline; see ARCHITECTURE.md for the contract).

Typical usage::

    from repro import ChopimSystem, AccessMode
    from repro.nda.isa import NdaOpcode

    system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix1")
    system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 16)
    result = system.run(cycles=50_000)
    print(result.summary())
"""

from __future__ import annotations

import dataclasses
import os
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.addressing.bank_partition import BankPartitionMapping
from repro.addressing.mapping import AddressMapping, skylake_mapping
from repro.config import SystemConfig, default_config
from repro.core.energy import EnergyModel
from repro.core.modes import AccessMode, split_ranks_for_partitioning
from repro.core.scheduler import ConcurrentAccessScheduler
from repro.core.stats import SimulationResult, SimulationStats
from repro.dram.device import DramSystem
from repro.dram.timing import TimingEngine
from repro.engine.components import (
    ChannelComponent,
    HostComponent,
    NdaHostComponent,
    NdaRankComponent,
    StatsComponent,
)
from repro.engine.core import SimulationEngine, make_engine
from repro.host.core import CoreModel
from repro.host.mixes import mix_profiles
from repro.host.profiles import BenchmarkProfile
from repro.host.traffic import AddressStreamGenerator
from repro.memctrl.controller import ChannelController
from repro.memctrl.request import MemoryRequest
from repro.nda.controller import NdaRankController
from repro.nda.isa import NdaOpcode
from repro.nda.launch import NdaHostController, NdaOperation
from repro.nda.throttle import make_policy
from repro.utils.rng import DeterministicRng


@dataclasses.dataclass
class _NdaWorkloadSpec:
    """A continuously re-launched NDA kernel (the paper's methodology)."""

    opcode: NdaOpcode
    elements_per_rank: int
    cache_blocks: Optional[int]
    async_launch: bool
    matrix_columns: int = 0
    continuous: bool = True
    launches: int = 0


@dataclasses.dataclass
class NdaKernelSpec:
    """One step of a composite NDA workload (application kernels).

    Application workloads such as SVRG's average gradient, conjugate gradient
    or streamcluster are sequences of Table I operations; the system cycles
    through the sequence, re-launching it for as long as the simulation runs.
    """

    opcode: NdaOpcode
    elements_per_rank: int
    matrix_columns: int = 0
    cache_blocks: Optional[int] = None
    async_launch: bool = False


class ChopimSystem:
    """The simulated multi-core host + NDA-enabled DDR4 memory system."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 mode: AccessMode = AccessMode.SHARED,
                 mix: Optional[str] = "mix1",
                 profiles: Optional[Sequence[BenchmarkProfile]] = None,
                 throttle: str = "next_rank",
                 stochastic_probability: float = 0.25,
                 launch_packets_use_channel: bool = True,
                 collect_energy: bool = True,
                 engine: str = "event",
                 backend: str = "python",
                 stepper: Optional[bool] = None) -> None:
        self.config = config or default_config()
        self.config.validate()
        self.mode = mode
        self.mix = mix if profiles is None else None
        self.rng = DeterministicRng(self.config.seed, "system")
        self.collect_energy = collect_energy

        # ---- execution backend -------------------------------------------
        # ``backend`` selects the hot-path state representation:
        # ``"python"`` keeps the flat-list scalar core; ``"kernel"`` swaps
        # in the numpy array-resident timing engine, the batched FR-FCFS
        # vector scan and the vectorized burst settler (bit-identical
        # results; see repro.kernel and ARCHITECTURE.md "Kernel backend").
        if backend not in ("python", "kernel"):
            raise ValueError(
                f"unknown backend {backend!r}: expected 'python' or 'kernel'")
        self.backend = backend
        # Resident multi-cycle stepper (repro.kernel.stepper): advances whole
        # idle-except-channels windows in one fused call.  Auto-enabled on
        # the event engine + kernel backend; ``stepper=True`` demands it
        # (errors elsewhere), ``stepper=False`` / REPRO_DISABLE_STEPPER=1
        # forces the plain event engine for A/B runs.
        if stepper is None:
            stepper_active = (
                engine == "event" and backend == "kernel"
                and os.environ.get("REPRO_DISABLE_STEPPER", "")
                not in ("1", "true", "yes"))
        elif stepper:
            if engine != "event" or backend != "kernel":
                raise ValueError(
                    "stepper=True requires engine='event' and "
                    f"backend='kernel' (got engine={engine!r}, "
                    f"backend={backend!r})")
            stepper_active = True
        else:
            stepper_active = False
        self.stepper_enabled = stepper_active
        timing_cls: type = TimingEngine
        scheduler_factory = None
        if backend == "kernel":
            from repro.kernel import require_kernel
            require_kernel()
            from repro.kernel.scan import KernelFrFcfsScheduler
            from repro.kernel.timing_kernel import KernelTimingEngine
            timing_cls = KernelTimingEngine
            scheduler_factory = KernelFrFcfsScheduler

        org = self.config.org
        self.dram = DramSystem(org, self.config.timing, timing_cls=timing_cls)
        self.mapping = self._build_mapping()
        self.channel_controllers: Dict[int, ChannelController] = {
            ch: ChannelController(ch, self.dram, self.config.scheduler,
                                  scheduler_factory=scheduler_factory)
            for ch in range(org.channels)
        }
        self.scheduler = ConcurrentAccessScheduler(self.dram, self.channel_controllers)

        # ---- host cores --------------------------------------------------
        self.cores: List[CoreModel] = []
        self._core_backlog: List[Deque[MemoryRequest]] = []
        if mode.has_host_traffic:
            selected = list(profiles) if profiles is not None else mix_profiles(mix or "mix1")
            self._build_cores(selected)

        # ---- NDA controllers ----------------------------------------------
        self.rank_controllers: Dict[Tuple[int, int], NdaRankController] = {}
        self.nda_host: Optional[NdaHostController] = None
        self._throttle_name = throttle
        self._stochastic_probability = stochastic_probability
        self._launch_packets_use_channel = launch_packets_use_channel
        if mode.has_nda_traffic:
            self._build_nda(throttle, stochastic_probability, launch_packets_use_channel)

        self.stats = SimulationStats(self.config, list(self.rank_controllers.keys()))
        self.energy_model = EnergyModel(org, self.config.energy,
                                        timing=self.config.timing)
        self._nda_workload: Optional[_NdaWorkloadSpec] = None
        self._nda_sequence: Optional[List[NdaKernelSpec]] = None
        self._nda_sequence_index = 0
        self._nda_sequence_continuous = True
        self.now = 0
        self._measure_start = 0
        self._run_end: Optional[int] = None
        self._run_cycles = 0

        # ---- simulation engine -------------------------------------------
        # Schedulable units run in this (slot) order on every processed
        # cycle they are due, mirroring the legacy step() body: channels,
        # host cores, NDA host, per-rank NDA controllers, statistics.  The
        # event engine wakes only due-or-dirty units and fast-forwards over
        # cycles on which no unit can act.
        self.engine_kind = engine
        self._host_component = HostComponent(self)
        self._stats_component = StatsComponent(self)
        channel_components = [ChannelComponent(self, ch)
                              for ch in sorted(self.channel_controllers)]
        components: List[object] = list(channel_components)
        host_slot = len(components)
        components.append(self._host_component)
        nda_host_component: Optional[NdaHostComponent] = None
        rank_components: List[NdaRankComponent] = []
        if self.nda_host is not None:
            nda_host_component = NdaHostComponent(self)
            components.append(nda_host_component)
            for key, controller in self.rank_controllers.items():
                rank_components.append(NdaRankComponent(self, key, controller))
            components.extend(rank_components)
        components.append(self._stats_component)
        if stepper_active:
            from repro.kernel.stepper import StepperEventEngine

            self.engine: SimulationEngine = StepperEventEngine(components)
        else:
            self.engine = make_engine(engine, components)
        self._wire_wake_hub(components, channel_components, host_slot,
                            nda_host_component, rank_components)
        # Burst-issue fast path: event engine only (the cycle engine is the
        # per-cycle oracle), with REPRO_DISABLE_BURST=1 as the bit-exactness
        # escape hatch.  The hooks are only wired when active, so disabling
        # bursting restores the exact pre-burst hot paths.
        self.burst_enabled = (
            engine == "event"
            and bool(self.rank_controllers)
            and os.environ.get("REPRO_DISABLE_BURST", "") not in ("1", "true", "yes")
        )
        if self.burst_enabled:
            self._wire_burst(rank_components)
        # The stepper binds last: it aliases the kernel arrays and the
        # wired queues/schedulers, and (when the compiled core is live)
        # reroutes the per-channel FR-FCFS scans through the shared library.
        self.kernel_stepper = None
        if stepper_active:
            from repro.kernel.stepper import KernelStepper

            kernel_stepper = KernelStepper(self)
            self.engine.bind_stepper(kernel_stepper)
            kernel_stepper.bind_scan()
            self.kernel_stepper = kernel_stepper

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def _wire_wake_hub(self, components: List[object],
                       channel_components: List[ChannelComponent],
                       host_slot: int,
                       nda_host_component: Optional[NdaHostComponent],
                       rank_components: List[NdaRankComponent]) -> None:
        """Wire the push-based dirty notifications between schedulable units.

        The wake hub replaces the poll-everything loop: every state change
        that could move a unit's wake-up *earlier* notifies the affected
        slot.  The routes are:

        * enqueue into a channel controller (host cores, launch packets,
          runtime) -> that channel's unit;
        * a delivered demand-read completion -> the host unit (conditional:
          only when the delivered-to core's post-delivery wake beats the
          host unit's published calendar entry);
        * a host DRAM command issue -> the issued-to rank's NDA unit (via
          the concurrent-access scheduler, which observes every host issue);
        * NDA work delivery / ``NdaHostController.submit`` -> the receiving
          rank unit / the NDA host unit.
        """
        hub = self.engine.hub
        nda_host_slot = (components.index(nda_host_component)
                         if nda_host_component is not None else -1)
        for component in channel_components:
            component.bind_targets(host_slot, nda_host_slot)
        # Completion deliveries dirty the host unit conditionally from
        # HostComponent.deliver_completion (the outstanding-completion
        # horizon check) — no per-core listener needed.
        channel_slots = {component.channel: slot
                         for slot, component in enumerate(channel_components)}
        for ch, controller in self.channel_controllers.items():
            controller.wake_listener = hub.dirtier(channel_slots[ch])
            # Timed completions live in the host unit's completion calendar
            # (the outstanding-completion horizon): deliveries stop forcing
            # controller wakes entirely.
            controller.completion_sink = self._host_component.schedule_completion
        rank_slots: Dict[Tuple[int, int], int] = {}
        for component in rank_components:
            slot = components.index(component)
            rank_slots[component.key] = slot
            component.bind_targets(nda_host_slot)
            component.controller.wake_listener = hub.dirtier(slot)
        self.scheduler.bind_wake_hub(hub, rank_slots)
        if self.nda_host is not None:
            self.nda_host.wake_listener = hub.dirtier(nda_host_slot)

    def _wire_burst(self, rank_components: List[NdaRankComponent]) -> None:
        """Wire the burst-issue settlement and truncation routes.

        Settlement: each channel controller applies its ranks' planned
        command prefixes before any FR-FCFS scan or command issue reads the
        rank timing state.  Truncation: a host issue to a rank cancels that
        rank's plan (via the concurrent-access scheduler, which sees every
        host issue), and a read-queue change cancels the channel's *write*
        plans (the next-rank throttle reads the oldest queued read).
        """
        for component in rank_components:
            component.burst_enabled = True
        by_channel: Dict[int, List[NdaRankController]] = {}
        for (ch, _rk), controller in self.rank_controllers.items():
            controller.gate_stats = self.scheduler
            by_channel.setdefault(ch, []).append(controller)
        self.scheduler.bind_burst_controllers(self.rank_controllers)
        kernel_settler_cls = None
        if self.backend == "kernel":
            from repro.kernel.settle import KernelBurstSettler
            kernel_settler_cls = KernelBurstSettler
        for ch, channel_controller in self.channel_controllers.items():
            ranks = by_channel.get(ch)
            if not ranks:
                continue

            if kernel_settler_cls is not None:
                # Kernel backend: per-plan scalar eligibility walk; effects
                # apply through the shared scalar single-writer
                # (_apply_settlement).
                settle = kernel_settler_cls(ranks)
            else:
                def settle(upto: int, ranks=ranks) -> None:
                    for rc in ranks:
                        plan = rc._plan
                        # Inline the no-elapsed-commands fast path: this runs
                        # before every FR-FCFS scan/issue on the channel, and
                        # most boundaries fall between two planned commands.
                        if (plan is not None
                                and upto > plan.start + plan.idx * plan.step):
                            rc.settle_burst(upto)

            def truncate_writes(now: int, ranks=ranks) -> None:
                for rc in ranks:
                    rc.cancel_write_burst(now, "read_queue")

            channel_controller.burst_settler = settle
            channel_controller.read_queue_listener = truncate_writes

    def _build_mapping(self) -> AddressMapping:
        if self.mode.uses_bank_partitioning:
            return BankPartitionMapping(
                self.config.org,
                reserved_banks_per_rank=self.config.shared_banks_per_rank,
            )
        return skylake_mapping(self.config.org)

    def _host_capacity(self) -> int:
        if isinstance(self.mapping, BankPartitionMapping):
            return self.mapping.host_capacity_bytes
        return self.mapping.capacity_bytes

    def _build_cores(self, profiles: Sequence[BenchmarkProfile]) -> None:
        host_capacity = self._host_capacity()
        region_bytes = host_capacity // max(1, len(profiles))
        align = self.config.org.system_row_bytes
        region_bytes = (region_bytes // align) * align
        for core_id, profile in enumerate(profiles):
            rng = self.rng.spawn(f"core{core_id}.{profile.name}")
            traffic = AddressStreamGenerator(
                profile,
                region_base=core_id * region_bytes,
                region_bytes=region_bytes,
                rng=rng.spawn("traffic"),
                cacheline_bytes=self.config.org.cacheline_bytes,
            )
            self.cores.append(
                CoreModel(core_id, profile, traffic, self.config.host, rng)
            )
            self._core_backlog.append(deque())

    def _nda_rank_keys(self) -> List[Tuple[int, int]]:
        org = self.config.org
        if self.mode is AccessMode.RANK_PARTITIONED:
            _, nda_ranks = split_ranks_for_partitioning(org.ranks_per_channel)
            return [(ch, rk) for ch in range(org.channels) for rk in nda_ranks]
        return [(ch, rk) for ch in range(org.channels)
                for rk in range(org.ranks_per_channel)]

    def _nda_allowed_banks(self) -> List[int]:
        if isinstance(self.mapping, BankPartitionMapping):
            return list(self.mapping.reserved_banks)
        return list(range(self.config.org.banks_per_rank))

    def _build_nda(self, throttle: str, probability: float,
                   launch_packets_use_channel: bool) -> None:
        allowed_banks = self._nda_allowed_banks()
        policy = make_policy(
            throttle,
            rng=self.rng.spawn("stochastic_issue"),
            probability=probability,
            host_controllers=self.channel_controllers,
        )
        self.throttle_policy = policy
        for key in self._nda_rank_keys():
            ch, rk = key
            controller = NdaRankController(
                channel=ch, rank=rk, dram=self.dram, config=self.config.nda,
                allowed_banks=allowed_banks, throttle=policy,
                host_pending_to_bank=self.scheduler.host_pending_to_bank,
            )
            controller.refresh_enabled = self.config.scheduler.refresh_enabled
            self.rank_controllers[key] = controller
        self.nda_host = NdaHostController(
            self.dram, self.channel_controllers, self.rank_controllers,
            config=self.config.nda,
            launch_packets_use_channel=launch_packets_use_channel,
        )

    # ------------------------------------------------------------------ #
    # Workload control
    # ------------------------------------------------------------------ #

    def set_nda_workload(self, opcode: NdaOpcode, elements_per_rank: int,
                         cache_blocks: Optional[int] = None,
                         async_launch: bool = False,
                         matrix_columns: int = 0,
                         continuous: bool = True) -> None:
        """Configure an NDA kernel that is (re-)launched whenever the NDAs idle.

        This matches the paper's methodology: "If an NDA workload completes
        while the simulation is still running, it is relaunched so that
        concurrent access occurs throughout the simulation time."
        """
        if not self.mode.has_nda_traffic:
            raise RuntimeError(f"mode {self.mode} does not run NDA traffic")
        self._nda_workload = _NdaWorkloadSpec(
            opcode=opcode,
            elements_per_rank=elements_per_rank,
            cache_blocks=cache_blocks,
            async_launch=async_launch,
            matrix_columns=matrix_columns,
            continuous=continuous,
        )
        self._nda_sequence = None
        self._nda_sequence_index = 0
        # A new workload can make the NDA host (and transitively the ranks)
        # eligible immediately; cached wakes must be recomputed.
        self.engine.invalidate_wakes()

    def set_nda_workload_sequence(self, kernels: Sequence["NdaKernelSpec"],
                                  continuous: bool = True) -> None:
        """Configure a composite NDA workload (a repeating kernel sequence).

        Used for the application workloads of Figure 14 (SVRG average
        gradient, CG, streamcluster), which mix read- and write-intensive
        Table I operations.
        """
        if not self.mode.has_nda_traffic:
            raise RuntimeError(f"mode {self.mode} does not run NDA traffic")
        if not kernels:
            raise ValueError("kernel sequence must not be empty")
        self._nda_workload = None
        self._nda_sequence = list(kernels)
        self._nda_sequence_continuous = continuous
        self._nda_sequence_index = 0
        self.engine.invalidate_wakes()

    def submit_nda_operation(self, operation: NdaOperation) -> NdaOperation:
        """Submit a one-off NDA operation (used by the runtime API)."""
        if self.nda_host is None:
            raise RuntimeError("this system has no NDA controllers")
        return self.nda_host.submit(operation)

    def _maybe_relaunch_workload(self) -> None:
        if self.nda_host is None or not self.nda_host.idle:
            return
        spec = self._nda_workload
        if spec is not None:
            if spec.launches > 0 and not spec.continuous:
                return
            total_elements = spec.elements_per_rank * max(1, len(self.rank_controllers))
            self.nda_host.submit_kernel(
                spec.opcode, total_elements,
                cache_blocks=spec.cache_blocks,
                async_launch=spec.async_launch,
                matrix_columns=spec.matrix_columns,
            )
            spec.launches += 1
            return
        sequence = getattr(self, "_nda_sequence", None)
        if not sequence:
            return
        if (self._nda_sequence_index >= len(sequence)
                and not getattr(self, "_nda_sequence_continuous", True)):
            return
        kernel = sequence[self._nda_sequence_index % len(sequence)]
        self._nda_sequence_index += 1
        total_elements = kernel.elements_per_rank * max(1, len(self.rank_controllers))
        self.nda_host.submit_kernel(
            kernel.opcode, total_elements,
            cache_blocks=kernel.cache_blocks,
            async_launch=kernel.async_launch,
            matrix_columns=kernel.matrix_columns,
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def _make_host_request(self, core: CoreModel, phys: int,
                           is_write: bool) -> MemoryRequest:
        phys %= self._host_capacity()
        addr = self.mapping.to_dram(phys)
        if self.mode is AccessMode.RANK_PARTITIONED:
            host_ranks, _ = split_ranks_for_partitioning(
                self.config.org.ranks_per_channel
            )
            addr = addr._replace(rank=host_ranks[addr.rank % len(host_ranks)])
        on_complete = None
        if not is_write:
            # Route through the host unit so the core's deferred fixed-point
            # arithmetic is settled up to the delivery cycle before the
            # completion mutates its state (lazy core sync, see
            # HostComponent.deliver_completion).
            on_complete = (lambda cycle, h=self._host_component,
                           i=core.core_id, p=phys: h.deliver_completion(i, p, cycle))
        return MemoryRequest(addr=addr, is_write=is_write, phys=phys,
                             core_id=core.core_id, on_complete=on_complete)

    def _relaunch_pending(self) -> bool:
        """Whether :meth:`_maybe_relaunch_workload` would launch right now."""
        if self.nda_host is None or not self.nda_host.idle:
            return False
        spec = self._nda_workload
        if spec is not None:
            return spec.continuous or spec.launches == 0
        sequence = self._nda_sequence
        if not sequence:
            return False
        return (self._nda_sequence_continuous
                or self._nda_sequence_index < len(sequence))

    def step(self) -> None:
        """Advance the whole system by one DRAM cycle."""
        now = self.now
        self.scheduler.begin_cycle(now)
        self.engine.process_cycle(now)
        self.now = now + 1

    def run(self, cycles: int, warmup: int = 0,
            checkpoint_hook=None, checkpoint_every: int = 0) -> SimulationResult:
        """Run for ``warmup + cycles`` DRAM cycles and summarize the last ``cycles``.

        The configured engine drives the loop: ``engine="cycle"`` processes
        every DRAM cycle (the regression baseline), ``engine="event"``
        fast-forwards over provably idle cycles with identical results.

        When ``checkpoint_hook`` is given with a positive
        ``checkpoint_every``, the measured window runs in chunks of at most
        that many cycles and the hook is called with the system at every
        inter-chunk safe point (see repro.snapshot).  A system restored from
        such a checkpoint finishes the run by calling :meth:`finish_run`.
        """
        # Eager completion application (see HostComponent) is bounded by the
        # run target; moving the bound can surface deferred completions, so
        # every cached wake is recomputed at the phase boundary.
        target = self.now + max(0, warmup)
        self._host_component.completion_bound = target
        self.engine.invalidate_wakes()
        self.now = self.engine.run_until(self.now, target)
        self._reset_measurement()
        self._run_end = self.now + cycles
        self._run_cycles = cycles
        return self.finish_run(checkpoint_hook, checkpoint_every)

    def finish_run(self, checkpoint_hook=None,
                   checkpoint_every: int = 0) -> SimulationResult:
        """Run the measured window to its recorded end and summarize it.

        Called by :meth:`run` and, after a checkpoint restore, directly: the
        run target travels inside the snapshot (``_run_end``), so resuming is
        just finishing the same measured window.
        """
        if self._run_end is None:
            raise RuntimeError("finish_run() requires an in-progress run()")
        target = self._run_end
        # The completion bound stays at the FULL run end for every chunk —
        # chunking must not change which completions apply eagerly.
        self._host_component.completion_bound = target
        if checkpoint_every <= 0 or checkpoint_hook is None:
            self.now = self.engine.run_until(self.now, target)
            return self._result(self._run_cycles)
        while self.now < target:
            chunk_end = min(target, self.now + checkpoint_every)
            self.now = self.engine.run_until(self.now, chunk_end)
            if self.now < target:
                checkpoint_hook(self)
        return self._result(self._run_cycles)

    def _reset_measurement(self) -> None:
        """Reset *all* measurement state at the warmup boundary.

        Warmup activity must not leak into the measured window: DRAM event
        counts (host/NDA columns, row hits/conflicts), per-bank counters,
        per-channel counters and read-latency accumulators, per-core
        retirement counters, NDA byte/instruction counters and PE operation
        counts are all zeroed.  Protocol, timing and queue state carry over.
        """
        self.stats = SimulationStats(self.config, list(self.rank_controllers.keys()))
        self._stats_component.reset(self.now)
        self.dram.reset_counts()
        for core in self.cores:
            core.reset_measurement()
        for controller in self.channel_controllers.values():
            controller.reset_measurement()
        for controller in self.rank_controllers.values():
            controller.reset_measurement()
        if self.nda_host is not None:
            self.nda_host.reset_measurement()
        self.scheduler.nda_issue_opportunities = 0
        self.scheduler.nda_blocked_cycles = 0
        # Resets change wake-relevant state (core event counters, re-anchored
        # outstanding-miss ages); force a re-poll of every unit.
        self.engine.invalidate_wakes()
        self._measure_start = self.now

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def _result(self, cycles: int) -> SimulationResult:
        # Bring the lazily-accumulated idle statistics up to date before
        # reading any utilization or breakdown metric.
        self._stats_component.flush_trackers(self.now)
        per_core_ipc = [core.ipc for core in self.cores]
        nda_bytes = sum(c.total_bytes for c in self.rank_controllers.values())
        counts = self.dram.counts
        host_hits = counts.host_row_hits
        host_total = host_hits + counts.host_row_conflicts + 1e-9
        nda_hits = counts.nda_row_hits
        nda_total = nda_hits + counts.nda_row_conflicts + 1e-9
        # Sample-count-weighted mean over channels: an unweighted mean of
        # per-channel means would skew toward lightly-loaded channels.
        latency_total = sum(mc.read_latency.total
                            for mc in self.channel_controllers.values())
        latency_count = sum(mc.read_latency.count
                            for mc in self.channel_controllers.values())
        avg_latency = latency_total / latency_count if latency_count else 0.0
        energy: Dict[str, float] = {}
        if self.collect_energy:
            pes = [pe for rc in self.rank_controllers.values() for pe in rc.pes]
            measured = self.now - self._measure_start
            energy = self.energy_model.compute(counts, pes, measured).as_dict()
        return SimulationResult(
            cycles=cycles,
            mode=self.mode.value,
            mix=self.mix,
            host_ipc=sum(per_core_ipc),
            per_core_ipc=per_core_ipc,
            nda_bandwidth_gbs=self.stats.nda_bandwidth_gbs(nda_bytes),
            nda_bw_utilization=self.stats.nda_bw_utilization(nda_bytes),
            idealized_bw_utilization=self.stats.idealized_bw_utilization(),
            nda_bytes=nda_bytes,
            host_reads=counts.host_reads,
            host_writes=counts.host_writes,
            nda_instructions_completed=sum(
                rc.instructions_completed for rc in self.rank_controllers.values()
            ),
            nda_operations_completed=(self.nda_host.operations_completed
                                      if self.nda_host else 0),
            rank_idle_breakdown=self.stats.rank_breakdowns(),
            row_hit_rate_host=host_hits / host_total,
            row_hit_rate_nda=nda_hits / nda_total,
            avg_read_latency=avg_latency,
            energy=energy,
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors used by experiments
    # ------------------------------------------------------------------ #

    @property
    def total_nda_bytes(self) -> int:
        return sum(c.total_bytes for c in self.rank_controllers.values())

    def aggregate_host_ipc(self) -> float:
        return sum(core.ipc for core in self.cores)

    def verify_fsm_sync(self) -> bool:
        """Check every rank's replicated FSM copies agree (Section III-D)."""
        return all(rc.fsm.in_sync for rc in self.rank_controllers.values())
