"""Concurrent-access scheduling: when may an NDA touch its rank?

The basic Chopim policy (Section III-B): host requests always have priority;
NDAs opportunistically use any cycle in which their rank is not serving the
host.  This module encapsulates that gating decision so the system loop and
the tests share one implementation.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.dram.device import DramSystem
from repro.engine.core import WakeHub
from repro.memctrl.controller import ChannelController


class ConcurrentAccessScheduler:
    """Decides, per cycle and per rank, whether NDA commands may issue."""

    def __init__(self, dram: DramSystem,
                 channel_controllers: Dict[int, ChannelController]) -> None:
        self.dram = dram
        self.channel_controllers = channel_controllers
        self._next_host_free = dram.timing.next_host_free_cycle
        # Direct view of the per-rank timing state (list mutated in place,
        # never reassigned): the gate reads the busy windows inline — it
        # runs once per rank per processed cycle.
        self._rank_states = dram.timing._ranks
        self._ranks_per_channel = dram.org.ranks_per_channel
        # With refresh enabled the NDA must *defer* to a due refresh: it
        # keeps no refresh state of its own, so if it kept streaming, its
        # row activity would hold the bank precharge horizons in the future
        # forever and starve REF on refresh-heavy configurations.  All
        # channel controllers share one SchedulerConfig.
        self._refresh_enabled = next(
            (c.config.refresh_enabled for c in channel_controllers.values()),
            False)
        self._host_issued_this_cycle: Set[Tuple[int, int]] = set()
        self._cycle = -1
        self.nda_issue_opportunities = 0
        self.nda_blocked_cycles = 0
        # Selective-wake plumbing: every host command issue is reported here
        # (the channel components call note_host_issue), so this is the one
        # place that sees "the host touched rank (ch, rk)" — the event that
        # can change the rank's bank state and therefore move its NDA unit's
        # wake-up in either direction.  The per-rank issue-version polling
        # this replaces lived on DramSystem (see ARCHITECTURE.md).
        self._wake_hub: Optional[WakeHub] = None
        # Per-rank host-issue route: (wake-hub slot, burst controller or
        # None).  A host command to (channel, rank) dirties the rank's NDA
        # unit and truncates any planned NDA command burst on that rank —
        # one lookup serves both.
        self._rank_routes: Dict[Tuple[int, int],
                                Tuple[int, Optional[object]]] = {}

    # ------------------------------------------------------------------ #

    def bind_wake_hub(self, hub: WakeHub,
                      rank_slots: Dict[Tuple[int, int], int]) -> None:
        """Route host-issue notifications to the affected NDA rank units."""
        self._wake_hub = hub
        for key, slot in rank_slots.items():
            old = self._rank_routes.get(key)
            self._rank_routes[key] = (slot, old[1] if old else None)

    def bind_burst_controllers(self, controllers: Dict[Tuple[int, int], object],
                               ) -> None:
        """Route host-issue burst truncations to the NDA rank controllers."""
        for key, controller in controllers.items():
            old = self._rank_routes.get(key)
            self._rank_routes[key] = (old[0] if old else -1, controller)

    def begin_cycle(self, now: int) -> None:
        if now != self._cycle:
            self._cycle = now
            self._host_issued_this_cycle.clear()

    def note_host_issue(self, channel: int, rank: int, now: int) -> None:
        """Record that the host issued a command to (channel, rank) at ``now``.

        Besides gating same-cycle NDA issue, this dirties the rank's NDA
        unit: a host command can change the rank's bank state (shared-bank
        modes, refresh precharges), which may change the *kind* of the NDA's
        next required command and with it the unit's wake-up.
        """
        self.begin_cycle(now)
        self._host_issued_this_cycle.add((channel, rank))
        route = self._rank_routes.get((channel, rank))
        if route is None:
            return
        slot, controller = route
        if controller is not None and controller._plan is not None:
            # The elapsed prefix was settled when the issuing channel began
            # its tick; the remainder (including a command planned for this
            # very cycle, which the same-cycle gate would block) is stale.
            controller.cancel_burst(now, "host_issue")
            # Streaming usually survives the interruption with a shifted
            # cadence; re-plan immediately so the unit parks at the new
            # burst horizon instead of paying a full per-cycle wake.  The
            # eligibility predicate re-checks bank state, so a host command
            # that actually perturbed the streak (shared-bank modes) simply
            # yields no plan and the per-cycle path resumes.
            controller.plan_burst(now)
        if slot >= 0:
            hub = self._wake_hub
            if hub is not None:
                hub.dirty(slot)

    def nda_may_issue(self, channel: int, rank: int, now: int) -> bool:
        """Whether the NDA of (channel, rank) may issue a command at ``now``.

        True only if the host neither issued a command to the rank this cycle
        nor is currently transferring data to/from it — "a rank that is being
        accessed by the host cannot at the same time serve NDA requests".
        """
        if now != self._cycle:
            self._cycle = now
            self._host_issued_this_cycle.clear()
        elif (channel, rank) in self._host_issued_this_cycle:
            self.nda_blocked_cycles += 1
            return False
        # Inline rank_host_busy (command-cycle window or data-burst window).
        state = self._rank_states[channel * self._ranks_per_channel + rank]
        if (state.busy_until > now
                or state.data_busy_from <= now < state.data_busy_until):
            self.nda_blocked_cycles += 1
            return False
        # A due refresh outranks NDA work: pausing lets the rank's bank
        # precharge horizons settle so the channel's refresh precharges and
        # REF become legal (the REF's tRFC window then blocks NDA commands
        # through the ordinary timing path, and the REF issue itself arrives
        # as a host-issue notification that reschedules the NDA unit).
        if self._refresh_enabled and state.refresh_due <= now:
            self.nda_blocked_cycles += 1
            return False
        self.nda_issue_opportunities += 1
        return True

    def nda_issue_horizon(self, channel: int, rank: int, now: int) -> int:
        """Earliest cycle >= ``now`` at which :meth:`nda_may_issue` can be True.

        The event-engine counterpart of the per-cycle gate: derived from the
        rank's host-busy timing state, it is exact until the next host
        command issues to the rank (which is itself an engine-processed
        event).  Same-cycle host issues are handled by the per-cycle gate
        when the cycle is actually processed.
        """
        return self._next_host_free(channel, rank, now)

    def host_pending_to_bank(self, channel: int, rank: int, flat_bank: int) -> bool:
        """Whether the host has a queued request to the given bank.

        NDA row commands (ACT/PRE) yield to pending host requests targeting
        the same bank, so an NDA activation never delays a host row access.
        """
        controller = self.channel_controllers.get(channel)
        if controller is None:
            return False
        banks_per_group = self.dram.org.banks_per_group
        return controller.pending_to_bank(rank, flat_bank // banks_per_group,
                                          flat_bank % banks_per_group)
