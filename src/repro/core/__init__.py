"""Chopim core: full-system assembly, access modes, statistics and energy.

This package ties the substrates together into the simulated system of the
paper's evaluation: a multi-core host with FR-FCFS memory controllers and
NDA-enabled DDR4 ranks accessed concurrently, under one of several access
modes (shared, bank-partitioned, rank-partitioned, host-only, NDA-only).
"""

from repro.core.modes import AccessMode
from repro.core.stats import SimulationResult, SimulationStats
from repro.core.energy import EnergyBreakdown, EnergyModel
from repro.core.scheduler import ConcurrentAccessScheduler
from repro.core.system import ChopimSystem

__all__ = [
    "AccessMode",
    "SimulationResult",
    "SimulationStats",
    "EnergyBreakdown",
    "EnergyModel",
    "ConcurrentAccessScheduler",
    "ChopimSystem",
]
