"""Memory-system energy and power model (paper Table II, Section VII).

Event-count based: every DRAM activate, host column access, NDA column
access, PE FMA and PE buffer access contributes the per-event energy from
Table II; background DRAM power and PE buffer leakage are added per rank /
per PE over the simulated wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.config import DramOrgConfig, DramTimingConfig, EnergyConfig
from repro.dram.device import DramEventCounts
from repro.nda.pe import ProcessingElement


@dataclass
class EnergyBreakdown:
    """Energy (nJ) and power (W) split by component."""

    activate_nj: float = 0.0
    host_access_nj: float = 0.0
    nda_access_nj: float = 0.0
    pe_compute_nj: float = 0.0
    pe_buffer_nj: float = 0.0
    pe_leakage_nj: float = 0.0
    background_nj: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def total_nj(self) -> float:
        return (self.activate_nj + self.host_access_nj + self.nda_access_nj
                + self.pe_compute_nj + self.pe_buffer_nj + self.pe_leakage_nj
                + self.background_nj)

    @property
    def host_power_w(self) -> float:
        return self._power(self.activate_nj + self.host_access_nj + self.background_nj)

    @property
    def nda_power_w(self) -> float:
        return self._power(self.nda_access_nj + self.pe_compute_nj
                           + self.pe_buffer_nj + self.pe_leakage_nj)

    @property
    def total_power_w(self) -> float:
        return self._power(self.total_nj)

    def _power(self, energy_nj: float) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return energy_nj * 1e-9 / self.elapsed_seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "activate_nj": self.activate_nj,
            "host_access_nj": self.host_access_nj,
            "nda_access_nj": self.nda_access_nj,
            "pe_compute_nj": self.pe_compute_nj,
            "pe_buffer_nj": self.pe_buffer_nj,
            "pe_leakage_nj": self.pe_leakage_nj,
            "background_nj": self.background_nj,
            "total_nj": self.total_nj,
            "host_power_w": self.host_power_w,
            "nda_power_w": self.nda_power_w,
            "total_power_w": self.total_power_w,
        }


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from simulator event counts."""

    def __init__(self, org: DramOrgConfig, energy: Optional[EnergyConfig] = None,
                 timing: Optional[DramTimingConfig] = None) -> None:
        self.org = org
        self.energy = energy or EnergyConfig()
        # Best-case column-command cadence of the platform: one access per
        # max(tCCD_S, tBL) cycles.  Without a timing config the DDR4
        # baseline's 4-cycle cadence is assumed (legacy behaviour).
        self._column_cadence = (max(timing.tCCDS, timing.tBL)
                                if timing is not None else 4)

    def theoretical_max_host_power_w(self) -> float:
        """Peak memory power with host-only accesses saturating all channels.

        The paper reports 8 W for its configuration; this derives the same
        kind of bound from the energy constants: back-to-back column accesses
        (one cache line per the platform's column cadence) on every channel
        plus the activates they imply plus background power.
        """
        cl = self.org.cacheline_bytes
        accesses_per_second = (self.org.dram_clock_ghz * 1e9
                               / self._column_cadence) * self.org.channels
        access_power = accesses_per_second * self.energy.host_access_nj(cl) * 1e-9
        act_power = (accesses_per_second / self.org.cachelines_per_row
                     * self.energy.activate_nj * 1e-9)
        background = (self.energy.dram_background_mw_per_rank / 1000.0
                      * self.org.total_ranks)
        return access_power + act_power + background

    def compute(self, counts: DramEventCounts, pes: Iterable[ProcessingElement],
                cycles: int) -> EnergyBreakdown:
        e = self.energy
        cl = self.org.cacheline_bytes
        elapsed = cycles / (self.org.dram_clock_ghz * 1e9) if cycles else 0.0
        breakdown = EnergyBreakdown(elapsed_seconds=elapsed)
        breakdown.activate_nj = counts.activates * e.activate_nj
        breakdown.host_access_nj = counts.host_columns * e.host_access_nj(cl)
        breakdown.nda_access_nj = counts.nda_columns * e.pe_access_nj(cl)

        total_fma = 0.0
        total_buffer = 0
        num_pes = 0
        for pe in pes:
            num_pes += 1
            total_fma += pe.stats.fma_operations
            total_buffer += pe.stats.buffer_accesses + pe.stats.scratchpad_accesses
        breakdown.pe_compute_nj = total_fma * e.pe_fma_pj_per_op / 1000.0
        breakdown.pe_buffer_nj = total_buffer * e.pe_buffer_pj_per_access / 1000.0
        breakdown.pe_leakage_nj = (e.pe_buffer_leakage_mw / 1000.0) * num_pes * elapsed * 1e9
        breakdown.background_nj = (
            (e.dram_background_mw_per_rank / 1000.0) * self.org.total_ranks
            * elapsed * 1e9
        )
        return breakdown
