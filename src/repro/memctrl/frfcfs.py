"""FR-FCFS request selection (Rixner et al., used by the paper's host MC).

First-Ready, First-Come-First-Served: among queued requests, prefer one whose
*next required DRAM command* is issuable this cycle and whose access is a
row-buffer hit; fall back to the oldest request whose next command is
issuable; otherwise pick nothing.

Selection can also report a *horizon*: the earliest future cycle at which any
scanned request could issue, given no further state changes.  The event
engine uses the horizon to fast-forward over cycles where the controller
provably cannot act.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.dram.commands import Command, CommandType, RequestSource
from repro.dram.device import DramSystem
from repro.memctrl.request import MemoryRequest

#: Sentinel for "no issuable cycle known" horizons.
NO_EVENT = 1 << 62


class FrFcfsScheduler:
    """Selects the next request to serve and the command to issue for it."""

    def __init__(self, dram: DramSystem) -> None:
        self.dram = dram

    def next_command_for(self, request: MemoryRequest,
                         now: int) -> Optional[Command]:
        """The next command required by ``request`` if issuable now, else None."""
        kind = self.dram.required_command(request.addr, request.is_write)
        cmd = Command(kind, request.addr, RequestSource.HOST,
                      request_id=request.request_id)
        if self.dram.can_issue(cmd, now):
            return cmd
        return None

    def select(self, requests: Iterable[MemoryRequest],
               now: int) -> Optional[Tuple[MemoryRequest, Command]]:
        """Pick (request, command) per FR-FCFS, or None if nothing can issue."""
        choice, _ = self.select_or_horizon(requests, now)
        return choice

    def select_or_horizon(self, requests: Iterable[MemoryRequest], now: int,
                          ) -> Tuple[Optional[Tuple[MemoryRequest, Command]], int]:
        """FR-FCFS pick plus the earliest future issue cycle.

        Returns ``(choice, horizon)``.  When ``choice`` is not None the
        horizon is meaningless (the scan may have stopped early at a
        row-hit); when ``choice`` is None the horizon is the minimum
        ``earliest_issue`` over every queued request's required command — a
        lower bound on the next cycle this queue could issue anything,
        assuming no intervening enqueue or DRAM state change that hastens a
        request (timing state only ever moves constraints later).
        """
        fallback: Optional[Tuple[MemoryRequest, Command]] = None
        horizon = NO_EVENT
        for request in requests:  # iteration order == arrival order
            kind = self.dram.required_command(request.addr, request.is_write)
            cmd = Command(kind, request.addr, RequestSource.HOST,
                          request_id=request.request_id)
            earliest = self.dram.earliest_issue(cmd, now)
            if earliest > now:
                if earliest < horizon:
                    horizon = earliest
                continue
            if (kind is CommandType.RD or kind is CommandType.WR):
                # required_command returns a column command only when the
                # target row is open — a row-buffer hit by construction.
                return (request, cmd), NO_EVENT
            if fallback is None:
                fallback = (request, cmd)
        return fallback, horizon
