"""FR-FCFS request selection (Rixner et al., used by the paper's host MC).

First-Ready, First-Come-First-Served: among queued requests, prefer one whose
*next required DRAM command* is issuable this cycle and whose access is a
row-buffer hit; fall back to the oldest request whose next command is
issuable; otherwise pick nothing.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.dram.commands import Command, CommandType, RequestSource
from repro.dram.device import DramSystem
from repro.memctrl.request import MemoryRequest


class FrFcfsScheduler:
    """Selects the next request to serve and the command to issue for it."""

    def __init__(self, dram: DramSystem) -> None:
        self.dram = dram

    def next_command_for(self, request: MemoryRequest,
                         now: int) -> Optional[Command]:
        """The next command required by ``request`` if issuable now, else None."""
        kind = self.dram.required_command(request.addr, request.is_write)
        cmd = Command(kind, request.addr, RequestSource.HOST,
                      request_id=request.request_id)
        if self.dram.can_issue(cmd, now):
            return cmd
        return None

    def select(self, requests: Iterable[MemoryRequest],
               now: int) -> Optional[Tuple[MemoryRequest, Command]]:
        """Pick (request, command) per FR-FCFS, or None if nothing can issue."""
        fallback: Optional[Tuple[MemoryRequest, Command]] = None
        for request in requests:  # iteration order == arrival order
            is_hit = self.dram.row_hit_possible(request.addr)
            cmd = self.next_command_for(request, now)
            if cmd is None:
                continue
            if is_hit and cmd.kind in (CommandType.RD, CommandType.WR):
                return request, cmd
            if fallback is None:
                fallback = (request, cmd)
        return fallback
