"""FR-FCFS request selection (Rixner et al., used by the paper's host MC).

First-Ready, First-Come-First-Served: among queued requests, prefer one whose
*next required DRAM command* is issuable this cycle and whose access is a
row-buffer hit; fall back to the oldest request whose next command is
issuable; otherwise pick nothing.

Selection can also report a *horizon*: the earliest future cycle at which any
scanned request could issue, given no further state changes.  The event
engine uses the horizon to fast-forward over cycles where the controller
provably cannot act.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.dram.bank import BankState
from repro.dram.commands import Command, CommandType, RequestSource
from repro.dram.device import DramSystem
from repro.memctrl.request import MemoryRequest, RequestQueue

#: Sentinel for "no issuable cycle known" horizons.
NO_EVENT = 1 << 62


class FrFcfsScheduler:
    """Selects the next request to serve and the command to issue for it."""

    def __init__(self, dram: DramSystem) -> None:
        self.dram = dram
        # Bound methods of the hot probes: the scan bypasses the DramSystem
        # delegation layer (timing-only semantics, as before).
        self._earliest_issue_at = dram.timing.earliest_issue_at
        self._bank = dram.bank
        # Direct references to the timing engine's row-command probe caches
        # (lists mutated in place, never reassigned): the bucketed scan
        # reads them inline, skipping the probe call on cache hits.  The
        # bank list is likewise indexed directly through the stamped
        # ``bank_index`` (one bank-state read per bucket).
        # Row-command caches key on the row version: NDA column streams do
        # not invalidate the scan's ACT/PRE horizon hits.
        self._issue_versions = dram.timing._row_versions
        self._act_cache = dram.timing._act_cache
        self._pre_cache = dram.timing._pre_cache
        self._banks = dram._banks
        # The scan's column probe: the bank-independent host-column horizon
        # lives next to the full constraint law in TimingEngine.
        self._host_column_base = dram.timing.host_column_base
        self._bank_timings = dram.timing._banks

    def next_command_for(self, request: MemoryRequest,
                         now: int) -> Optional[Command]:
        """The next command required by ``request`` if issuable now, else None."""
        kind = self.dram.required_command(request.addr, request.is_write)
        if self.dram.can_issue_at(kind, request.addr, RequestSource.HOST, now):
            return Command(kind, request.addr, RequestSource.HOST,
                           request_id=request.request_id)
        return None

    def select(self, requests: Iterable[MemoryRequest],
               now: int) -> Optional[Tuple[MemoryRequest, Command]]:
        """Pick (request, command) per FR-FCFS, or None if nothing can issue."""
        choice, _ = self.select_or_horizon(requests, now)
        return choice

    def select_or_horizon(self, requests: Iterable[MemoryRequest], now: int,
                          ) -> Tuple[Optional[Tuple[MemoryRequest, Command]], int]:
        """FR-FCFS pick plus the earliest future issue cycle.

        Returns ``(choice, horizon)``.  When ``choice`` is not None the
        horizon is meaningless (the scan may have stopped early at a
        row-hit); when ``choice`` is None the horizon is the minimum
        ``earliest_issue`` over every queued request's required command — a
        lower bound on the next cycle this queue could issue anything,
        assuming no intervening enqueue or DRAM state change that hastens a
        request (timing state only ever moves constraints later).

        The scan is allocation-free: every candidate is probed value-based
        through ``required_command``/``earliest_issue_at`` and exactly one
        :class:`Command` is built, for the winning request.
        """
        if isinstance(requests, RequestQueue):
            choice, horizon, _future = self._select_bucketed(requests, now)
            return choice, horizon
        required_command = self.dram.required_command
        earliest_issue_at = self._earliest_issue_at
        host = RequestSource.HOST
        fallback: Optional[MemoryRequest] = None
        fallback_kind: Optional[CommandType] = None
        horizon = NO_EVENT
        for request in requests:  # iteration order == arrival order
            addr = request.addr
            kind = required_command(addr, request.is_write)
            earliest = earliest_issue_at(kind, addr, host, now)
            if earliest > now:
                if earliest < horizon:
                    horizon = earliest
                continue
            if kind is CommandType.RD or kind is CommandType.WR:
                # required_command returns a column command only when the
                # target row is open — a row-buffer hit by construction.
                cmd = Command(kind, addr, host, request_id=request.request_id)
                return (request, cmd), NO_EVENT
            if fallback is None:
                fallback = request
                fallback_kind = kind
        if fallback is None:
            return None, horizon
        cmd = Command(fallback_kind, fallback.addr, host,
                      request_id=fallback.request_id)
        return (fallback, cmd), horizon

    def _select_bucketed(self, queue: RequestQueue, now: int,
                         ) -> Tuple[Optional[Tuple[MemoryRequest, Command]],
                                    int,
                                    Optional[Tuple[MemoryRequest, Command]]]:
        """Bucketed FR-FCFS scan: ``(choice, horizon, choice_at_horizon)``.

        The third element predicts the FR-FCFS pick at the horizon cycle:
        when nothing is issuable now, every candidate's *absolute* earliest
        cycle is already in hand, and — provided no queue or channel DRAM
        state changes in between, which the caller's version-keyed memo
        guarantees — the scan at the horizon selects among exactly the
        candidates whose earliest equals the horizon.  The controller can
        therefore issue at the horizon from the memo without re-scanning.

        Timing-equivalent to the linear scan but probes DDR4 timing once
        per bank bucket and command class instead of once per request:
        within one bank, every request needing ACT (bank closed) or PRE
        (row conflict) shares the same ``earliest_issue_at``, and row-hit
        column commands share it per direction (RD/WR).  Arrival order
        across buckets is recovered from each request's ``queue_seq``
        stamp, so the selected request is exactly the one the linear scan
        would pick; the horizon (min earliest over non-issuable requests)
        is likewise identical whenever it is consumed (choice is None),
        and the at-horizon winner (hit preferred, then arrival order, among
        candidates whose earliest equals the horizon) matches the scan a
        caller would run at that cycle with unchanged state.
        """
        earliest_issue_at = self._earliest_issue_at
        dram_bank = self._bank
        banks = self._banks
        host = RequestSource.HOST
        rd = CommandType.RD
        wr = CommandType.WR
        closed = BankState.CLOSED
        horizon = NO_EVENT
        # Queues are shallow in practice (a handful of buckets per scan), so
        # the column probe is the leaner ``_host_column_base`` + the bank's
        # own tRCD horizon, called at most once per bucket and direction.
        host_column_base = self._host_column_base
        bank_timings = self._bank_timings
        best_hit: Optional[MemoryRequest] = None
        best_hit_kind: Optional[CommandType] = None
        best_hit_seq = NO_EVENT
        best_fb: Optional[MemoryRequest] = None
        best_fb_kind: Optional[CommandType] = None
        best_fb_seq = NO_EVENT
        # At-horizon winner: among candidates whose earliest equals the
        # (running) horizon, a hit beats a fallback, then arrival order —
        # the same priority the scan itself applies at the horizon cycle.
        h_req: Optional[MemoryRequest] = None
        h_kind: Optional[CommandType] = None
        h_seq = NO_EVENT
        h_is_hit = False
        issue_versions = self._issue_versions
        act_cache = self._act_cache
        pre_cache = self._pre_cache
        for bucket in queue.bank_buckets():
            first = next(iter(bucket.values()))
            first_bi = first.addr.bank_index
            bank = banks[first_bi] if first_bi >= 0 else dram_bank(first.addr)
            if bank.state is closed:
                # Whole bucket needs ACT; oldest request represents it.
                a = first.addr
                bi = a.bank_index
                if bi >= 0 and act_cache[bi][0] == issue_versions[a.rank_index]:
                    earliest = act_cache[bi][1]
                    if earliest < now:
                        earliest = now
                else:
                    earliest = earliest_issue_at(CommandType.ACT, a, host, now)
                if earliest <= now:
                    if first.queue_seq < best_fb_seq:
                        best_fb, best_fb_kind = first, CommandType.ACT
                        best_fb_seq = first.queue_seq
                elif earliest < horizon:
                    horizon = earliest
                    h_req, h_kind = first, CommandType.ACT
                    h_seq, h_is_hit = first.queue_seq, False
                elif (earliest == horizon and not h_is_hit
                        and first.queue_seq < h_seq):
                    h_req, h_kind, h_seq = first, CommandType.ACT, first.queue_seq
                continue
            open_row = bank.open_row
            rd_earliest = wr_earliest = pre_earliest = -1
            for request in bucket.values():
                addr = request.addr
                if addr.row == open_row:
                    if request.is_write:
                        if wr_earliest < 0:
                            bi = addr.bank_index
                            if bi >= 0:
                                base = host_column_base(False, addr)
                                allowed = bank_timings[bi].wr_allowed
                                wr_earliest = base if base >= allowed else allowed
                                if wr_earliest < now:
                                    wr_earliest = now
                            else:
                                wr_earliest = earliest_issue_at(
                                    wr, addr, host, now)
                        earliest, kind = wr_earliest, wr
                    else:
                        if rd_earliest < 0:
                            bi = addr.bank_index
                            if bi >= 0:
                                base = host_column_base(True, addr)
                                allowed = bank_timings[bi].rd_allowed
                                rd_earliest = base if base >= allowed else allowed
                                if rd_earliest < now:
                                    rd_earliest = now
                            else:
                                rd_earliest = earliest_issue_at(
                                    rd, addr, host, now)
                        earliest, kind = rd_earliest, rd
                    if earliest <= now:
                        if request.queue_seq < best_hit_seq:
                            best_hit, best_hit_kind = request, kind
                            best_hit_seq = request.queue_seq
                        # Later bucket entries are younger and the horizon
                        # is irrelevant once a choice exists.
                        break
                else:
                    if pre_earliest < 0:
                        bi = addr.bank_index
                        if (bi >= 0 and pre_cache[bi][0]
                                == issue_versions[addr.rank_index]):
                            pre_earliest = pre_cache[bi][1]
                            if pre_earliest < now:
                                pre_earliest = now
                        else:
                            pre_earliest = earliest_issue_at(
                                CommandType.PRE, addr, host, now)
                    earliest = pre_earliest
                    if earliest <= now:
                        if request.queue_seq < best_fb_seq:
                            best_fb, best_fb_kind = request, CommandType.PRE
                            best_fb_seq = request.queue_seq
                        continue
                    kind = CommandType.PRE
                if earliest > now:
                    if earliest < horizon:
                        horizon = earliest
                        h_req, h_kind, h_seq = request, kind, request.queue_seq
                        h_is_hit = kind is rd or kind is wr
                    elif earliest == horizon:
                        is_hit = kind is rd or kind is wr
                        if (is_hit and not h_is_hit) or (
                                is_hit == h_is_hit and request.queue_seq < h_seq):
                            h_req, h_kind, h_seq = request, kind, request.queue_seq
                            h_is_hit = is_hit
        if best_hit is not None:
            cmd = Command(best_hit_kind, best_hit.addr, host,
                          request_id=best_hit.request_id)
            return (best_hit, cmd), NO_EVENT, None
        if best_fb is not None:
            cmd = Command(best_fb_kind, best_fb.addr, host,
                          request_id=best_fb.request_id)
            return (best_fb, cmd), horizon, None
        future = None
        if h_req is not None:
            cmd = Command(h_kind, h_req.addr, host, request_id=h_req.request_id)
            future = (h_req, cmd)
        return None, horizon, future
