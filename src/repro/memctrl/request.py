"""Memory request and transaction-queue types."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.dram.commands import DramAddress

_request_ids = itertools.count()


@dataclass
class MemoryRequest:
    """One host memory transaction (a cache-line read or write).

    ``on_complete`` is invoked with the completion cycle when the data
    transfer finishes (reads) or the write has been accepted by the DRAM
    (writes); the host core model uses it to unblock the issuing core.
    """

    addr: DramAddress
    is_write: bool
    phys: int = 0
    core_id: int = -1
    arrival_cycle: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    on_complete: Optional[Callable[[int], None]] = None

    outcome_recorded: bool = False
    issued_cycle: Optional[int] = None
    completed_cycle: Optional[int] = None

    @property
    def is_read(self) -> bool:
        return not self.is_write

    def complete(self, cycle: int) -> None:
        self.completed_cycle = cycle
        if self.on_complete is not None:
            self.on_complete(cycle)

    def latency(self) -> Optional[int]:
        if self.completed_cycle is None:
            return None
        return self.completed_cycle - self.arrival_cycle


class RequestQueue:
    """A bounded FIFO transaction queue preserving arrival order."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._entries: List[MemoryRequest] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.capacity

    def push(self, request: MemoryRequest) -> bool:
        """Append a request; returns False (and drops nothing) when full."""
        if self.full:
            return False
        self._entries.append(request)
        return True

    def remove(self, request: MemoryRequest) -> None:
        self._entries.remove(request)

    def oldest(self) -> Optional[MemoryRequest]:
        return self._entries[0] if self._entries else None

    def find_same_bank(self, addr: DramAddress) -> List[MemoryRequest]:
        """Requests targeting the same bank as ``addr`` (row-policy decisions)."""
        return [r for r in self._entries if r.addr.same_bank(addr)]

    def find_write_to(self, addr: DramAddress) -> Optional[MemoryRequest]:
        """A queued write to the same cache line (read forwarding), if any."""
        for r in self._entries:
            if (r.is_write and r.addr == addr):
                return r
        return None
