"""Memory request and transaction-queue types."""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.dram.commands import DramAddress

_request_ids = itertools.count()


def get_request_id_watermark() -> int:
    """Next request id the global counter would hand out (checkpointing).

    Peek-then-rearm: ``itertools.count`` cannot be inspected without
    consuming, so read one value and rebind the counter at that value.
    """
    global _request_ids
    value = next(_request_ids)
    _request_ids = itertools.count(value)
    return value


def set_request_id_watermark(value: int) -> None:
    """Restore the global request-id counter (checkpoint restore)."""
    global _request_ids
    _request_ids = itertools.count(value)


#: Bucket key identifying a bank within one channel's queue.
_BankKey = Tuple[int, int, int]


class MemoryRequest:
    """One host memory transaction (a cache-line read or write).

    ``on_complete`` is invoked with the completion cycle when the data
    transfer finishes (reads) or the write has been accepted by the DRAM
    (writes); the host core model uses it to unblock the issuing core.

    A ``__slots__`` class rather than a dataclass: requests are allocated
    per cache miss and probed on every scheduler scan, so the compact
    layout and fast attribute access matter.
    """

    __slots__ = ("addr", "is_write", "phys", "core_id", "arrival_cycle",
                 "request_id", "on_complete", "outcome_recorded",
                 "issued_cycle", "completed_cycle", "queue_seq")

    def __init__(self, addr: DramAddress, is_write: bool, phys: int = 0,
                 core_id: int = -1, arrival_cycle: int = 0,
                 request_id: Optional[int] = None,
                 on_complete: Optional[Callable[[int], None]] = None) -> None:
        self.addr = addr
        self.is_write = is_write
        self.phys = phys
        self.core_id = core_id
        self.arrival_cycle = arrival_cycle
        self.request_id = next(_request_ids) if request_id is None else request_id
        self.on_complete = on_complete
        self.outcome_recorded = False
        self.issued_cycle: Optional[int] = None
        self.completed_cycle: Optional[int] = None
        #: Arrival-order stamp within the owning queue (set by push); lets
        #: the bucketed FR-FCFS scan compare age across bank buckets.
        self.queue_seq = 0

    @property
    def is_read(self) -> bool:
        return not self.is_write

    def complete(self, cycle: int) -> None:
        self.completed_cycle = cycle
        if self.on_complete is not None:
            self.on_complete(cycle)

    def latency(self) -> Optional[int]:
        if self.completed_cycle is None:
            return None
        return self.completed_cycle - self.arrival_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = "WR" if self.is_write else "RD"
        return (f"MemoryRequest(#{self.request_id} {op} ch{self.addr.channel} "
                f"rk{self.addr.rank} bg{self.addr.bank_group} "
                f"bk{self.addr.bank} row{self.addr.row} col{self.addr.column})")


def _bank_key(addr: DramAddress) -> _BankKey:
    """Bank identity of ``addr`` within its channel (queues are per channel)."""
    return (addr.rank, addr.bank_group, addr.bank)


class RequestQueue:
    """A bounded FIFO transaction queue preserving arrival order.

    Entries live in an insertion-ordered dict keyed by ``request_id``, so
    iteration remains exactly arrival order while removal is O(1) amortized
    (the old list representation paid an O(n) ``list.remove`` per issued
    command).  Per-bank buckets (same dict trick, same order) serve the
    bank-local queries — ``find_same_bank``, ``find_write_to``,
    ``has_bank`` — without scanning the whole queue, and a per-rank counter
    serves rank-occupancy queries in O(1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MemoryRequest] = {}
        self._by_bank: Dict[_BankKey, Dict[int, MemoryRequest]] = {}
        self._rank_counts: Dict[int, int] = {}
        self._next_seq = 0
        #: Bumped on every push/remove; scan results memoized against it.
        self.version = 0
        #: Optional membership observers, invoked after an accepted push /
        #: after a removal.  The kernel backend's batched FR-FCFS scan uses
        #: them to keep its array-resident slot state (one row per queued
        #: request) in lock-step with the dict representation, and parks its
        #: slot arrays on ``kernel_arrays``.
        self.on_push: Optional[Callable[[MemoryRequest], None]] = None
        self.on_remove: Optional[Callable[[MemoryRequest], None]] = None
        self.kernel_arrays = None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return iter(self._entries.values())

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> float:
        return len(self._entries) / self.capacity

    def push(self, request: MemoryRequest) -> bool:
        """Append a request; returns False (and drops nothing) when full."""
        if self.full:
            return False
        request.queue_seq = self._next_seq
        self._next_seq += 1
        self.version += 1
        self._entries[request.request_id] = request
        addr = request.addr
        key = (addr.rank, addr.bank_group, addr.bank)
        bucket = self._by_bank.get(key)
        if bucket is None:
            bucket = self._by_bank[key] = {}
        bucket[request.request_id] = request
        self._rank_counts[addr.rank] = self._rank_counts.get(addr.rank, 0) + 1
        if self.on_push is not None:
            self.on_push(request)
        return True

    def remove(self, request: MemoryRequest) -> None:
        request_id = request.request_id
        if request_id not in self._entries:
            raise ValueError(f"request #{request_id} not in queue")
        self.version += 1
        del self._entries[request_id]
        addr = request.addr
        key = (addr.rank, addr.bank_group, addr.bank)
        bucket = self._by_bank[key]
        del bucket[request_id]
        if not bucket:
            del self._by_bank[key]
        count = self._rank_counts[addr.rank] - 1
        if count:
            self._rank_counts[addr.rank] = count
        else:
            del self._rank_counts[addr.rank]
        if self.on_remove is not None:
            self.on_remove(request)

    def oldest(self) -> Optional[MemoryRequest]:
        return next(iter(self._entries.values()), None)

    def find_same_bank(self, addr: DramAddress) -> List[MemoryRequest]:
        """Requests targeting the same bank as ``addr`` (row-policy decisions)."""
        bucket = self._by_bank.get(_bank_key(addr))
        return list(bucket.values()) if bucket else []

    def find_write_to(self, addr: DramAddress) -> Optional[MemoryRequest]:
        """A queued write to the same cache line (read forwarding), if any."""
        bucket = self._by_bank.get(_bank_key(addr))
        if not bucket:
            return None
        for r in bucket.values():
            if r.is_write and r.addr == addr:
                return r
        return None

    def bank_buckets(self) -> Iterator[Dict[int, MemoryRequest]]:
        """The non-empty per-bank buckets (each in arrival order).

        Only for the FR-FCFS scan: since DDR4 timing constraints do not
        depend on row or column, every request in one bucket that needs the
        same command kind shares one ``earliest_issue_at`` value, so the
        scan probes timing once per bucket-and-kind instead of once per
        request.
        """
        return iter(self._by_bank.values())

    def has_bank(self, rank: int, bank_group: int, bank: int) -> bool:
        """Whether any queued request targets the given bank (O(1))."""
        return (rank, bank_group, bank) in self._by_bank

    def count_for_rank(self, rank: int) -> int:
        """Number of queued requests targeting ``rank`` (O(1))."""
        return self._rank_counts.get(rank, 0)
