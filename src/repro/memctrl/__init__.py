"""Host-side memory controller: FR-FCFS scheduling over DDR4 channels."""

from repro.memctrl.request import MemoryRequest, RequestQueue
from repro.memctrl.frfcfs import FrFcfsScheduler
from repro.memctrl.controller import ChannelController

__all__ = [
    "MemoryRequest",
    "RequestQueue",
    "FrFcfsScheduler",
    "ChannelController",
]
